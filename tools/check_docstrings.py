#!/usr/bin/env python
"""Public-docstring coverage gate (an `interrogate`-style check, zero deps).

Walks Python sources and counts the *public API surface*: modules, plus
top-level (and class-level) functions and classes whose names do not start
with an underscore.  Each such object must carry a docstring.  Coverage
below ``--fail-under`` (percent) fails the run and lists every missing
docstring, so CI can gate documentation the way it gates tests::

    python tools/check_docstrings.py src/repro --fail-under 95

Skipped by design: private names (leading underscore), dunder methods
(``__init__`` documents itself through the class docstring), ``@overload``
stubs, and property setters/deleters (documented by their getter).
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterator, List, Tuple


def iter_python_files(paths: List[str]) -> Iterator[str]:
    """Yield every ``.py`` file under the given files/directories (sorted)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _decorator_name(node: ast.expr) -> str:
    """Best-effort dotted name of a decorator expression."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_exempt_function(node: ast.AST) -> bool:
    """Overload stubs and property setters/deleters need no own docstring."""
    for decorator in getattr(node, "decorator_list", []):
        name = _decorator_name(decorator)
        if name in ("overload", "typing.overload"):
            return True
        if name.endswith(".setter") or name.endswith(".deleter"):
            return True
    return False


def collect(tree: ast.Module, module_label: str) -> List[Tuple[str, bool]]:
    """Return ``(qualified name, has_docstring)`` for the public surface of
    one parsed module."""
    results: List[Tuple[str, bool]] = [
        (module_label, ast.get_docstring(tree) is not None)
    ]

    def visit(body, prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(node.name) or _is_exempt_function(node):
                    continue
                results.append(
                    (f"{prefix}{node.name}", ast.get_docstring(node) is not None)
                )
                # Nested defs are implementation details: not part of the
                # public surface, so do not recurse into function bodies.
            elif isinstance(node, ast.ClassDef):
                if not _is_public(node.name):
                    continue
                label = f"{prefix}{node.name}"
                results.append((label, ast.get_docstring(node) is not None))
                visit(node.body, f"{label}.")

    visit(tree.body, f"{module_label}:")
    return results


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="+", help="files or directories to check (e.g. src/repro)"
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=95.0,
        metavar="PCT",
        help="minimum acceptable coverage percentage (default: 95)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final summary line"
    )
    args = parser.parse_args(argv)

    checked: List[Tuple[str, bool]] = []
    for path in iter_python_files(args.paths):
        with open(path, "rb") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            print(f"error: cannot parse {path}: {error}", file=sys.stderr)
            return 2
        checked.extend(collect(tree, path))

    if not checked:
        print("error: no Python files found", file=sys.stderr)
        return 2

    missing = [name for name, documented in checked if not documented]
    coverage = 100.0 * (len(checked) - len(missing)) / len(checked)
    if missing and not args.quiet:
        print("missing docstrings:")
        for name in missing:
            print(f"  {name}")
    status = "PASSED" if coverage >= args.fail_under else "FAILED"
    print(
        f"docstring coverage: {len(checked) - len(missing)}/{len(checked)} "
        f"public objects = {coverage:.1f}% (required: {args.fail_under:g}%) "
        f"— {status}"
    )
    return 0 if status == "PASSED" else 1


if __name__ == "__main__":
    sys.exit(main())
