#!/usr/bin/env python
"""Docs-site gate: architecture coverage and Markdown link integrity.

Two checks, zero dependencies, CI-friendly exit codes::

    python tools/check_docs.py [--repo DIR]

1. **Architecture coverage** — every package under ``src/repro/`` (a
   directory with an ``__init__.py``) must be mentioned as
   ``repro.<name>`` in ``docs/architecture.md``, so the module map cannot
   silently rot as subsystems are added.
2. **Link integrity** — every relative Markdown link in every *tracked*
   ``.md`` file (``git ls-files``, falling back to a filesystem walk) must
   resolve to an existing file or directory.  External links
   (``http(s)://``, ``mailto:``) and pure-anchor links (``#...``) are
   skipped; fenced code blocks are stripped before scanning so code
   snippets cannot produce false positives.

Exit codes: 0 = all good, 1 = problems found (listed), 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from typing import List

#: Inline Markdown links/images: ``[text](target)`` / ``![alt](target)``.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks (``` ... ``` or ~~~ ... ~~~), stripped before scanning.
FENCE_PATTERN = re.compile(r"^(```|~~~).*?^\1[^\n]*$", re.MULTILINE | re.DOTALL)


def tracked_markdown_files(repo: str) -> List[str]:
    """Repo-relative paths of every tracked ``.md`` file (sorted).

    Uses ``git ls-files`` when the repo is a git checkout; otherwise walks
    the tree, skipping hidden directories and common scratch dirs.
    """
    try:
        output = subprocess.run(
            ["git", "ls-files", "*.md"],
            cwd=repo,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        files = [line for line in output.splitlines() if line.strip()]
        if files:
            return sorted(files)
    except (OSError, subprocess.CalledProcessError):
        pass
    found: List[str] = []
    for root, dirs, names in os.walk(repo):
        dirs[:] = sorted(
            d for d in dirs
            if not d.startswith(".") and d not in ("__pycache__", "runs", "node_modules")
        )
        for name in sorted(names):
            if name.endswith(".md"):
                found.append(os.path.relpath(os.path.join(root, name), repo))
    return sorted(found)


def check_links(repo: str, markdown_files: List[str]) -> List[str]:
    """Relative links that do not resolve, as ``file: target`` messages."""
    problems: List[str] = []
    for relpath in markdown_files:
        path = os.path.join(repo, relpath)
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            problems.append(f"{relpath}: unreadable ({error})")
            continue
        text = FENCE_PATTERN.sub("", text)
        base = os.path.dirname(path)
        for match in LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                problems.append(f"{relpath}: broken link -> {match.group(1)}")
    return problems


def check_architecture_coverage(repo: str) -> List[str]:
    """Packages under ``src/repro`` missing from ``docs/architecture.md``."""
    packages_dir = os.path.join(repo, "src", "repro")
    architecture = os.path.join(repo, "docs", "architecture.md")
    if not os.path.isdir(packages_dir):
        return [f"missing source tree: {os.path.relpath(packages_dir, repo)}"]
    if not os.path.isfile(architecture):
        return ["missing docs/architecture.md (the module map)"]
    with open(architecture, encoding="utf-8") as handle:
        text = handle.read()
    problems: List[str] = []
    for name in sorted(os.listdir(packages_dir)):
        package = os.path.join(packages_dir, name)
        if not os.path.isdir(package):
            continue
        if not os.path.isfile(os.path.join(package, "__init__.py")):
            continue
        if f"repro.{name}" not in text:
            problems.append(
                f"docs/architecture.md: package 'repro.{name}' is not mentioned"
            )
    return problems


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the parent of tools/)",
    )
    args = parser.parse_args(argv)
    repo = os.path.abspath(args.repo)
    if not os.path.isdir(repo):
        print(f"error: no such directory {repo!r}", file=sys.stderr)
        return 2

    markdown_files = tracked_markdown_files(repo)
    if not markdown_files:
        print("error: no Markdown files found", file=sys.stderr)
        return 2
    problems = check_architecture_coverage(repo) + check_links(repo, markdown_files)
    if problems:
        print("documentation problems:")
        for problem in problems:
            print(f"  {problem}")
    print(
        f"docs check: {len(markdown_files)} Markdown files, "
        f"{len(problems)} problem(s) — {'FAILED' if problems else 'PASSED'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
