"""Small shared utilities (random-number handling, validation helpers)."""

from .rng import ensure_rng, spawn_rngs, spawn_seeds

__all__ = ["ensure_rng", "spawn_rngs", "spawn_seeds"]
