"""Random-number-generator helpers.

All stochastic code in the library accepts either a seed (int), an existing
:class:`numpy.random.Generator`, or ``None`` (fresh entropy), and normalises
it through :func:`ensure_rng` so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Normalise ``rng`` into a :class:`numpy.random.Generator`.

    ``None`` yields a generator seeded from OS entropy, an ``int`` yields a
    deterministically seeded generator, and an existing generator is returned
    unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_seeds(rng: RngLike, count: int) -> List[int]:
    """Derive ``count`` independent child seeds from ``rng``.

    The seeds are plain integers, so they can be serialised (e.g. into a
    campaign manifest) and later turned back into the exact generators that
    :func:`spawn_rngs` would have produced in place.
    """
    base = ensure_rng(rng)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [int(s) for s in seeds]


def spawn_rngs(rng: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Useful to give every task-set of a sweep its own stream so that runs can
    be parallelised or re-executed individually without changing results.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, count)]
