"""Campaign-grade validation runs: budgets, horizons, online invariants.

This module packages the simulator for use inside campaign work units
(``python -m repro.campaign run --mode simulate``):

* :class:`SimulationConfig` — a frozen, pickleable description of one
  validation run (horizon policy and budgets), safe to ship to
  ``ProcessPoolExecutor`` workers and to serialise into a campaign
  manifest;
* :func:`validation_horizon` — the bounded release horizon: a configurable
  number of *hyperperiods*, where the hyperperiod itself is capped (random
  log-uniform periods make the true LCM astronomically large);
* :class:`InvariantMonitor` — O(1)-memory online checks of the protocol
  invariants (mutual exclusion per resource, per-processor exclusivity)
  so the fast no-trace path still counts violations;
* :func:`validate_partition` — run one analysis-accepted partition through
  the simulator and return a :class:`ValidationOutcome` with observed
  response times, deadline misses, invariant counters, and the truncation
  status.

See ``docs/validation.md`` for what the simulator does and does not model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..model.platform import PartitionedSystem
from ..model.task import TaskSet
from ..obs.telemetry import active as _active_telemetry
from .protocols import behavior_for
from .simulator import (
    RuntimeSimulator,
    SimulationError,
    SimulationTruncated,
    _EPS,
)
from .trace import ExecutionInterval

#: Outcome status values of one validation run.
STATUS_COMPLETED = "completed"
STATUS_TRUNCATED = "truncated"
STATUS_RULE_ERROR = "rule_error"


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one validation simulation (pickleable, hashable).

    Attributes
    ----------
    hyperperiods:
        How many (capped) hyperperiods of jobs to release; the run itself
        continues past the release horizon until the event queue drains, so
        every released busy interval completes (unless a budget cuts it).
    hyperperiod_cap_factor:
        Cap on the hyperperiod expressed as a multiple of the largest task
        period.  Random log-uniform periods have astronomically large exact
        LCMs, so the horizon uses ``min(lcm, cap_factor * max_period)``.
    max_events:
        Event budget per simulation run (``None`` disables).  Exhaustion
        yields a ``truncated`` outcome, never a hang.
    wall_clock_seconds:
        Wall-clock budget per simulation run (``None`` disables).  Note a
        wall-clock cut is *not* deterministic across machines — campaigns
        that must stay byte-reproducible should rely on ``max_events``.
    retain_trace:
        Keep the full interval/request trace.  Off by default: the trace is
        the memory hog, and the invariant counters are maintained online.
    """

    hyperperiods: int = 2
    hyperperiod_cap_factor: float = 16.0
    max_events: Optional[int] = 1_000_000
    wall_clock_seconds: Optional[float] = None
    retain_trace: bool = False

    def __post_init__(self) -> None:
        if self.hyperperiods < 1:
            raise ValueError(f"hyperperiods must be >= 1, got {self.hyperperiods}")
        if self.hyperperiod_cap_factor < 1:
            raise ValueError(
                f"hyperperiod_cap_factor must be >= 1, got "
                f"{self.hyperperiod_cap_factor}"
            )
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {self.max_events}")
        if self.wall_clock_seconds is not None and self.wall_clock_seconds <= 0:
            raise ValueError(
                f"wall_clock_seconds must be positive, got {self.wall_clock_seconds}"
            )

    def to_dict(self) -> dict:
        """JSON-serialisable description (manifest / config-hash input)."""
        return {
            "hyperperiods": self.hyperperiods,
            "hyperperiod_cap_factor": self.hyperperiod_cap_factor,
            "max_events": self.max_events,
            "wall_clock_seconds": self.wall_clock_seconds,
            "retain_trace": self.retain_trace,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            hyperperiods=int(data["hyperperiods"]),
            hyperperiod_cap_factor=float(data["hyperperiod_cap_factor"]),
            max_events=None if data["max_events"] is None else int(data["max_events"]),
            wall_clock_seconds=(
                None
                if data["wall_clock_seconds"] is None
                else float(data["wall_clock_seconds"])
            ),
            retain_trace=bool(data["retain_trace"]),
        )


def capped_hyperperiod(taskset: TaskSet, cap_factor: float = 16.0) -> float:
    """Hyperperiod of ``taskset`` capped at ``cap_factor * max_period``.

    Periods are floats (µs); they are rounded to integer microseconds for
    the LCM.  The incremental LCM computation early-exits as soon as it
    exceeds the cap, so pathological period combinations cost nothing.
    """
    periods = [max(1, int(round(task.period))) for task in taskset]
    cap = cap_factor * max(task.period for task in taskset)
    lcm = 1
    for period in periods:
        lcm = lcm * period // math.gcd(lcm, period)
        if lcm >= cap:
            return float(cap)
    return float(lcm)


def validation_horizon(taskset: TaskSet, config: SimulationConfig) -> float:
    """Release horizon of one validation run: ``hyperperiods`` capped LCMs."""
    return config.hyperperiods * capped_hyperperiod(
        taskset, config.hyperperiod_cap_factor
    )


class InvariantMonitor:
    """Online protocol-invariant counters over a stream of intervals.

    The simulator records intervals in non-decreasing *end*-time order
    (each is emitted when its chunk completes or is preempted, and the
    simulation clock never goes backwards).  Under that ordering, two
    intervals of one resource (or one processor) overlap iff the
    later-ending one starts before the maximum end time seen so far — so a
    single ``max end`` per key detects every overlap in O(1) memory.
    """

    def __init__(self) -> None:
        self.mutual_exclusion_violations = 0
        self.processor_overlaps = 0
        self.spin_exclusivity_violations = 0
        self.intervals_observed = 0
        self._resource_max_end: Dict[int, float] = {}
        self._processor_max_end: Dict[int, float] = {}
        self._processor_spin_max_end: Dict[int, float] = {}

    def __call__(self, interval: ExecutionInterval) -> None:
        """Observe one recorded interval (the simulator's observer hook)."""
        self.intervals_observed += 1
        last = self._processor_max_end.get(interval.processor)
        if last is not None and interval.start < last - _EPS:
            self.processor_overlaps += 1
        # SPIN-specific invariant: a busy-waiting vertex occupies its
        # processor — nothing may overlap a spin interval there (and a spin
        # interval may not overlap any earlier execution).  Same O(1)
        # max-end argument as above, restricted to spin intervals.
        last_spin = self._processor_spin_max_end.get(interval.processor)
        if last_spin is not None and interval.start < last_spin - _EPS:
            self.spin_exclusivity_violations += 1
        elif interval.is_spin and last is not None and interval.start < last - _EPS:
            self.spin_exclusivity_violations += 1
        if last is None or interval.end > last:
            self._processor_max_end[interval.processor] = interval.end
        if interval.is_spin and (last_spin is None or interval.end > last_spin):
            self._processor_spin_max_end[interval.processor] = interval.end
        if interval.resource is not None:
            last = self._resource_max_end.get(interval.resource)
            if last is not None and interval.start < last - _EPS:
                self.mutual_exclusion_violations += 1
            if last is None or interval.end > last:
                self._resource_max_end[interval.resource] = interval.end

    @property
    def violations(self) -> int:
        """Total invariant violations observed so far."""
        return (
            self.mutual_exclusion_violations
            + self.processor_overlaps
            + self.spin_exclusivity_violations
        )


@dataclass
class ValidationOutcome:
    """Everything one validation run produces.

    ``observed_response_times`` maps each task to the largest response time
    among its *finished* jobs (tasks whose every job was cut by a budget are
    absent).  On a ``truncated`` run the values are sound lower bounds of a
    full run's observations; on a ``rule_error`` run the simulator hit an
    internal protocol-rule assertion (``SimulationError``) and the partial
    observations should be treated as diagnostic only.
    """

    status: str
    horizon: float
    events: int
    jobs_released: int
    jobs_finished: int
    deadline_misses: int
    mutual_exclusion_violations: int
    processor_overlaps: int
    spin_exclusivity_violations: int = 0
    observed_response_times: Dict[int, float] = field(default_factory=dict)
    truncation_reason: Optional[str] = None
    rule_error: Optional[str] = None

    @property
    def completed(self) -> bool:
        """Whether the run drained its event queue within budget."""
        return self.status == STATUS_COMPLETED


def validate_partition(
    partition: PartitionedSystem,
    config: Optional[SimulationConfig] = None,
    protocol: str = "DPCP-p",
) -> ValidationOutcome:
    """Simulate one partitioned system and collect validation evidence.

    ``protocol`` selects the runtime locking rules — any analysis-protocol
    name with a runtime behavior (``DPCP-p``/``DPCP-p-EP``/``DPCP-p-EN``,
    ``SPIN``, ``LPP``; see :func:`repro.sim.protocols.behavior_for`).
    Releases strictly periodic jobs of every task over the configured
    horizon (see :func:`validation_horizon`), runs the simulator with the
    configured budgets, and returns the observed per-task maximum response
    times plus invariant/deadline counters.  Never raises on truncation or
    protocol-rule assertions — both become outcome statuses, so campaign
    work units cannot be killed by one pathological sample.
    """
    config = config or SimulationConfig()
    monitor = InvariantMonitor()
    simulator = RuntimeSimulator(
        partition,
        protocol=behavior_for(protocol),
        record_trace=config.retain_trace,
        interval_observer=monitor,
    )
    horizon = validation_horizon(partition.taskset, config)
    simulator.release_periodic_jobs(horizon)
    status, truncation_reason, rule_error = STATUS_COMPLETED, None, None
    try:
        simulator.run(
            max_events=config.max_events,
            wall_clock_seconds=config.wall_clock_seconds,
        )
    except SimulationTruncated as cut:
        status, truncation_reason = STATUS_TRUNCATED, cut.reason
    except SimulationError as error:
        status, rule_error = STATUS_RULE_ERROR, str(error)

    trace = simulator.trace
    observed: Dict[int, float] = {}
    finished = 0
    misses = 0
    for record in trace.jobs.values():
        response = record.response_time
        if response is None:
            continue
        finished += 1
        if record.deadline_met is False:
            misses += 1
        previous = observed.get(record.task_id)
        if previous is None or response > previous:
            observed[record.task_id] = response
    tel = _active_telemetry()
    if tel is not None:
        tel.count("sim.runs")
        tel.count("sim.events", simulator.events_processed)
        tel.count("sim.jobs_released", len(trace.jobs))
        tel.count("sim.jobs_finished", finished)
        if status == STATUS_TRUNCATED:
            tel.count("sim.truncated")
        elif status == STATUS_RULE_ERROR:
            tel.count("sim.rule_errors")
    return ValidationOutcome(
        status=status,
        horizon=horizon,
        events=simulator.events_processed,
        jobs_released=len(trace.jobs),
        jobs_finished=finished,
        deadline_misses=misses,
        mutual_exclusion_violations=monitor.mutual_exclusion_violations,
        processor_overlaps=monitor.processor_overlaps,
        spin_exclusivity_violations=monitor.spin_exclusivity_violations,
        observed_response_times=observed,
        truncation_reason=truncation_reason,
        rule_error=rule_error,
    )
