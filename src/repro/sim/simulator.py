"""Event-driven simulator of the DPCP-p runtime protocol (Sec. III).

The simulator executes jobs of parallel DAG tasks on a partitioned platform
under federated scheduling with the DPCP-p locking rules:

* per-task queues ``RQ^N`` (non-critical, FIFO), ``RQ^L`` (local critical
  sections, FIFO, served before ``RQ^N``) and ``SQ`` (suspended vertices);
* per-processor queues ``RQ^G`` (granted global requests, priority ordered)
  and ``SQ^G`` (global requests waiting for the priority-ceiling test);
* Rules 1–4 of Sec. III-C, with request agents executing on the resource's
  home processor at an effective priority above every base priority.

The simulator is intended for validation (Lemma 1, mutual exclusion,
analysis-bound checks) and for reproducing illustrative schedules such as
Fig. 1 — it is not meant to be cycle-accurate.

**Tie breaking.**  Event times are compared up to the absolute tolerance
``_EPS`` (1e-9 µs): events within ``_EPS`` of the current time are treated
as *simultaneous* and are all handled before processors are rescheduled, in
the order they were pushed (a monotonically increasing event counter breaks
heap ties).  Consequently a vertex that completes exactly when another is
released never observes a half-updated queue state, and zero-length
segments are skipped without advancing time.  The same ``_EPS`` governs
interval-overlap checks in :mod:`repro.sim.trace` — sub-``_EPS`` overlaps
are rounding noise, not violations.

**Truncation semantics.**  :meth:`DpcpPSimulator.run` accepts an optional
event budget and wall-clock budget.  When either is exhausted the run stops
*between* events and raises :class:`SimulationTruncated` instead of looping
forever on a pathological workload.  The simulator state is left intact and
consistent: every interval recorded so far is complete, jobs whose last
vertex finished have a ``finish_time``, and unfinished jobs simply report
``response_time is None`` — so a truncated trace still yields sound
*lower* bounds on observed response times (never inflated ones).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.platform import PartitionedSystem
from ..model.task import DAGTask, TaskSet
from .behaviors import Segment, VertexBehavior, behaviors_from_task, validate_behaviors
from .trace import ExecutionInterval, JobRecord, RequestRecord, SimulationTrace

_EPS = 1e-9

#: How many events are processed between wall-clock budget checks (the
#: clock read is kept off the per-event hot path).
_WALL_CLOCK_CHECK_INTERVAL = 512


class SimulationError(RuntimeError):
    """Raised when the simulator reaches an inconsistent state."""


class SimulationTruncated(RuntimeError):
    """Raised by :meth:`DpcpPSimulator.run` when a budget is exhausted.

    Attributes
    ----------
    reason:
        ``"event_budget"`` or ``"wall_clock_budget"``.
    events_processed:
        Number of events handled before the run was cut.
    simulated_time:
        Simulation clock value at the cut.
    """

    def __init__(self, reason: str, events_processed: int, simulated_time: float) -> None:
        super().__init__(
            f"simulation truncated ({reason}) after {events_processed} events "
            f"at t={simulated_time:.3f}"
        )
        self.reason = reason
        self.events_processed = events_processed
        self.simulated_time = simulated_time


# --------------------------------------------------------------------------- #
# Runtime entities
# --------------------------------------------------------------------------- #
@dataclass
class _VertexInstance:
    """A vertex of one released job, with its remaining execution segments."""

    task_id: int
    job_id: int
    vertex: int
    priority: int
    segments: List[Segment]
    segment_index: int = 0
    remaining_in_segment: float = 0.0
    pending_predecessors: int = 0

    def __post_init__(self) -> None:
        if self.segments:
            self.remaining_in_segment = self.segments[0].duration

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.task_id, self.job_id, self.vertex)

    @property
    def current_segment(self) -> Optional[Segment]:
        if self.segment_index >= len(self.segments):
            return None
        return self.segments[self.segment_index]

    def advance_segment(self) -> None:
        """Move to the next segment."""
        self.segment_index += 1
        segment = self.current_segment
        self.remaining_in_segment = segment.duration if segment else 0.0

    @property
    def finished(self) -> bool:
        return self.segment_index >= len(self.segments)


@dataclass
class _Request:
    """A pending or executing global-resource request (an RPC agent)."""

    task_id: int
    job_id: int
    vertex: int
    resource: int
    priority: int
    processor: int
    remaining: float
    record: RequestRecord

    @property
    def key(self) -> Tuple[int, int, int, int]:
        return (self.task_id, self.job_id, self.vertex, self.resource)


@dataclass
class _RunningChunk:
    """What a processor is currently executing."""

    kind: str  # "vertex" or "agent"
    vertex: Optional[_VertexInstance]
    request: Optional[_Request]
    start_time: float
    sequence: int
    resource: Optional[int] = None


@dataclass
class _JobState:
    """Book-keeping of one released job."""

    task_id: int
    job_id: int
    release_time: float
    unfinished_vertices: int


# --------------------------------------------------------------------------- #
# The simulator
# --------------------------------------------------------------------------- #
class DpcpPSimulator:
    """Discrete-event simulator of DPCP-p on a partitioned system.

    Parameters
    ----------
    partition:
        The task/resource partition to simulate (clusters and global-resource
        home processors).
    behaviors:
        Optional ``task id -> {vertex -> VertexBehavior}``; derived
        automatically (requests spread evenly) when omitted.
    record_trace:
        When ``False``, execution intervals and request records are *not*
        retained (the memory hog for long horizons); job records are always
        kept, so response times and deadline checks still work.  Pair with
        ``interval_observer`` for online invariant checking.
    interval_observer:
        Optional callable receiving every completed
        :class:`~repro.sim.trace.ExecutionInterval` as it is recorded
        (whether or not the trace retains it) — the hook used by
        :class:`repro.sim.validation.InvariantMonitor`.
    """

    def __init__(
        self,
        partition: PartitionedSystem,
        behaviors: Optional[Dict[int, Dict[int, VertexBehavior]]] = None,
        *,
        record_trace: bool = True,
        interval_observer=None,
    ) -> None:
        self.partition = partition
        self.record_trace = bool(record_trace)
        self.interval_observer = interval_observer
        self.events_processed = 0
        self.taskset: TaskSet = partition.taskset
        self.behaviors: Dict[int, Dict[int, VertexBehavior]] = {}
        for task in self.taskset:
            if behaviors and task.task_id in behaviors:
                validate_behaviors(task, behaviors[task.task_id])
                self.behaviors[task.task_id] = behaviors[task.task_id]
            else:
                self.behaviors[task.task_id] = behaviors_from_task(task)

        self.trace = SimulationTrace()
        self.now = 0.0

        # Event queue: (time, order, kind, payload)
        self._events: List[Tuple[float, int, str, object]] = []
        self._event_counter = itertools.count()
        self._chunk_counter = itertools.count()

        # Scheduling state.
        self._running: Dict[int, Optional[_RunningChunk]] = {
            proc: None for proc in partition.platform.processors
        }
        self._rq_n: Dict[int, List[_VertexInstance]] = {
            t.task_id: [] for t in self.taskset
        }
        self._rq_l: Dict[int, List[_VertexInstance]] = {
            t.task_id: [] for t in self.taskset
        }
        self._suspended: Dict[int, List[_VertexInstance]] = {
            t.task_id: [] for t in self.taskset
        }
        self._rq_g: Dict[int, List[_Request]] = {
            proc: [] for proc in partition.platform.processors
        }
        self._sq_g: Dict[int, List[_Request]] = {
            proc: [] for proc in partition.platform.processors
        }

        # Lock state.
        self._local_lock_holder: Dict[Tuple[int, int], Optional[_VertexInstance]] = {}
        self._local_waiters: Dict[Tuple[int, int], List[_VertexInstance]] = {}
        self._global_lock_holder: Dict[int, Optional[_Request]] = {
            rid: None for rid in self.taskset.global_resources()
        }

        self._jobs: Dict[Tuple[int, int], _JobState] = {}
        self._instances_by_job: Dict[Tuple[int, int], Dict[int, _VertexInstance]] = {}
        self._job_counters: Dict[int, int] = {t.task_id: 0 for t in self.taskset}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def release_job(self, task_id: int, release_time: float) -> int:
        """Schedule the release of one job of ``task_id`` at ``release_time``."""
        if release_time < 0:
            raise SimulationError("release time must be non-negative")
        job_id = self._job_counters[task_id]
        self._job_counters[task_id] += 1
        self._push_event(release_time, "release", (task_id, job_id))
        task = self.taskset.task(task_id)
        self.trace.add_job(
            JobRecord(
                task_id=task_id,
                job_id=job_id,
                release_time=release_time,
                absolute_deadline=release_time + task.deadline,
            )
        )
        return job_id

    def release_periodic_jobs(self, horizon: float, offset: float = 0.0) -> None:
        """Release strictly periodic jobs of every task up to ``horizon``."""
        for task in self.taskset:
            release = offset
            while release < horizon - _EPS:
                self.release_job(task.task_id, release)
                release += task.period

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
        wall_clock_seconds: Optional[float] = None,
    ) -> SimulationTrace:
        """Run the simulation until the event queue drains (or ``until``).

        ``max_events`` and ``wall_clock_seconds`` bound the run; when either
        budget is exhausted the run stops between events and raises
        :class:`SimulationTruncated` (the trace recorded so far stays valid
        and reachable through :attr:`trace`).  The wall clock is checked
        every ``_WALL_CLOCK_CHECK_INTERVAL`` events to keep the clock read
        off the hot path, so the budget overshoots by at most that many
        events.
        """
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be non-negative, got {max_events}")
        if wall_clock_seconds is not None and wall_clock_seconds < 0:
            raise ValueError(
                f"wall_clock_seconds must be non-negative, got {wall_clock_seconds}"
            )
        started = time.monotonic() if wall_clock_seconds is not None else 0.0
        next_clock_check = self.events_processed + _WALL_CLOCK_CHECK_INTERVAL
        while self._events:
            if until is not None and self._events[0][0] > until + _EPS:
                break
            if max_events is not None and self.events_processed >= max_events:
                raise SimulationTruncated(
                    "event_budget", self.events_processed, self.now
                )
            if wall_clock_seconds is not None and self.events_processed >= next_clock_check:
                next_clock_check = self.events_processed + _WALL_CLOCK_CHECK_INTERVAL
                if time.monotonic() - started > wall_clock_seconds:
                    raise SimulationTruncated(
                        "wall_clock_budget", self.events_processed, self.now
                    )
            event_time, _, kind, payload = heapq.heappop(self._events)
            if event_time < self.now - _EPS:
                raise SimulationError("event time went backwards")
            self.now = max(self.now, event_time)
            self._handle_event(kind, payload)
            self.events_processed += 1
            # Process all simultaneous events before rescheduling.
            while self._events and abs(self._events[0][0] - self.now) <= _EPS:
                _, _, next_kind, next_payload = heapq.heappop(self._events)
                self._handle_event(next_kind, next_payload)
                self.events_processed += 1
            self._schedule_processors()
        return self.trace

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #
    def _push_event(self, time: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time, next(self._event_counter), kind, payload))

    def _handle_event(self, kind: str, payload: object) -> None:
        if kind == "release":
            task_id, job_id = payload
            self._handle_release(task_id, job_id)
        elif kind == "chunk_done":
            processor, sequence = payload
            self._handle_chunk_completion(processor, sequence)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {kind!r}")

    def _handle_release(self, task_id: int, job_id: int) -> None:
        task = self.taskset.task(task_id)
        behaviors = self.behaviors[task_id]
        instances: Dict[int, _VertexInstance] = {}
        for vertex in task.vertices:
            instance = _VertexInstance(
                task_id=task_id,
                job_id=job_id,
                vertex=vertex.index,
                priority=task.priority,
                segments=list(behaviors[vertex.index].segments),
                pending_predecessors=len(task.dag.predecessors(vertex.index)),
            )
            instances[vertex.index] = instance
        self._jobs[(task_id, job_id)] = _JobState(
            task_id=task_id,
            job_id=job_id,
            release_time=self.now,
            unfinished_vertices=len(instances),
        )
        self._instances_by_job[(task_id, job_id)] = instances
        for vertex_index, instance in instances.items():
            if instance.pending_predecessors == 0:
                self._make_eligible(instance)

    def _make_eligible(self, instance: _VertexInstance) -> None:
        """A vertex whose predecessors have finished becomes pending."""
        if instance.finished or instance.current_segment is None:
            self._complete_vertex(instance)
            return
        self._dispatch_segment(instance)

    def _dispatch_segment(self, instance: _VertexInstance) -> None:
        """Place a vertex according to its current segment (Rules 1-3)."""
        segment = instance.current_segment
        if segment is None:
            self._complete_vertex(instance)
            return
        if segment.duration <= _EPS:
            instance.advance_segment()
            self._dispatch_segment(instance)
            return
        if not segment.is_critical:
            self._rq_n[instance.task_id].append(instance)
            return
        resource = segment.resource
        if self.taskset.is_global(resource):
            self._issue_global_request(instance, resource, segment.duration)
        else:
            self._issue_local_request(instance, resource)

    # ------------------------------------------------------------------ #
    # Local resources (Rules 1, 2)
    # ------------------------------------------------------------------ #
    def _issue_local_request(self, instance: _VertexInstance, resource: int) -> None:
        key = (instance.task_id, resource)
        holder = self._local_lock_holder.get(key)
        if holder is None:
            self._local_lock_holder[key] = instance
            self._rq_l[instance.task_id].append(instance)
        else:
            self._suspended[instance.task_id].append(instance)
            self._local_waiters.setdefault(key, []).append(instance)

    def _release_local_lock(self, instance: _VertexInstance, resource: int) -> None:
        key = (instance.task_id, resource)
        if self._local_lock_holder.get(key) is not instance:
            raise SimulationError("local lock released by a non-holder")
        self._local_lock_holder[key] = None
        waiters = self._local_waiters.get(key, [])
        if waiters:
            successor = waiters.pop(0)
            self._suspended[instance.task_id].remove(successor)
            self._local_lock_holder[key] = successor
            self._rq_l[successor.task_id].append(successor)

    # ------------------------------------------------------------------ #
    # Global resources (Rules 3, 4) and the priority ceiling
    # ------------------------------------------------------------------ #
    def _issue_global_request(
        self, instance: _VertexInstance, resource: int, duration: float
    ) -> None:
        processor = self.partition.processor_of_resource(resource)
        record = RequestRecord(
            task_id=instance.task_id,
            job_id=instance.job_id,
            vertex=instance.vertex,
            resource=resource,
            priority=instance.priority,
            issue_time=self.now,
        )
        if self.record_trace:
            self.trace.requests.append(record)
        request = _Request(
            task_id=instance.task_id,
            job_id=instance.job_id,
            vertex=instance.vertex,
            resource=resource,
            priority=instance.priority,
            processor=processor,
            remaining=duration,
            record=record,
        )
        self._suspended[instance.task_id].append(instance)
        if self._ceiling_allows(processor, request):
            self._grant(request)
        else:
            self._sq_g[processor].append(request)

    def _processor_ceiling(self, processor: int) -> Optional[int]:
        """Highest ceiling among global resources locked on ``processor``."""
        ceiling: Optional[int] = None
        for rid in self.partition.resources_on_processor(processor):
            holder = self._global_lock_holder.get(rid)
            if holder is None:
                continue
            resource_ceiling = self.taskset.resource_ceiling(rid)
            if ceiling is None or resource_ceiling > ceiling:
                ceiling = resource_ceiling
        return ceiling

    def _ceiling_allows(self, processor: int, request: _Request) -> bool:
        ceiling = self._processor_ceiling(processor)
        return ceiling is None or request.priority > ceiling

    def _grant(self, request: _Request) -> None:
        if self._global_lock_holder.get(request.resource) is not None:
            raise SimulationError(
                f"resource {request.resource} granted while already locked"
            )
        self._global_lock_holder[request.resource] = request
        request.record.grant_time = self.now
        self._rq_g[request.processor].append(request)

    def _finish_request(self, request: _Request) -> None:
        """Rule 4: the request releases its lock and the vertex resumes."""
        if self._global_lock_holder.get(request.resource) is not request:
            raise SimulationError("global lock released by a non-holder")
        self._global_lock_holder[request.resource] = None
        request.record.finish_time = self.now
        self._rq_g[request.processor].remove(request)
        # Wake waiting requests that now pass the ceiling test, in priority order.
        self._admit_from_sq_g(request.processor)
        # The requesting vertex resumes with its next segment.
        instance = self._find_instance(request.task_id, request.job_id, request.vertex)
        self._suspended[request.task_id].remove(instance)
        instance.advance_segment()
        self._dispatch_segment(instance)

    def _admit_from_sq_g(self, processor: int) -> None:
        waiting = self._sq_g[processor]
        while waiting:
            candidate = max(waiting, key=lambda r: r.priority)
            if not self._ceiling_allows(processor, candidate):
                break
            if self._global_lock_holder.get(candidate.resource) is not None:
                break
            waiting.remove(candidate)
            self._grant(candidate)

    # ------------------------------------------------------------------ #
    # Vertex completion and precedence
    # ------------------------------------------------------------------ #
    def _complete_vertex(self, instance: _VertexInstance) -> None:
        job_key = (instance.task_id, instance.job_id)
        job_state = self._jobs[job_key]
        job_state.unfinished_vertices -= 1
        task = self.taskset.task(instance.task_id)
        instances = self._instances_by_job[job_key]
        for successor in task.dag.successors(instance.vertex):
            successor_instance = instances[successor]
            successor_instance.pending_predecessors -= 1
            if successor_instance.pending_predecessors == 0:
                self._make_eligible(successor_instance)
        if job_state.unfinished_vertices == 0:
            self.trace.job(instance.task_id, instance.job_id).finish_time = self.now

    def _find_instance(self, task_id: int, job_id: int, vertex: int) -> _VertexInstance:
        return self._instances_by_job[(task_id, job_id)][vertex]

    # ------------------------------------------------------------------ #
    # Processor scheduling (work-conserving, agents first)
    # ------------------------------------------------------------------ #
    def _schedule_processors(self) -> None:
        for processor in self.partition.platform.processors:
            self._schedule_processor(processor)

    def _schedule_processor(self, processor: int) -> None:
        running = self._running[processor]
        best_agent = self._best_waiting_agent(processor)

        if best_agent is not None:
            if running is None:
                self._start_agent(processor, best_agent)
                return
            if running.kind == "vertex":
                self._preempt(processor)
                self._start_agent(processor, best_agent)
                return
            if running.kind == "agent" and best_agent.priority > running.request.priority:
                self._preempt(processor)
                self._start_agent(processor, best_agent)
                return
            return

        if running is not None:
            return

        owner = self.partition.owner_of_processor(processor)
        if owner is None:
            return
        instance = self._next_ready_vertex(owner)
        if instance is not None:
            self._start_vertex(processor, instance)

    def _best_waiting_agent(self, processor: int) -> Optional[_Request]:
        executing = {
            chunk.request.key
            for chunk in self._running.values()
            if chunk is not None and chunk.kind == "agent"
        }
        candidates = [r for r in self._rq_g[processor] if r.key not in executing]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.priority)

    def _next_ready_vertex(self, task_id: int) -> Optional[_VertexInstance]:
        if self._rq_l[task_id]:
            return self._rq_l[task_id].pop(0)
        if self._rq_n[task_id]:
            return self._rq_n[task_id].pop(0)
        return None

    def _start_vertex(self, processor: int, instance: _VertexInstance) -> None:
        segment = instance.current_segment
        if segment is None:
            self._complete_vertex(instance)
            return
        sequence = next(self._chunk_counter)
        self._running[processor] = _RunningChunk(
            kind="vertex",
            vertex=instance,
            request=None,
            start_time=self.now,
            sequence=sequence,
            resource=segment.resource,
        )
        self._push_event(
            self.now + instance.remaining_in_segment, "chunk_done", (processor, sequence)
        )

    def _start_agent(self, processor: int, request: _Request) -> None:
        sequence = next(self._chunk_counter)
        self._running[processor] = _RunningChunk(
            kind="agent",
            vertex=None,
            request=request,
            start_time=self.now,
            sequence=sequence,
            resource=request.resource,
        )
        self._push_event(self.now + request.remaining, "chunk_done", (processor, sequence))

    def _preempt(self, processor: int) -> None:
        """Stop the chunk running on ``processor`` and put the work back."""
        chunk = self._running[processor]
        if chunk is None:
            return
        elapsed = self.now - chunk.start_time
        self._record_interval(processor, chunk, self.now)
        if chunk.kind == "vertex":
            instance = chunk.vertex
            instance.remaining_in_segment = max(
                0.0, instance.remaining_in_segment - elapsed
            )
            segment = instance.current_segment
            if segment is not None and segment.is_critical:
                self._rq_l[instance.task_id].insert(0, instance)
            else:
                self._rq_n[instance.task_id].insert(0, instance)
        else:
            request = chunk.request
            request.remaining = max(0.0, request.remaining - elapsed)
            # The request stays in RQ^G (it still holds the lock).
        self._running[processor] = None

    def _handle_chunk_completion(self, processor: int, sequence: int) -> None:
        chunk = self._running[processor]
        if chunk is None or chunk.sequence != sequence:
            return  # stale event (the chunk was preempted)
        self._record_interval(processor, chunk, self.now)
        self._running[processor] = None
        if chunk.kind == "vertex":
            instance = chunk.vertex
            segment = instance.current_segment
            instance.remaining_in_segment = 0.0
            if segment is not None and segment.is_critical:
                self._release_local_lock(instance, segment.resource)
            instance.advance_segment()
            if instance.finished:
                self._complete_vertex(instance)
            else:
                self._dispatch_segment(instance)
        else:
            request = chunk.request
            request.remaining = 0.0
            self._finish_request(request)

    def _record_interval(
        self, processor: int, chunk: _RunningChunk, end_time: float
    ) -> None:
        if chunk.kind == "vertex":
            instance = chunk.vertex
            interval = ExecutionInterval(
                processor=processor,
                start=chunk.start_time,
                end=end_time,
                task_id=instance.task_id,
                job_id=instance.job_id,
                vertex=instance.vertex,
                resource=chunk.resource,
                is_agent=False,
            )
        else:
            request = chunk.request
            interval = ExecutionInterval(
                processor=processor,
                start=chunk.start_time,
                end=end_time,
                task_id=request.task_id,
                job_id=request.job_id,
                vertex=request.vertex,
                resource=request.resource,
                is_agent=True,
            )
        if self.interval_observer is not None and end_time - chunk.start_time > _EPS:
            self.interval_observer(interval)
        if self.record_trace:
            self.trace.add_interval(interval)


def simulate_periodic(
    partition: PartitionedSystem,
    horizon: float,
    behaviors: Optional[Dict[int, Dict[int, VertexBehavior]]] = None,
) -> SimulationTrace:
    """Convenience wrapper: release periodic jobs up to ``horizon`` and run."""
    simulator = DpcpPSimulator(partition, behaviors)
    simulator.release_periodic_jobs(horizon)
    return simulator.run()
