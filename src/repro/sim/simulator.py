"""Event-driven runtime simulator with pluggable locking protocols.

The simulator executes jobs of parallel DAG tasks on a partitioned platform
under federated scheduling.  The *locking rules* — how a critical segment
issues a request, how locks are granted and in which order, and what a
waiting vertex does (suspend, busy-wait, run as an agent) — live behind a
:class:`~repro.sim.protocols.ProtocolBehavior` strategy object:

* :class:`~repro.sim.protocols.DpcpPBehavior` (the default) implements the
  DPCP-p rules of Sec. III — per-task queues ``RQ^N``/``RQ^L``/``SQ``,
  per-processor ``RQ^G``/``SQ^G``, priority ceilings, and request agents on
  the resource's home processor;
* :class:`~repro.sim.protocols.SpinBehavior` implements non-preemptive
  busy-waiting with a task-fair FIFO queue (the spinning vertex occupies
  its processor);
* :class:`~repro.sim.protocols.LppBehavior` implements local priority-
  ceiling semaphores (waiters suspend, grants in priority order, granted
  critical sections run boosted).

The simulator core owns everything protocol-independent: the event loop,
vertex/segment lifecycle, DAG precedence, the per-task ready queues, and
trace recording.  It is intended for validation (invariant checks,
analysis-bound soundness) and for reproducing illustrative schedules such
as Fig. 1 — it is not meant to be cycle-accurate.

**Tie breaking.**  Event times are compared up to the absolute tolerance
``_EPS`` (1e-9 µs): events within ``_EPS`` of the current time are treated
as *simultaneous* and are all handled before processors are rescheduled, in
the order they were pushed (a monotonically increasing event counter breaks
heap ties).  Consequently a vertex that completes exactly when another is
released never observes a half-updated queue state, and zero-length
segments are skipped without advancing time.  The same ``_EPS`` governs
interval-overlap checks in :mod:`repro.sim.trace` — sub-``_EPS`` overlaps
are rounding noise, not violations.

**Truncation semantics.**  :meth:`RuntimeSimulator.run` accepts an optional
event budget and wall-clock budget.  When either is exhausted the run stops
*between* events and raises :class:`SimulationTruncated` instead of looping
forever on a pathological workload.  The simulator state is left intact and
consistent: every interval recorded so far is complete, jobs whose last
vertex finished have a ``finish_time``, and unfinished jobs simply report
``response_time is None`` — so a truncated trace still yields sound
*lower* bounds on observed response times (never inflated ones).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..model.platform import PartitionedSystem
from ..model.task import TaskSet
from .behaviors import Segment, VertexBehavior, behaviors_from_task, validate_behaviors
from .trace import ExecutionInterval, JobRecord, RequestRecord, SimulationTrace

_EPS = 1e-9

#: How many events are processed between wall-clock budget checks (the
#: clock read is kept off the per-event hot path).
_WALL_CLOCK_CHECK_INTERVAL = 512


class SimulationError(RuntimeError):
    """Raised when the simulator reaches an inconsistent state."""


class SimulationTruncated(RuntimeError):
    """Raised by :meth:`RuntimeSimulator.run` when a budget is exhausted.

    Attributes
    ----------
    reason:
        ``"event_budget"`` or ``"wall_clock_budget"``.
    events_processed:
        Number of events handled before the run was cut.
    simulated_time:
        Simulation clock value at the cut.
    """

    def __init__(self, reason: str, events_processed: int, simulated_time: float) -> None:
        super().__init__(
            f"simulation truncated ({reason}) after {events_processed} events "
            f"at t={simulated_time:.3f}"
        )
        self.reason = reason
        self.events_processed = events_processed
        self.simulated_time = simulated_time


# --------------------------------------------------------------------------- #
# Runtime entities
# --------------------------------------------------------------------------- #
@dataclass
class _VertexInstance:
    """A vertex of one released job, with its remaining execution segments."""

    task_id: int
    job_id: int
    vertex: int
    priority: int
    segments: List[Segment]
    segment_index: int = 0
    remaining_in_segment: float = 0.0
    pending_predecessors: int = 0

    def __post_init__(self) -> None:
        if self.segments:
            self.remaining_in_segment = self.segments[0].duration

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.task_id, self.job_id, self.vertex)

    @property
    def current_segment(self) -> Optional[Segment]:
        if self.segment_index >= len(self.segments):
            return None
        return self.segments[self.segment_index]

    def advance_segment(self) -> None:
        """Move to the next segment."""
        self.segment_index += 1
        segment = self.current_segment
        self.remaining_in_segment = segment.duration if segment else 0.0

    @property
    def finished(self) -> bool:
        return self.segment_index >= len(self.segments)


@dataclass
class _Request:
    """A pending or executing global-resource request (an RPC agent)."""

    task_id: int
    job_id: int
    vertex: int
    resource: int
    priority: int
    processor: int
    remaining: float
    record: RequestRecord

    @property
    def key(self) -> Tuple[int, int, int, int]:
        return (self.task_id, self.job_id, self.vertex, self.resource)


@dataclass
class _RunningChunk:
    """What a processor is currently executing."""

    kind: str  # "vertex", "agent" or "spin"
    vertex: Optional[_VertexInstance]
    request: Optional[_Request]
    start_time: float
    sequence: int
    resource: Optional[int] = None


@dataclass
class _JobState:
    """Book-keeping of one released job."""

    task_id: int
    job_id: int
    release_time: float
    unfinished_vertices: int


# --------------------------------------------------------------------------- #
# The simulator
# --------------------------------------------------------------------------- #
class RuntimeSimulator:
    """Discrete-event simulator of a locking protocol on a partitioned system.

    Parameters
    ----------
    partition:
        The task/resource partition to simulate (clusters, and — for
        DPCP-p — global-resource home processors).
    behaviors:
        Optional ``task id -> {vertex -> VertexBehavior}``; derived
        automatically (requests spread evenly) when omitted.
    protocol:
        The :class:`~repro.sim.protocols.ProtocolBehavior` implementing the
        locking rules; defaults to DPCP-p.
    record_trace:
        When ``False``, execution intervals and request records are *not*
        retained (the memory hog for long horizons); job records are always
        kept, so response times and deadline checks still work.  Pair with
        ``interval_observer`` for online invariant checking.
    interval_observer:
        Optional callable receiving every completed
        :class:`~repro.sim.trace.ExecutionInterval` as it is recorded
        (whether or not the trace retains it) — the hook used by
        :class:`repro.sim.validation.InvariantMonitor`.
    """

    def __init__(
        self,
        partition: PartitionedSystem,
        behaviors: Optional[Dict[int, Dict[int, VertexBehavior]]] = None,
        *,
        protocol=None,
        record_trace: bool = True,
        interval_observer=None,
    ) -> None:
        self.partition = partition
        self.record_trace = bool(record_trace)
        self.interval_observer = interval_observer
        self.events_processed = 0
        self.taskset: TaskSet = partition.taskset
        self.behaviors: Dict[int, Dict[int, VertexBehavior]] = {}
        for task in self.taskset:
            if behaviors and task.task_id in behaviors:
                validate_behaviors(task, behaviors[task.task_id])
                self.behaviors[task.task_id] = behaviors[task.task_id]
            else:
                self.behaviors[task.task_id] = behaviors_from_task(task)

        self.trace = SimulationTrace()
        self.now = 0.0

        # Event queue: (time, order, kind, payload)
        self._events: List[Tuple[float, int, str, object]] = []
        self._event_counter = itertools.count()
        self._chunk_counter = itertools.count()

        # Protocol-independent scheduling state.
        self._running: Dict[int, Optional[_RunningChunk]] = {
            proc: None for proc in partition.platform.processors
        }
        self._rq_n: Dict[int, List[_VertexInstance]] = {
            t.task_id: [] for t in self.taskset
        }
        self._rq_l: Dict[int, List[_VertexInstance]] = {
            t.task_id: [] for t in self.taskset
        }
        self._suspended: Dict[int, List[_VertexInstance]] = {
            t.task_id: [] for t in self.taskset
        }

        self._jobs: Dict[Tuple[int, int], _JobState] = {}
        self._instances_by_job: Dict[Tuple[int, int], Dict[int, _VertexInstance]] = {}
        self._job_counters: Dict[int, int] = {t.task_id: 0 for t in self.taskset}

        if protocol is None:
            from .protocols import DpcpPBehavior

            protocol = DpcpPBehavior()
        self.protocol = protocol
        self.protocol.attach(self)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def release_job(self, task_id: int, release_time: float) -> int:
        """Schedule the release of one job of ``task_id`` at ``release_time``."""
        if release_time < 0:
            raise SimulationError("release time must be non-negative")
        job_id = self._job_counters[task_id]
        self._job_counters[task_id] += 1
        self._push_event(release_time, "release", (task_id, job_id))
        task = self.taskset.task(task_id)
        self.trace.add_job(
            JobRecord(
                task_id=task_id,
                job_id=job_id,
                release_time=release_time,
                absolute_deadline=release_time + task.deadline,
            )
        )
        return job_id

    def release_periodic_jobs(self, horizon: float, offset: float = 0.0) -> None:
        """Release strictly periodic jobs of every task up to ``horizon``."""
        for task in self.taskset:
            release = offset
            while release < horizon - _EPS:
                self.release_job(task.task_id, release)
                release += task.period

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
        wall_clock_seconds: Optional[float] = None,
    ) -> SimulationTrace:
        """Run the simulation until the event queue drains (or ``until``).

        ``max_events`` and ``wall_clock_seconds`` bound the run; when either
        budget is exhausted the run stops between events and raises
        :class:`SimulationTruncated` (the trace recorded so far stays valid
        and reachable through :attr:`trace`).  The wall clock is checked
        every ``_WALL_CLOCK_CHECK_INTERVAL`` events to keep the clock read
        off the hot path, so the budget overshoots by at most that many
        events.
        """
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be non-negative, got {max_events}")
        if wall_clock_seconds is not None and wall_clock_seconds < 0:
            raise ValueError(
                f"wall_clock_seconds must be non-negative, got {wall_clock_seconds}"
            )
        started = time.monotonic() if wall_clock_seconds is not None else 0.0
        next_clock_check = self.events_processed + _WALL_CLOCK_CHECK_INTERVAL
        while self._events:
            if until is not None and self._events[0][0] > until + _EPS:
                break
            if max_events is not None and self.events_processed >= max_events:
                raise SimulationTruncated(
                    "event_budget", self.events_processed, self.now
                )
            if wall_clock_seconds is not None and self.events_processed >= next_clock_check:
                next_clock_check = self.events_processed + _WALL_CLOCK_CHECK_INTERVAL
                if time.monotonic() - started > wall_clock_seconds:
                    raise SimulationTruncated(
                        "wall_clock_budget", self.events_processed, self.now
                    )
            event_time, _, kind, payload = heapq.heappop(self._events)
            if event_time < self.now - _EPS:
                raise SimulationError("event time went backwards")
            self.now = max(self.now, event_time)
            self._handle_event(kind, payload)
            self.events_processed += 1
            # Process all simultaneous events before rescheduling.
            while self._events and abs(self._events[0][0] - self.now) <= _EPS:
                _, _, next_kind, next_payload = heapq.heappop(self._events)
                self._handle_event(next_kind, next_payload)
                self.events_processed += 1
            self._schedule_processors()
        return self.trace

    # ------------------------------------------------------------------ #
    # Event handling
    # ------------------------------------------------------------------ #
    def _push_event(self, time: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (time, next(self._event_counter), kind, payload))

    def _handle_event(self, kind: str, payload: object) -> None:
        if kind == "release":
            task_id, job_id = payload
            self._handle_release(task_id, job_id)
        elif kind == "chunk_done":
            processor, sequence = payload
            self._handle_chunk_completion(processor, sequence)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {kind!r}")

    def _handle_release(self, task_id: int, job_id: int) -> None:
        task = self.taskset.task(task_id)
        behaviors = self.behaviors[task_id]
        instances: Dict[int, _VertexInstance] = {}
        for vertex in task.vertices:
            instance = _VertexInstance(
                task_id=task_id,
                job_id=job_id,
                vertex=vertex.index,
                priority=task.priority,
                segments=list(behaviors[vertex.index].segments),
                pending_predecessors=len(task.dag.predecessors(vertex.index)),
            )
            instances[vertex.index] = instance
        self._jobs[(task_id, job_id)] = _JobState(
            task_id=task_id,
            job_id=job_id,
            release_time=self.now,
            unfinished_vertices=len(instances),
        )
        self._instances_by_job[(task_id, job_id)] = instances
        for vertex_index, instance in instances.items():
            if instance.pending_predecessors == 0:
                self._make_eligible(instance)

    def _make_eligible(self, instance: _VertexInstance) -> None:
        """A vertex whose predecessors have finished becomes pending."""
        if instance.finished or instance.current_segment is None:
            self._complete_vertex(instance)
            return
        self._dispatch_segment(instance)

    def _dispatch_segment(self, instance: _VertexInstance) -> None:
        """Place a vertex according to its current segment.

        Non-critical segments join the task's ``RQ^N``; critical segments
        are handed to the protocol behavior, which decides how the request
        is issued (suspend and dispatch an agent, enter a spin queue, take
        a local semaphore, ...).
        """
        segment = instance.current_segment
        if segment is None:
            self._complete_vertex(instance)
            return
        if segment.duration <= _EPS:
            instance.advance_segment()
            self._dispatch_segment(instance)
            return
        if not segment.is_critical:
            self._rq_n[instance.task_id].append(instance)
            return
        self.protocol.issue_request(instance, segment)

    # ------------------------------------------------------------------ #
    # Vertex completion and precedence
    # ------------------------------------------------------------------ #
    def _complete_vertex(self, instance: _VertexInstance) -> None:
        job_key = (instance.task_id, instance.job_id)
        job_state = self._jobs[job_key]
        job_state.unfinished_vertices -= 1
        task = self.taskset.task(instance.task_id)
        instances = self._instances_by_job[job_key]
        for successor in task.dag.successors(instance.vertex):
            successor_instance = instances[successor]
            successor_instance.pending_predecessors -= 1
            if successor_instance.pending_predecessors == 0:
                self._make_eligible(successor_instance)
        if job_state.unfinished_vertices == 0:
            self.trace.job(instance.task_id, instance.job_id).finish_time = self.now

    def _find_instance(self, task_id: int, job_id: int, vertex: int) -> _VertexInstance:
        return self._instances_by_job[(task_id, job_id)][vertex]

    # ------------------------------------------------------------------ #
    # Processor scheduling (delegated to the protocol behavior)
    # ------------------------------------------------------------------ #
    def _schedule_processors(self) -> None:
        for processor in self.partition.platform.processors:
            self.protocol.schedule_processor(processor)

    def _next_ready_vertex(self, task_id: int) -> Optional[_VertexInstance]:
        if self._rq_l[task_id]:
            return self._rq_l[task_id].pop(0)
        if self._rq_n[task_id]:
            return self._rq_n[task_id].pop(0)
        return None

    def _start_vertex(self, processor: int, instance: _VertexInstance) -> None:
        segment = instance.current_segment
        if segment is None:
            self._complete_vertex(instance)
            return
        sequence = next(self._chunk_counter)
        self._running[processor] = _RunningChunk(
            kind="vertex",
            vertex=instance,
            request=None,
            start_time=self.now,
            sequence=sequence,
            resource=segment.resource,
        )
        self._push_event(
            self.now + instance.remaining_in_segment, "chunk_done", (processor, sequence)
        )

    def _start_agent(self, processor: int, request: _Request) -> None:
        sequence = next(self._chunk_counter)
        self._running[processor] = _RunningChunk(
            kind="agent",
            vertex=None,
            request=request,
            start_time=self.now,
            sequence=sequence,
            resource=request.resource,
        )
        self._push_event(self.now + request.remaining, "chunk_done", (processor, sequence))

    def _start_spin(self, processor: int, instance: _VertexInstance) -> None:
        """Begin a busy-wait chunk: the vertex occupies ``processor``.

        No completion event is pushed — the spin ends only when the protocol
        behavior hands over the lock and calls :meth:`_end_spin`.
        """
        sequence = next(self._chunk_counter)
        self._running[processor] = _RunningChunk(
            kind="spin",
            vertex=instance,
            request=None,
            start_time=self.now,
            sequence=sequence,
            resource=None,
        )

    def _end_spin(self, processor: int) -> _VertexInstance:
        """Finish the busy-wait on ``processor`` and record the spin interval."""
        chunk = self._running[processor]
        if chunk is None or chunk.kind != "spin":
            raise SimulationError(f"no spin in progress on processor {processor}")
        self._record_interval(processor, chunk, self.now)
        self._running[processor] = None
        return chunk.vertex

    def _preempt(self, processor: int) -> None:
        """Stop the chunk running on ``processor`` and put the work back."""
        chunk = self._running[processor]
        if chunk is None:
            return
        if chunk.kind == "spin":
            raise SimulationError("a busy-waiting vertex cannot be preempted")
        elapsed = self.now - chunk.start_time
        self._record_interval(processor, chunk, self.now)
        if chunk.kind == "vertex":
            instance = chunk.vertex
            instance.remaining_in_segment = max(
                0.0, instance.remaining_in_segment - elapsed
            )
            segment = instance.current_segment
            if segment is not None and segment.is_critical:
                self._rq_l[instance.task_id].insert(0, instance)
            else:
                self._rq_n[instance.task_id].insert(0, instance)
        else:
            request = chunk.request
            request.remaining = max(0.0, request.remaining - elapsed)
            # The request stays in RQ^G (it still holds the lock).
        self._running[processor] = None

    def _handle_chunk_completion(self, processor: int, sequence: int) -> None:
        chunk = self._running[processor]
        if chunk is None or chunk.sequence != sequence:
            return  # stale event (the chunk was preempted)
        self._record_interval(processor, chunk, self.now)
        self._running[processor] = None
        if chunk.kind == "vertex":
            instance = chunk.vertex
            segment = instance.current_segment
            instance.remaining_in_segment = 0.0
            if segment is not None and segment.is_critical:
                self.protocol.critical_section_finished(instance, segment)
            instance.advance_segment()
            if instance.finished:
                self._complete_vertex(instance)
            else:
                self._dispatch_segment(instance)
        else:
            request = chunk.request
            request.remaining = 0.0
            self.protocol.agent_finished(request)

    def _record_interval(
        self, processor: int, chunk: _RunningChunk, end_time: float
    ) -> None:
        if chunk.kind == "agent":
            request = chunk.request
            interval = ExecutionInterval(
                processor=processor,
                start=chunk.start_time,
                end=end_time,
                task_id=request.task_id,
                job_id=request.job_id,
                vertex=request.vertex,
                resource=request.resource,
                is_agent=True,
            )
        else:
            instance = chunk.vertex
            interval = ExecutionInterval(
                processor=processor,
                start=chunk.start_time,
                end=end_time,
                task_id=instance.task_id,
                job_id=instance.job_id,
                vertex=instance.vertex,
                resource=chunk.resource,
                is_agent=False,
                is_spin=chunk.kind == "spin",
            )
        if self.interval_observer is not None and end_time - chunk.start_time > _EPS:
            self.interval_observer(interval)
        if self.record_trace:
            self.trace.add_interval(interval)


class DpcpPSimulator(RuntimeSimulator):
    """Backwards-compatible name for the DPCP-p-defaulting simulator.

    ``RuntimeSimulator`` already defaults to
    :class:`~repro.sim.protocols.DpcpPBehavior`; this subclass exists so the
    pre-refactor name (and every existing call site) keeps working.
    """


def simulate_periodic(
    partition: PartitionedSystem,
    horizon: float,
    behaviors: Optional[Dict[int, Dict[int, VertexBehavior]]] = None,
    *,
    protocol=None,
) -> SimulationTrace:
    """Convenience wrapper: release periodic jobs up to ``horizon`` and run."""
    simulator = RuntimeSimulator(partition, behaviors, protocol=protocol)
    simulator.release_periodic_jobs(horizon)
    return simulator.run()
