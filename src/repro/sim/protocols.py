"""Locking-protocol strategies for the runtime simulator.

Each :class:`ProtocolBehavior` encapsulates one protocol's locking rules —
how a critical segment issues its request, in which order waiting requests
are granted, and what a waiting vertex does in the meantime (suspend,
busy-wait, run as an agent).  The simulator core
(:class:`~repro.sim.simulator.RuntimeSimulator`) owns everything else:
the event loop, segment lifecycle, DAG precedence and trace recording.

Three behaviors ship with the repo, matching the analyses in
:mod:`repro.analysis`:

``DpcpPBehavior``
    The paper's DPCP-p rules (Sec. III): global requests run as *agents*
    on the resource's home processor at an effective priority above every
    base priority, gated by a per-processor priority ceiling; local
    requests take a per-task FIFO semaphore.
``SpinBehavior``
    Non-preemptive busy-waiting (the SPIN baseline): every critical
    section executes on the task's own cluster; a blocked vertex spins,
    *occupying its processor*, in a task-fair FIFO queue.
``LppBehavior``
    Local priority-ceiling semaphores (the LPP baseline): waiters
    suspend, grants go to the highest-priority waiter, and a granted
    critical section runs *boosted* — it preempts non-critical execution
    of its own task so the holder cannot be delayed by ordinary work.

The exact grant orders and their tie-breaking rules are documented on each
class; ``docs/validation.md`` states the fidelity envelope they imply.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .behaviors import Segment
from .simulator import RuntimeSimulator, SimulationError, _Request, _VertexInstance
from .trace import RequestRecord


class ProtocolBehavior:
    """Strategy interface for a locking protocol's runtime rules.

    A behavior instance is attached to exactly one
    :class:`~repro.sim.simulator.RuntimeSimulator` (via :meth:`attach`,
    called from the simulator constructor) and holds all protocol-specific
    lock state.  The base class provides the protocol-independent
    work-conserving processor scheduler; subclasses override the hooks
    they need.
    """

    #: Protocol family name (for diagnostics).
    name = "abstract"

    def __init__(self) -> None:
        self.sim: Optional[RuntimeSimulator] = None

    def attach(self, sim: RuntimeSimulator) -> None:
        """Bind the behavior to its simulator and initialise lock state."""
        if self.sim is not None:
            raise SimulationError(
                "a ProtocolBehavior instance cannot be shared between simulators"
            )
        self.sim = sim

    # ------------------------------------------------------------------ #
    # Hooks called by the simulator core
    # ------------------------------------------------------------------ #
    def issue_request(self, instance: _VertexInstance, segment: Segment) -> None:
        """A vertex reached a critical segment: issue the lock request."""
        raise NotImplementedError

    def critical_section_finished(self, instance: _VertexInstance, segment: Segment) -> None:
        """A critical section executed as a vertex chunk just completed."""
        raise NotImplementedError

    def agent_finished(self, request: _Request) -> None:
        """An agent chunk completed (only protocols that dispatch agents)."""
        raise SimulationError(f"protocol {self.name!r} does not execute agents")

    def schedule_processor(self, processor: int) -> None:
        """Work-conserving default: fill an idle processor with owner work."""
        sim = self.sim
        if sim._running[processor] is not None:
            return
        owner = sim.partition.owner_of_processor(processor)
        if owner is None:
            return
        instance = sim._next_ready_vertex(owner)
        if instance is not None:
            self.place_vertex(processor, instance)

    def place_vertex(self, processor: int, instance: _VertexInstance) -> None:
        """Put a ready vertex on an idle processor (hook for lock attempts)."""
        self.sim._start_vertex(processor, instance)

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _new_record(self, instance: _VertexInstance, resource: int) -> RequestRecord:
        """Create (and, when tracing, retain) a request life-cycle record."""
        sim = self.sim
        record = RequestRecord(
            task_id=instance.task_id,
            job_id=instance.job_id,
            vertex=instance.vertex,
            resource=resource,
            priority=instance.priority,
            issue_time=sim.now,
        )
        if sim.record_trace:
            sim.trace.requests.append(record)
        return record


# --------------------------------------------------------------------------- #
# DPCP-p (Sec. III, Rules 1-4)
# --------------------------------------------------------------------------- #
class DpcpPBehavior(ProtocolBehavior):
    """The DPCP-p locking rules of Sec. III.

    * Local requests (Rules 1, 2) take a per-``(task, resource)`` FIFO
      semaphore; the holder joins ``RQ^L`` (served before ``RQ^N``),
      waiters suspend.
    * Global requests (Rules 3, 4) suspend the vertex and dispatch an
      *agent* on the resource's home processor.  A request enters the
      granted queue ``RQ^G`` only if its priority exceeds the processor's
      priority ceiling (the highest ceiling among locked resources hosted
      there), otherwise it waits in ``SQ^G``.  Agents preempt vertices,
      and higher-priority agents preempt lower-priority agents.
    """

    name = "DPCP-p"

    def attach(self, sim: RuntimeSimulator) -> None:
        """Initialise the DPCP-p queues and lock tables for ``sim``."""
        super().attach(sim)
        self._rq_g: Dict[int, List[_Request]] = {
            proc: [] for proc in sim.partition.platform.processors
        }
        self._sq_g: Dict[int, List[_Request]] = {
            proc: [] for proc in sim.partition.platform.processors
        }
        self._local_lock_holder: Dict[Tuple[int, int], Optional[_VertexInstance]] = {}
        self._local_waiters: Dict[Tuple[int, int], List[_VertexInstance]] = {}
        self._global_lock_holder: Dict[int, Optional[_Request]] = {
            rid: None for rid in sim.taskset.global_resources()
        }

    # ------------------------------------------------------------------ #
    # Request issue and completion
    # ------------------------------------------------------------------ #
    def issue_request(self, instance: _VertexInstance, segment: Segment) -> None:
        """Rule 1/3: local requests take the semaphore, global ones an agent."""
        resource = segment.resource
        if self.sim.taskset.is_global(resource):
            self._issue_global_request(instance, resource, segment.duration)
        else:
            self._issue_local_request(instance, resource)

    def critical_section_finished(self, instance: _VertexInstance, segment: Segment) -> None:
        """A local critical section completed: release the semaphore."""
        self._release_local_lock(instance, segment.resource)

    def agent_finished(self, request: _Request) -> None:
        """Rule 4: the agent's request releases its lock, the vertex resumes."""
        self._finish_request(request)

    # ------------------------------------------------------------------ #
    # Local resources (Rules 1, 2)
    # ------------------------------------------------------------------ #
    def _issue_local_request(self, instance: _VertexInstance, resource: int) -> None:
        sim = self.sim
        key = (instance.task_id, resource)
        holder = self._local_lock_holder.get(key)
        if holder is None:
            self._local_lock_holder[key] = instance
            sim._rq_l[instance.task_id].append(instance)
        else:
            sim._suspended[instance.task_id].append(instance)
            self._local_waiters.setdefault(key, []).append(instance)

    def _release_local_lock(self, instance: _VertexInstance, resource: int) -> None:
        sim = self.sim
        key = (instance.task_id, resource)
        if self._local_lock_holder.get(key) is not instance:
            raise SimulationError("local lock released by a non-holder")
        self._local_lock_holder[key] = None
        waiters = self._local_waiters.get(key, [])
        if waiters:
            successor = waiters.pop(0)
            sim._suspended[instance.task_id].remove(successor)
            self._local_lock_holder[key] = successor
            sim._rq_l[successor.task_id].append(successor)

    # ------------------------------------------------------------------ #
    # Global resources (Rules 3, 4) and the priority ceiling
    # ------------------------------------------------------------------ #
    def _issue_global_request(
        self, instance: _VertexInstance, resource: int, duration: float
    ) -> None:
        sim = self.sim
        processor = sim.partition.processor_of_resource(resource)
        record = self._new_record(instance, resource)
        request = _Request(
            task_id=instance.task_id,
            job_id=instance.job_id,
            vertex=instance.vertex,
            resource=resource,
            priority=instance.priority,
            processor=processor,
            remaining=duration,
            record=record,
        )
        sim._suspended[instance.task_id].append(instance)
        if self._ceiling_allows(processor, request):
            self._grant(request)
        else:
            self._sq_g[processor].append(request)

    def _processor_ceiling(self, processor: int) -> Optional[int]:
        """Highest ceiling among global resources locked on ``processor``."""
        sim = self.sim
        ceiling: Optional[int] = None
        for rid in sim.partition.resources_on_processor(processor):
            holder = self._global_lock_holder.get(rid)
            if holder is None:
                continue
            resource_ceiling = sim.taskset.resource_ceiling(rid)
            if ceiling is None or resource_ceiling > ceiling:
                ceiling = resource_ceiling
        return ceiling

    def _ceiling_allows(self, processor: int, request: _Request) -> bool:
        ceiling = self._processor_ceiling(processor)
        return ceiling is None or request.priority > ceiling

    def _grant(self, request: _Request) -> None:
        if self._global_lock_holder.get(request.resource) is not None:
            raise SimulationError(
                f"resource {request.resource} granted while already locked"
            )
        self._global_lock_holder[request.resource] = request
        request.record.grant_time = self.sim.now
        self._rq_g[request.processor].append(request)

    def _finish_request(self, request: _Request) -> None:
        """Rule 4: the request releases its lock and the vertex resumes."""
        sim = self.sim
        if self._global_lock_holder.get(request.resource) is not request:
            raise SimulationError("global lock released by a non-holder")
        self._global_lock_holder[request.resource] = None
        request.record.finish_time = sim.now
        self._rq_g[request.processor].remove(request)
        # Wake waiting requests that now pass the ceiling test, in priority order.
        self._admit_from_sq_g(request.processor)
        # The requesting vertex resumes with its next segment.
        instance = sim._find_instance(request.task_id, request.job_id, request.vertex)
        sim._suspended[request.task_id].remove(instance)
        instance.advance_segment()
        sim._dispatch_segment(instance)

    def _admit_from_sq_g(self, processor: int) -> None:
        waiting = self._sq_g[processor]
        while waiting:
            candidate = max(waiting, key=lambda r: r.priority)
            if not self._ceiling_allows(processor, candidate):
                break
            if self._global_lock_holder.get(candidate.resource) is not None:
                break
            waiting.remove(candidate)
            self._grant(candidate)

    # ------------------------------------------------------------------ #
    # Processor scheduling (work-conserving, agents first)
    # ------------------------------------------------------------------ #
    def schedule_processor(self, processor: int) -> None:
        """Agents preempt vertices; higher-priority agents preempt lower."""
        sim = self.sim
        running = sim._running[processor]
        best_agent = self._best_waiting_agent(processor)

        if best_agent is not None:
            if running is None:
                sim._start_agent(processor, best_agent)
                return
            if running.kind == "vertex":
                sim._preempt(processor)
                sim._start_agent(processor, best_agent)
                return
            if running.kind == "agent" and best_agent.priority > running.request.priority:
                sim._preempt(processor)
                sim._start_agent(processor, best_agent)
                return
            return

        if running is not None:
            return

        owner = sim.partition.owner_of_processor(processor)
        if owner is None:
            return
        instance = sim._next_ready_vertex(owner)
        if instance is not None:
            self.place_vertex(processor, instance)

    def _best_waiting_agent(self, processor: int) -> Optional[_Request]:
        sim = self.sim
        executing = {
            chunk.request.key
            for chunk in sim._running.values()
            if chunk is not None and chunk.kind == "agent"
        }
        candidates = [r for r in self._rq_g[processor] if r.key not in executing]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.priority)


# --------------------------------------------------------------------------- #
# SPIN (non-preemptive busy-waiting, task-fair FIFO)
# --------------------------------------------------------------------------- #
@dataclass
class _SpinWaiter:
    """One vertex busy-waiting for a resource."""

    instance: _VertexInstance
    processor: int
    record: RequestRecord
    arrival: int
    #: How many critical sections of the *waiter's own task* were granted
    #: while it spun — the task-fair FIFO sort key (see
    #: :class:`SpinBehavior`).
    own_served: int = 0


class SpinBehavior(ProtocolBehavior):
    """Non-preemptive busy-wait locking (the SPIN baseline).

    Every critical section executes on the task's own cluster as an
    ordinary vertex chunk — there are no agents and no home processors, so
    the behavior never touches ``partition.resource_assignment``.  A vertex
    whose critical segment finds the lock taken *spins*: it keeps its
    processor (recorded as an ``is_spin`` interval) until the lock is
    handed over.  Spinning is non-preemptive — no other vertex may run on
    the processor during the wait.

    **Grant order (task-fair FIFO).**  Waiters are granted in spin-start
    order (FIFO), except that a task never receives two consecutive grants
    while another task's earlier waiter is still spinning: the next grant
    goes to the waiter that has deferred to the fewest critical sections
    of *its own task* since it started spinning, ties broken by spin start
    (then by a deterministic arrival counter for simultaneous starts).
    This is the hand-off discipline of hierarchical/cohort FIFO locks, and
    it realises exactly the per-request blocking charged by
    :mod:`repro.analysis.spin`: one critical section per *other* task plus
    the task's own concurrent spinners — a plain per-request FIFO would
    let one task's parallel spinners double-block a neighbour and break
    the analytical bound.

    **Spin accounting.**  The spin interval is charged to the waiting
    vertex on its own processor (``is_spin=True``, ``resource=None``); the
    critical section itself starts at grant time as a normal vertex chunk.
    A request's ``issue_time`` is the moment the vertex reached the lock
    on its processor, and ``grant_time - issue_time`` is exactly the time
    it spun.
    """

    name = "SPIN"

    def attach(self, sim: RuntimeSimulator) -> None:
        """Initialise the per-resource holder and spin queues for ``sim``."""
        super().attach(sim)
        self._holder: Dict[int, Optional[_SpinWaiter]] = {}
        self._queue: Dict[int, List[_SpinWaiter]] = {}
        self._arrival = itertools.count()

    def issue_request(self, instance: _VertexInstance, segment: Segment) -> None:
        """Queue the vertex for a processor; the lock attempt happens there.

        Under SPIN a request cannot wait without a processor — the vertex
        first competes for one through ``RQ^L`` (served before ``RQ^N`` so
        lock attempts are not starved by non-critical work), and attempts
        the lock the moment it is placed (:meth:`place_vertex`).
        """
        self.sim._rq_l[instance.task_id].append(instance)

    def place_vertex(self, processor: int, instance: _VertexInstance) -> None:
        """Attempt the lock when a critical vertex lands on a processor."""
        sim = self.sim
        segment = instance.current_segment
        if segment is None or not segment.is_critical:
            sim._start_vertex(processor, instance)
            return
        resource = segment.resource
        record = self._new_record(instance, resource)
        waiter = _SpinWaiter(
            instance=instance,
            processor=processor,
            record=record,
            arrival=next(self._arrival),
        )
        if self._holder.get(resource) is None:
            record.grant_time = sim.now
            self._holder[resource] = waiter
            sim._start_vertex(processor, instance)
        else:
            self._queue.setdefault(resource, []).append(waiter)
            sim._start_spin(processor, instance)

    def critical_section_finished(self, instance: _VertexInstance, segment: Segment) -> None:
        """Release the lock and hand it to the next task-fair FIFO waiter."""
        sim = self.sim
        resource = segment.resource
        holder = self._holder.get(resource)
        if holder is None or holder.instance is not instance:
            raise SimulationError("spin lock released by a non-holder")
        holder.record.finish_time = sim.now
        self._holder[resource] = None
        queue = self._queue.get(resource)
        if not queue:
            return
        winner = min(queue, key=lambda w: (w.own_served, w.arrival))
        queue.remove(winner)
        for waiter in queue:
            if waiter.instance.task_id == winner.instance.task_id:
                waiter.own_served += 1
        spinner = sim._end_spin(winner.processor)
        if spinner is not winner.instance:
            raise SimulationError("spin hand-off to a vertex that was not spinning")
        winner.record.grant_time = sim.now
        self._holder[resource] = winner
        sim._start_vertex(winner.processor, winner.instance)


# --------------------------------------------------------------------------- #
# LPP (local priority-ceiling semaphores)
# --------------------------------------------------------------------------- #
@dataclass
class _LppWaiter:
    """One vertex suspended on an LPP semaphore."""

    instance: _VertexInstance
    record: RequestRecord
    arrival: int


class LppBehavior(ProtocolBehavior):
    """Local locking with priority ceilings (the LPP baseline).

    Critical sections execute on the task's own cluster — no agents, no
    home processors, ``partition.resource_assignment`` is never consulted.
    A vertex whose request finds the lock taken *suspends* (it releases
    its processor); on release the semaphore is handed to the
    highest-priority waiter, ties broken FIFO by request arrival (all
    vertices of one task share the task's priority, so intra-task ties are
    FIFO by construction).  Because lower-priority waiters are never
    granted ahead of a higher-priority one, a request is blocked by at
    most the single lower-priority critical section already in flight when
    it arrives — the ``Lemma 1``-style property the LPP analysis
    (:mod:`repro.analysis.lpp`) charges as its blocking term.

    **Ceiling boosting.**  A granted critical section runs at ceiling
    priority: if the task's cluster has no idle processor, the grantee
    preempts the lowest-indexed processor running a *non-critical* chunk
    of its task (the preempted work returns to the front of ``RQ^N``).
    Without boosting, a holder could sit runnable-but-not-running behind
    its own task's ordinary work while other tasks wait on the semaphore —
    blocking the analysis never charges.  If every processor of the
    cluster is executing a critical section, the grantee joins the front
    of ``RQ^L`` and takes the next processor that frees.
    """

    name = "LPP"

    def attach(self, sim: RuntimeSimulator) -> None:
        """Initialise the per-resource semaphore state for ``sim``."""
        super().attach(sim)
        self._holder: Dict[int, Optional[_LppWaiter]] = {}
        self._waiters: Dict[int, List[_LppWaiter]] = {}
        self._arrival = itertools.count()

    def issue_request(self, instance: _VertexInstance, segment: Segment) -> None:
        """Take the semaphore if free, otherwise suspend in priority order."""
        sim = self.sim
        resource = segment.resource
        record = self._new_record(instance, resource)
        waiter = _LppWaiter(
            instance=instance, record=record, arrival=next(self._arrival)
        )
        if self._holder.get(resource) is None:
            record.grant_time = sim.now
            self._holder[resource] = waiter
            self._place_boosted(instance)
        else:
            sim._suspended[instance.task_id].append(instance)
            self._waiters.setdefault(resource, []).append(waiter)

    def critical_section_finished(self, instance: _VertexInstance, segment: Segment) -> None:
        """Release the semaphore and grant the highest-priority waiter."""
        sim = self.sim
        resource = segment.resource
        holder = self._holder.get(resource)
        if holder is None or holder.instance is not instance:
            raise SimulationError("LPP semaphore released by a non-holder")
        holder.record.finish_time = sim.now
        self._holder[resource] = None
        waiters = self._waiters.get(resource)
        if not waiters:
            return
        winner = min(waiters, key=lambda w: (-w.instance.priority, w.arrival))
        waiters.remove(winner)
        sim._suspended[winner.instance.task_id].remove(winner.instance)
        winner.record.grant_time = sim.now
        self._holder[resource] = winner
        self._place_boosted(winner.instance)

    def _place_boosted(self, instance: _VertexInstance) -> None:
        """Start a granted critical section at ceiling (boosted) priority."""
        sim = self.sim
        processors = sim.partition.clusters[instance.task_id].processors
        for processor in processors:
            if sim._running[processor] is None:
                sim._start_vertex(processor, instance)
                return
        for processor in processors:
            chunk = sim._running[processor]
            if chunk.kind == "vertex" and chunk.resource is None:
                sim._preempt(processor)
                sim._start_vertex(processor, instance)
                return
        sim._rq_l[instance.task_id].insert(0, instance)


#: Analysis-protocol name -> runtime behavior class.  Both DPCP-p analysis
#: variants (EP/EN) validate against the same runtime rules — they differ
#: only in how the *bound* is computed.
RUNTIME_BEHAVIORS = {
    "DPCP-p": DpcpPBehavior,
    "DPCP-p-EP": DpcpPBehavior,
    "DPCP-p-EN": DpcpPBehavior,
    "SPIN": SpinBehavior,
    "LPP": LppBehavior,
}


def behavior_for(protocol: str) -> ProtocolBehavior:
    """Instantiate the runtime behavior validating ``protocol``'s analysis.

    Raises :class:`ValueError` for protocols without runtime rules
    (FED-FP ignores locking entirely, so there is nothing to simulate).
    """
    try:
        factory = RUNTIME_BEHAVIORS[protocol]
    except KeyError:
        raise ValueError(
            f"protocol {protocol!r} has no runtime behavior "
            f"(simulatable: {', '.join(sorted(set(RUNTIME_BEHAVIORS)))})"
        ) from None
    return factory()
