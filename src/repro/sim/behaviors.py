"""Execution behaviours: how a vertex's WCET decomposes into segments.

The analytical model only needs per-vertex WCETs and request counts; the
runtime simulator additionally needs to know *when* within a vertex's
execution each request is issued.  A :class:`VertexBehavior` is an ordered
list of segments — non-critical computation or a critical section on a
specific resource — whose durations sum to the vertex WCET.

:func:`behaviors_from_task` derives a default behaviour (requests spread
evenly through the vertex) so that any generated task can be simulated
without extra annotations; examples that reproduce a concrete schedule (e.g.
Fig. 1) construct behaviours explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..model.task import DAGTask


class BehaviorError(ValueError):
    """Raised for inconsistent vertex behaviours."""


@dataclass(frozen=True)
class Segment:
    """One contiguous piece of a vertex's execution.

    ``resource is None`` denotes non-critical computation; otherwise the
    segment is a critical section on that resource.
    """

    duration: float
    resource: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise BehaviorError("segment duration must be non-negative")

    @property
    def is_critical(self) -> bool:
        """Whether this segment is a critical section."""
        return self.resource is not None


@dataclass
class VertexBehavior:
    """The ordered segments executed by one vertex."""

    vertex: int
    segments: List[Segment] = field(default_factory=list)

    @property
    def total_duration(self) -> float:
        """Total execution time of the vertex."""
        return sum(s.duration for s in self.segments)

    def request_counts(self) -> Dict[int, int]:
        """Number of critical sections per resource in this behaviour."""
        counts: Dict[int, int] = {}
        for segment in self.segments:
            if segment.is_critical:
                counts[segment.resource] = counts.get(segment.resource, 0) + 1
        return counts


def validate_behaviors(task: DAGTask, behaviors: Dict[int, VertexBehavior]) -> None:
    """Check that behaviours match the task's WCETs and request counts."""
    for vertex in task.vertices:
        behavior = behaviors.get(vertex.index)
        if behavior is None:
            raise BehaviorError(f"vertex {vertex.index} has no behaviour")
        if abs(behavior.total_duration - vertex.wcet) > 1e-6:
            raise BehaviorError(
                f"vertex {vertex.index}: behaviour duration {behavior.total_duration} "
                f"!= WCET {vertex.wcet}"
            )
        counts = behavior.request_counts()
        for rid, expected in vertex.requests.items():
            if expected and counts.get(rid, 0) != expected:
                raise BehaviorError(
                    f"vertex {vertex.index}: behaviour issues {counts.get(rid, 0)} "
                    f"requests to resource {rid}, expected {expected}"
                )


def behaviors_from_task(task: DAGTask) -> Dict[int, VertexBehavior]:
    """Derive default behaviours: requests spread evenly through each vertex.

    Each vertex alternates equal slices of non-critical execution with its
    critical sections (in resource-id order), starting and ending with a
    non-critical slice when non-critical time is available.
    """
    behaviors: Dict[int, VertexBehavior] = {}
    for vertex in task.vertices:
        critical: List[Segment] = []
        for rid in sorted(vertex.requests):
            count = vertex.requests[rid]
            cs_length = task.cs_length(rid)
            critical.extend(Segment(cs_length, rid) for _ in range(count))
        cs_total = sum(s.duration for s in critical)
        non_critical_total = vertex.wcet - cs_total
        if non_critical_total < -1e-9:
            raise BehaviorError(
                f"vertex {vertex.index}: critical sections exceed the WCET"
            )
        non_critical_total = max(0.0, non_critical_total)
        slices = len(critical) + 1
        slice_duration = non_critical_total / slices
        segments: List[Segment] = []
        for piece in critical:
            if slice_duration > 0:
                segments.append(Segment(slice_duration))
            segments.append(piece)
        if slice_duration > 0:
            segments.append(Segment(slice_duration))
        if not segments:
            segments.append(Segment(0.0))
        behaviors[vertex.index] = VertexBehavior(vertex.index, segments)
    validate_behaviors(task, behaviors)
    return behaviors
