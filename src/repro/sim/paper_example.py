"""The two-task example of Fig. 1, ready to simulate.

The paper illustrates DPCP-p with two DAG tasks on four processors (two
processors per task), one global resource ℓ1 (home processor ℘2) and one
local resource ℓ2 of task τi.  This module constructs that system — DAG
structures, WCETs, resource usage, explicit execution behaviours, clusters,
and resource placement — so that tests and examples can replay the schedule
and check the behaviours called out in Sec. III-C:

* at t = 2, vertex v_{i,2} suspends on ℓ1 until its agent finishes at t = 7;
* the request ℛ_{i,1} waits in SQ^G_2 until ℛ_{j,1} releases ℓ1 at t = 4;
* v_{i,3} holds the local resource ℓ2 during [2, 4] while v_{i,4} suspends.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..model.dag import DAG
from ..model.platform import Cluster, PartitionedSystem, Platform
from ..model.resources import Resource, ResourceUsage
from ..model.task import DAGTask, TaskSet, Vertex
from .behaviors import Segment, VertexBehavior

#: Resource ids used by the example.
RESOURCE_GLOBAL = 1  # ℓ1 in the paper (red)
RESOURCE_LOCAL = 2   # ℓ2 in the paper (blue)


def build_task_i() -> Tuple[DAGTask, Dict[int, VertexBehavior]]:
    """Task τi of Fig. 1(a): 8 vertices, longest path (v1, v5, v7, v8) of length 10."""
    wcets = [2.0, 3.0, 2.0, 2.0, 4.0, 2.0, 2.0, 2.0]
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4),
        (1, 5),
        (2, 6), (3, 6), (4, 6),
        (5, 7), (6, 7),
    ]
    dag = DAG(8, edges)
    vertices = [
        Vertex(0, wcets[0]),
        Vertex(1, wcets[1], requests={RESOURCE_GLOBAL: 1}),
        Vertex(2, wcets[2], requests={RESOURCE_LOCAL: 1}),
        Vertex(3, wcets[3], requests={RESOURCE_LOCAL: 1}),
        Vertex(4, wcets[4]),
        Vertex(5, wcets[5]),
        Vertex(6, wcets[6]),
        Vertex(7, wcets[7]),
    ]
    usages = [
        ResourceUsage(RESOURCE_GLOBAL, max_requests=1, cs_length=3.0),
        ResourceUsage(RESOURCE_LOCAL, max_requests=2, cs_length=2.0),
    ]
    task = DAGTask(
        task_id=0,
        vertices=vertices,
        dag=dag,
        period=30.0,
        deadline=30.0,
        resource_usages=usages,
        priority=1,
        name="tau_i",
    )
    behaviors = {
        0: VertexBehavior(0, [Segment(2.0)]),
        1: VertexBehavior(1, [Segment(3.0, RESOURCE_GLOBAL)]),
        2: VertexBehavior(2, [Segment(2.0, RESOURCE_LOCAL)]),
        3: VertexBehavior(3, [Segment(2.0, RESOURCE_LOCAL)]),
        4: VertexBehavior(4, [Segment(4.0)]),
        5: VertexBehavior(5, [Segment(2.0)]),
        6: VertexBehavior(6, [Segment(2.0)]),
        7: VertexBehavior(7, [Segment(2.0)]),
    }
    return task, behaviors


def build_task_j() -> Tuple[DAGTask, Dict[int, VertexBehavior]]:
    """Task τj of Fig. 1(a): 6 vertices, longest path of length 6."""
    wcets = [1.0, 3.0, 3.0, 4.0, 4.0, 1.0]
    edges = [
        (0, 1), (0, 2), (0, 3), (0, 4),
        (1, 5), (2, 5), (3, 5), (4, 5),
    ]
    dag = DAG(6, edges)
    vertices = [
        Vertex(0, wcets[0]),
        Vertex(1, wcets[1]),
        Vertex(2, wcets[2], requests={RESOURCE_GLOBAL: 1}),
        Vertex(3, wcets[3]),
        Vertex(4, wcets[4]),
        Vertex(5, wcets[5]),
    ]
    usages = [ResourceUsage(RESOURCE_GLOBAL, max_requests=1, cs_length=3.0)]
    task = DAGTask(
        task_id=1,
        vertices=vertices,
        dag=dag,
        period=25.0,
        deadline=25.0,
        resource_usages=usages,
        priority=2,
        name="tau_j",
    )
    behaviors = {
        0: VertexBehavior(0, [Segment(1.0)]),
        1: VertexBehavior(1, [Segment(3.0)]),
        2: VertexBehavior(2, [Segment(3.0, RESOURCE_GLOBAL)]),
        3: VertexBehavior(3, [Segment(4.0)]),
        4: VertexBehavior(4, [Segment(4.0)]),
        5: VertexBehavior(5, [Segment(1.0)]),
    }
    return task, behaviors


def build_figure1_system() -> Tuple[PartitionedSystem, Dict[int, Dict[int, VertexBehavior]]]:
    """The complete Fig. 1 system: task set, clusters, resource placement, behaviours.

    Task τj owns processors {0, 1}, task τi owns processors {2, 3}, and the
    global resource ℓ1 is assigned to processor 1 (℘2 in the paper's
    1-based numbering).
    """
    task_i, behaviors_i = build_task_i()
    task_j, behaviors_j = build_task_j()
    taskset = TaskSet(
        [task_i, task_j],
        resources=[Resource(RESOURCE_GLOBAL, "l1"), Resource(RESOURCE_LOCAL, "l2")],
    )
    platform = Platform(4)
    clusters = {
        task_j.task_id: Cluster(task_j.task_id, [0, 1]),
        task_i.task_id: Cluster(task_i.task_id, [2, 3]),
    }
    partition = PartitionedSystem(
        taskset, platform, clusters, {RESOURCE_GLOBAL: 1}
    )
    behaviors = {task_i.task_id: behaviors_i, task_j.task_id: behaviors_j}
    return partition, behaviors
