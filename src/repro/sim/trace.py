"""Schedule traces and invariant checks for the DPCP-p simulator.

The simulator records every execution interval (vertex or agent), every lock
grant/release, and every request's life cycle.  The checkers validate the
protocol properties the paper relies on:

* no two overlapping executions on one processor,
* mutual exclusion per resource,
* Lemma 1 — a pending global request is blocked by at most one
  lower-priority request, and
* deadline compliance (used when comparing against the analytical bounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_EPS = 1e-9


@dataclass(frozen=True)
class ExecutionInterval:
    """One contiguous execution of a vertex or agent on a processor."""

    processor: int
    start: float
    end: float
    task_id: int
    job_id: int
    vertex: int
    #: Resource id when the interval is a critical section (local or via an
    #: agent), ``None`` for non-critical execution.
    resource: Optional[int] = None
    #: ``True`` when the interval is executed by a resource agent on the
    #: resource's home processor (global resources only).
    is_agent: bool = False
    #: ``True`` when the interval is a busy-wait: the vertex occupied the
    #: processor while spinning for a lock (SPIN runtime only).  Spin
    #: intervals carry ``resource=None`` — the spinner does not hold the
    #: resource yet.
    is_spin: bool = False


@dataclass
class RequestRecord:
    """Life cycle of one global-resource request."""

    task_id: int
    job_id: int
    vertex: int
    resource: int
    priority: int
    issue_time: float
    grant_time: Optional[float] = None
    finish_time: Optional[float] = None


@dataclass
class JobRecord:
    """Release/finish record of one job."""

    task_id: int
    job_id: int
    release_time: float
    absolute_deadline: float
    finish_time: Optional[float] = None

    @property
    def response_time(self) -> Optional[float]:
        """Response time, or ``None`` if the job has not finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.release_time

    @property
    def deadline_met(self) -> Optional[bool]:
        """Whether the job met its deadline (``None`` if unfinished)."""
        if self.finish_time is None:
            return None
        return self.finish_time <= self.absolute_deadline + _EPS


@dataclass
class SimulationTrace:
    """Complete record of one simulation run."""

    intervals: List[ExecutionInterval] = field(default_factory=list)
    requests: List[RequestRecord] = field(default_factory=list)
    jobs: Dict[Tuple[int, int], JobRecord] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Recording helpers (used by the simulator)
    # ------------------------------------------------------------------ #
    def add_interval(self, interval: ExecutionInterval) -> None:
        """Record an execution interval (zero-length intervals are dropped)."""
        if interval.end - interval.start > _EPS:
            self.intervals.append(interval)

    def add_job(self, record: JobRecord) -> None:
        """Register a released job."""
        self.jobs[(record.task_id, record.job_id)] = record

    def job(self, task_id: int, job_id: int) -> JobRecord:
        """Look up a job record."""
        return self.jobs[(task_id, job_id)]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def response_times(self) -> Dict[int, List[float]]:
        """Observed response times per task (finished jobs only)."""
        result: Dict[int, List[float]] = {}
        for record in self.jobs.values():
            if record.response_time is not None:
                result.setdefault(record.task_id, []).append(record.response_time)
        return result

    def worst_response_time(self, task_id: int) -> Optional[float]:
        """Largest observed response time of a task."""
        times = self.response_times().get(task_id)
        return max(times) if times else None

    def deadline_misses(self) -> List[JobRecord]:
        """Finished jobs that missed their deadline."""
        return [r for r in self.jobs.values() if r.deadline_met is False]

    def intervals_on(self, processor: int) -> List[ExecutionInterval]:
        """Execution intervals on one processor, sorted by start time."""
        return sorted(
            (i for i in self.intervals if i.processor == processor),
            key=lambda i: i.start,
        )

    # ------------------------------------------------------------------ #
    # Invariant checks
    # ------------------------------------------------------------------ #
    def check_processor_exclusivity(self) -> List[str]:
        """No processor executes two intervals at the same time."""
        problems: List[str] = []
        processors = {i.processor for i in self.intervals}
        for processor in processors:
            ordered = self.intervals_on(processor)
            for first, second in zip(ordered, ordered[1:]):
                if second.start < first.end - _EPS:
                    problems.append(
                        f"processor {processor}: overlapping executions "
                        f"[{first.start}, {first.end}) and [{second.start}, {second.end})"
                    )
        return problems

    def check_mutual_exclusion(self) -> List[str]:
        """No two critical sections on the same resource overlap in time."""
        problems: List[str] = []
        by_resource: Dict[int, List[ExecutionInterval]] = {}
        for interval in self.intervals:
            if interval.resource is not None:
                by_resource.setdefault(interval.resource, []).append(interval)
        for resource, intervals in by_resource.items():
            ordered = sorted(intervals, key=lambda i: i.start)
            for first, second in zip(ordered, ordered[1:]):
                if second.start < first.end - _EPS:
                    problems.append(
                        f"resource {resource}: overlapping critical sections "
                        f"[{first.start}, {first.end}) and [{second.start}, {second.end})"
                    )
        return problems

    def check_lemma1(self) -> List[str]:
        """Lemma 1: each request is blocked by at most one lower-priority request.

        For every granted request we count the *distinct* lower-priority
        requests (to any resource) that were granted their lock within the
        request's pending window ``[issue, grant)``.
        """
        problems: List[str] = []
        for request in self.requests:
            if request.grant_time is None:
                continue
            blockers = 0
            for other in self.requests:
                if other is request or other.grant_time is None:
                    continue
                if other.priority >= request.priority:
                    continue
                # The lower-priority request blocks ours if it holds its lock
                # during our pending window.
                other_end = other.finish_time if other.finish_time is not None else float("inf")
                overlaps = (
                    other.grant_time < request.grant_time - _EPS
                    and other_end > request.issue_time + _EPS
                )
                if overlaps:
                    blockers += 1
            if blockers > 1:
                problems.append(
                    f"request of task {request.task_id} (vertex {request.vertex}, "
                    f"resource {request.resource}) blocked by {blockers} "
                    "lower-priority requests"
                )
        return problems

    def check_spin_exclusivity(self) -> List[str]:
        """A busy-waiting vertex occupies its processor exclusively.

        For every spin interval, no other execution interval may overlap it
        on the same processor: spinning is not suspension — the processor is
        consumed by the waiting vertex (the SPIN runtime invariant).
        """
        problems: List[str] = []
        processors = {i.processor for i in self.intervals if i.is_spin}
        for processor in processors:
            ordered = self.intervals_on(processor)
            for first, second in zip(ordered, ordered[1:]):
                if second.start < first.end - _EPS and (first.is_spin or second.is_spin):
                    problems.append(
                        f"processor {processor}: execution overlaps a busy-wait "
                        f"[{first.start}, {first.end}) and [{second.start}, {second.end})"
                    )
        return problems

    def check_all(self) -> List[str]:
        """Run every invariant check and return the concatenated problems."""
        return (
            self.check_processor_exclusivity()
            + self.check_mutual_exclusion()
            + self.check_lemma1()
            + self.check_spin_exclusivity()
        )

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def render_gantt(self, time_step: float = 1.0, width: int = 80) -> str:
        """Render a coarse textual Gantt chart of the schedule."""
        if not self.intervals:
            return "(empty trace)"
        horizon = max(i.end for i in self.intervals)
        steps = min(width, max(1, int(round(horizon / time_step))))
        step = horizon / steps
        processors = sorted({i.processor for i in self.intervals})
        lines = [f"time 0 .. {horizon:.1f} ({step:.2f} per column)"]
        for processor in processors:
            cells = []
            for column in range(steps):
                t = (column + 0.5) * step
                label = "."
                for interval in self.intervals_on(processor):
                    if interval.start - _EPS <= t < interval.end + _EPS:
                        if interval.is_agent:
                            label = "A"
                        elif interval.resource is not None:
                            label = "C"
                        else:
                            label = str(interval.task_id % 10)
                        break
                cells.append(label)
            lines.append(f"P{processor:<3d}|" + "".join(cells))
        lines.append("legend: digit = task's non-critical work, C = local CS, A = agent CS, . = idle")
        return "\n".join(lines)
