"""Discrete-event simulation of the DPCP-p runtime protocol."""

from .behaviors import (
    BehaviorError,
    Segment,
    VertexBehavior,
    behaviors_from_task,
    validate_behaviors,
)
from .paper_example import build_figure1_system, build_task_i, build_task_j
from .simulator import (
    DpcpPSimulator,
    SimulationError,
    SimulationTruncated,
    simulate_periodic,
)
from .trace import ExecutionInterval, JobRecord, RequestRecord, SimulationTrace
from .validation import (
    InvariantMonitor,
    SimulationConfig,
    ValidationOutcome,
    capped_hyperperiod,
    validate_partition,
    validation_horizon,
)

__all__ = [
    "BehaviorError",
    "Segment",
    "VertexBehavior",
    "behaviors_from_task",
    "validate_behaviors",
    "build_figure1_system",
    "build_task_i",
    "build_task_j",
    "DpcpPSimulator",
    "SimulationError",
    "SimulationTruncated",
    "simulate_periodic",
    "ExecutionInterval",
    "JobRecord",
    "RequestRecord",
    "SimulationTrace",
    "InvariantMonitor",
    "SimulationConfig",
    "ValidationOutcome",
    "capped_hyperperiod",
    "validate_partition",
    "validation_horizon",
]
