"""Discrete-event simulation of the locking-protocol runtimes (DPCP-p, SPIN, LPP)."""

from .behaviors import (
    BehaviorError,
    Segment,
    VertexBehavior,
    behaviors_from_task,
    validate_behaviors,
)
from .paper_example import build_figure1_system, build_task_i, build_task_j
from .protocols import (
    RUNTIME_BEHAVIORS,
    DpcpPBehavior,
    LppBehavior,
    ProtocolBehavior,
    SpinBehavior,
    behavior_for,
)
from .simulator import (
    DpcpPSimulator,
    RuntimeSimulator,
    SimulationError,
    SimulationTruncated,
    simulate_periodic,
)
from .trace import ExecutionInterval, JobRecord, RequestRecord, SimulationTrace
from .validation import (
    InvariantMonitor,
    SimulationConfig,
    ValidationOutcome,
    capped_hyperperiod,
    validate_partition,
    validation_horizon,
)

__all__ = [
    "BehaviorError",
    "Segment",
    "VertexBehavior",
    "behaviors_from_task",
    "validate_behaviors",
    "build_figure1_system",
    "build_task_i",
    "build_task_j",
    "ProtocolBehavior",
    "DpcpPBehavior",
    "SpinBehavior",
    "LppBehavior",
    "RUNTIME_BEHAVIORS",
    "behavior_for",
    "DpcpPSimulator",
    "RuntimeSimulator",
    "SimulationError",
    "SimulationTruncated",
    "simulate_periodic",
    "ExecutionInterval",
    "JobRecord",
    "RequestRecord",
    "SimulationTrace",
    "InvariantMonitor",
    "SimulationConfig",
    "ValidationOutcome",
    "capped_hyperperiod",
    "validate_partition",
    "validation_horizon",
]
