"""Multiprocessor platform, federated clusters, and resource placement.

Under federated scheduling every heavy task owns a *cluster* of processors.
Under DPCP-p every global resource is additionally *assigned to a processor*,
and all requests to that resource execute there.  :class:`PartitionedSystem`
captures a concrete outcome of the partitioning stage (Sec. V): which
processors belong to which task and which processor hosts which global
resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .task import DAGTask, TaskSet, TaskError


class PlatformError(ValueError):
    """Raised for invalid platform or partition descriptions."""


@dataclass(frozen=True)
class Platform:
    """An identical multiprocessor platform with ``num_processors`` cores."""

    num_processors: int

    def __post_init__(self) -> None:
        if self.num_processors < 2:
            raise PlatformError("the paper assumes m >= 2 processors")

    @property
    def processors(self) -> Tuple[int, ...]:
        """Processor ids ``0 .. m - 1``."""
        return tuple(range(self.num_processors))


@dataclass
class Cluster:
    """The set of processors dedicated to one (heavy) task.

    Attributes
    ----------
    task_id:
        Owner task.
    processors:
        Processor ids exclusively assigned to the task.
    """

    task_id: int
    processors: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of processors in the cluster (:math:`m_i`)."""
        return len(self.processors)

    def __contains__(self, processor: int) -> bool:
        return processor in self.processors


class PartitionedSystem:
    """A concrete task/resource partition over a platform.

    Parameters
    ----------
    taskset:
        The task set being scheduled.
    platform:
        The multiprocessor platform.
    clusters:
        ``task id -> Cluster``; clusters must be disjoint.
    resource_assignment:
        ``global resource id -> processor id``; the processor hosting the
        resource's agent.  Local resources are never assigned.
    """

    def __init__(
        self,
        taskset: TaskSet,
        platform: Platform,
        clusters: Mapping[int, Cluster],
        resource_assignment: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.taskset = taskset
        self.platform = platform
        self.clusters: Dict[int, Cluster] = {tid: c for tid, c in clusters.items()}
        self.resource_assignment: Dict[int, int] = dict(resource_assignment or {})
        self._validate()

    def _validate(self) -> None:
        seen: Dict[int, int] = {}
        for tid, cluster in self.clusters.items():
            if cluster.task_id != tid:
                raise PlatformError(
                    f"cluster keyed by task {tid} claims owner {cluster.task_id}"
                )
            self.taskset.task(tid)
            for proc in cluster.processors:
                if not (0 <= proc < self.platform.num_processors):
                    raise PlatformError(f"unknown processor {proc} in cluster of {tid}")
                if proc in seen:
                    raise PlatformError(
                        f"processor {proc} assigned to both task {seen[proc]} and {tid}"
                    )
                seen[proc] = tid
        for rid, proc in self.resource_assignment.items():
            if not self.taskset.is_global(rid):
                raise PlatformError(
                    f"resource {rid} is local and must not be assigned to a processor"
                )
            if not (0 <= proc < self.platform.num_processors):
                raise PlatformError(f"resource {rid} assigned to unknown processor {proc}")

    # ------------------------------------------------------------------ #
    # Cluster queries
    # ------------------------------------------------------------------ #
    def cluster_of(self, task_id: int) -> Cluster:
        """Cluster (processor set) owned by ``task_id``."""
        try:
            return self.clusters[task_id]
        except KeyError:
            raise PlatformError(f"task {task_id} has no cluster") from None

    def processors_of(self, task_id: int) -> List[int]:
        """:math:`\\wp(\\tau_i)` — processors assigned to ``task_id``."""
        return list(self.cluster_of(task_id).processors)

    def num_processors_of(self, task_id: int) -> int:
        """:math:`m_i` — size of the task's cluster."""
        return self.cluster_of(task_id).size

    def owner_of_processor(self, processor: int) -> Optional[int]:
        """Task owning ``processor`` (None if the processor is unassigned)."""
        for tid, cluster in self.clusters.items():
            if processor in cluster:
                return tid
        return None

    def assigned_processors(self) -> List[int]:
        """All processors currently owned by some cluster."""
        return sorted(p for c in self.clusters.values() for p in c.processors)

    def unassigned_processors(self) -> List[int]:
        """Processors not owned by any cluster."""
        used = set(self.assigned_processors())
        return [p for p in self.platform.processors if p not in used]

    # ------------------------------------------------------------------ #
    # Resource placement queries
    # ------------------------------------------------------------------ #
    def processor_of_resource(self, resource_id: int) -> int:
        """Home processor of a global resource."""
        try:
            return self.resource_assignment[resource_id]
        except KeyError:
            raise PlatformError(
                f"global resource {resource_id} has not been assigned to a processor"
            ) from None

    def resources_on_processor(self, processor: int) -> List[int]:
        """:math:`\\Phi(\\wp_k)` — global resources hosted on ``processor``."""
        return sorted(
            rid for rid, proc in self.resource_assignment.items() if proc == processor
        )

    def co_located_resources(self, resource_id: int) -> List[int]:
        """:math:`\\Phi^\\wp(\\ell_q)` — global resources sharing ℓq's processor."""
        return self.resources_on_processor(self.processor_of_resource(resource_id))

    def resources_on_cluster(self, task_id: int) -> List[int]:
        """:math:`\\Phi^\\wp(\\tau_i)` — global resources hosted on the task's cluster."""
        procs = set(self.processors_of(task_id))
        return sorted(
            rid for rid, proc in self.resource_assignment.items() if proc in procs
        )

    def processor_resource_utilization(self, processor: int) -> float:
        """:math:`u^\\wp_k` — total utilization of global resources on a processor."""
        return sum(
            self.taskset.resource_utilization(rid)
            for rid in self.resources_on_processor(processor)
        )

    def cluster_utilization(self, task_id: int) -> float:
        """Utilization of a cluster: owner task + hosted global resources."""
        task = self.taskset.task(task_id)
        hosted = sum(
            self.taskset.resource_utilization(rid)
            for rid in self.resources_on_cluster(task_id)
        )
        return task.utilization + hosted

    def cluster_capacity(self, task_id: int) -> float:
        """Capacity of a cluster (its number of processors)."""
        return float(self.num_processors_of(task_id))

    def cluster_slack(self, task_id: int) -> float:
        """Utilization slack of a cluster (capacity minus utilization)."""
        return self.cluster_capacity(task_id) - self.cluster_utilization(task_id)

    def copy(self) -> "PartitionedSystem":
        """Deep-ish copy (clusters and the resource assignment are copied)."""
        clusters = {
            tid: Cluster(task_id=tid, processors=list(c.processors))
            for tid, c in self.clusters.items()
        }
        return PartitionedSystem(
            self.taskset, self.platform, clusters, dict(self.resource_assignment)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionedSystem(m={self.platform.num_processors}, "
            f"clusters={{{', '.join(f'{t}:{c.size}' for t, c in self.clusters.items())}}}, "
            f"resources={self.resource_assignment})"
        )


def minimal_federated_clusters(
    taskset: TaskSet, platform: Platform
) -> Optional[Dict[int, Cluster]]:
    """Assign each heavy task its minimal federated cluster (Alg. 1, lines 1-5).

    Processors are handed out in priority order (highest-priority task first).
    Returns ``None`` when the platform does not have enough processors, which
    the partitioning algorithm reports as "unschedulable".
    """
    next_proc = 0
    clusters: Dict[int, Cluster] = {}
    for task in taskset.by_priority(descending=True):
        try:
            need = task.minimum_processors()
        except TaskError:
            return None
        if next_proc + need > platform.num_processors:
            return None
        clusters[task.task_id] = Cluster(
            task_id=task.task_id,
            processors=list(range(next_proc, next_proc + need)),
        )
        next_proc += need
    return clusters
