"""Task, resource, and platform models for the DPCP-p reproduction."""

from .dag import DAG, DAGError, Edge, PathProfile
from .platform import (
    Cluster,
    PartitionedSystem,
    Platform,
    PlatformError,
    minimal_federated_clusters,
)
from .priorities import (
    assign_deadline_monotonic,
    assign_rate_monotonic,
    deadline_monotonic,
    rate_monotonic,
)
from .resources import Resource, ResourceError, ResourceUsage, classify_resources
from .task import DAGTask, TaskError, TaskSet, Vertex, validate_taskset

__all__ = [
    "DAG",
    "DAGError",
    "Edge",
    "PathProfile",
    "Cluster",
    "PartitionedSystem",
    "Platform",
    "PlatformError",
    "minimal_federated_clusters",
    "assign_deadline_monotonic",
    "assign_rate_monotonic",
    "deadline_monotonic",
    "rate_monotonic",
    "Resource",
    "ResourceError",
    "ResourceUsage",
    "classify_resources",
    "DAGTask",
    "TaskError",
    "TaskSet",
    "Vertex",
    "validate_taskset",
]
