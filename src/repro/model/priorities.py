"""Base-priority assignment policies.

The paper assigns base priorities with the Rate Monotonic (RM) heuristic
(Sec. VII-A).  We use the convention that *larger numbers mean higher
priority*, i.e. ``pi_i < pi_h`` means :math:`\\tau_i` has lower priority than
:math:`\\tau_h`, matching the paper's notation.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from .task import DAGTask


def _assign(tasks: Sequence[DAGTask], key: Callable[[DAGTask], float]) -> Dict[int, int]:
    """Assign distinct priorities ``1..n`` (n = highest) by ascending ``key``.

    Ties are broken by task id so that the assignment is deterministic.
    """
    ordered = sorted(tasks, key=lambda t: (key(t), t.task_id))
    priorities: Dict[int, int] = {}
    for rank, task in enumerate(ordered):
        priorities[task.task_id] = len(ordered) - rank
    return priorities


def rate_monotonic(tasks: Sequence[DAGTask]) -> Dict[int, int]:
    """Rate Monotonic: shorter period → higher priority."""
    return _assign(tasks, key=lambda t: t.period)


def deadline_monotonic(tasks: Sequence[DAGTask]) -> Dict[int, int]:
    """Deadline Monotonic: shorter relative deadline → higher priority."""
    return _assign(tasks, key=lambda t: t.deadline)


def apply_priorities(tasks: Sequence[DAGTask], priorities: Dict[int, int]) -> None:
    """Write a priority mapping back onto the task objects (in place)."""
    for task in tasks:
        if task.task_id not in priorities:
            raise KeyError(f"no priority assigned for task {task.task_id}")
        task.priority = priorities[task.task_id]


def assign_rate_monotonic(tasks: Sequence[DAGTask]) -> None:
    """Convenience: compute and apply Rate Monotonic priorities in place."""
    apply_priorities(tasks, rate_monotonic(tasks))


def assign_deadline_monotonic(tasks: Sequence[DAGTask]) -> None:
    """Convenience: compute and apply Deadline Monotonic priorities in place."""
    apply_priorities(tasks, deadline_monotonic(tasks))
