"""Shared-resource model.

Every shared resource :math:`\\ell_q` is protected by a binary semaphore.  A
vertex :math:`v_{i,x}` issues at most :math:`N_{i,x,q}` requests to
:math:`\\ell_q`, each of length at most :math:`L_{i,q}` (the per-task maximum
critical-section length).  Resources shared by a single task are *local*;
resources shared by two or more tasks are *global* and, under DPCP-p, are
assigned to a designated processor on which all their requests execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping


class ResourceError(ValueError):
    """Raised for invalid resource declarations or usage descriptions."""


@dataclass(frozen=True)
class Resource:
    """A shared resource :math:`\\ell_q` identified by a non-negative id."""

    resource_id: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.resource_id < 0:
            raise ResourceError("resource_id must be non-negative")
        if not self.name:
            object.__setattr__(self, "name", f"l{self.resource_id}")


@dataclass
class ResourceUsage:
    """How one task uses one resource.

    Attributes
    ----------
    resource_id:
        The resource :math:`\\ell_q`.
    max_requests:
        :math:`N_{i,q}` — maximum number of requests issued by one job.
    cs_length:
        :math:`L_{i,q}` — maximum length of a single critical section (µs).
    per_vertex_requests:
        ``vertex index -> N_{i,x,q}``; must sum to ``max_requests``.
    """

    resource_id: int
    max_requests: int
    cs_length: float
    per_vertex_requests: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_requests < 0:
            raise ResourceError("max_requests must be non-negative")
        if self.cs_length < 0:
            raise ResourceError("cs_length must be non-negative")
        if self.per_vertex_requests:
            total = sum(self.per_vertex_requests.values())
            if total != self.max_requests:
                raise ResourceError(
                    "per-vertex request counts must sum to max_requests "
                    f"({total} != {self.max_requests})"
                )
            if any(n < 0 for n in self.per_vertex_requests.values()):
                raise ResourceError("per-vertex request counts must be >= 0")

    @property
    def total_cs_time(self) -> float:
        """Maximum cumulative critical-section time, :math:`N_{i,q} L_{i,q}`."""
        return self.max_requests * self.cs_length

    def requests_of_vertex(self, vertex: int) -> int:
        """Requests issued by ``vertex`` (0 if the vertex does not use it)."""
        return self.per_vertex_requests.get(vertex, 0)


def classify_resources(
    usages_by_task: Mapping[int, Iterable[ResourceUsage]],
) -> Dict[int, bool]:
    """Classify each resource as global (True) or local (False).

    Parameters
    ----------
    usages_by_task:
        ``task id -> iterable of ResourceUsage``.  A resource is *global* when
        it is used (with at least one request) by two or more distinct tasks.

    Returns
    -------
    dict
        ``resource id -> is_global``.
    """
    users: Dict[int, set] = {}
    for task_id, usages in usages_by_task.items():
        for usage in usages:
            if usage.max_requests <= 0:
                continue
            users.setdefault(usage.resource_id, set()).add(task_id)
    return {rid: len(tasks) > 1 for rid, tasks in users.items()}
