"""Sporadic parallel (DAG) task model.

A task :math:`\\tau_i` is characterised by a DAG of vertices with WCETs, a
minimum inter-arrival time :math:`T_i`, a constrained relative deadline
:math:`D_i \\le T_i`, a base priority :math:`\\pi_i`, and a description of how
its vertices use shared resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .dag import DAG, DAGError, PathProfile
from .resources import Resource, ResourceError, ResourceUsage, classify_resources


class TaskError(ValueError):
    """Raised for structurally invalid tasks or task sets."""


@dataclass
class Vertex:
    """A vertex (sub-job) :math:`v_{i,x}` of a parallel task.

    Attributes
    ----------
    index:
        Position of the vertex within its task (``0 .. |V_i| - 1``).
    wcet:
        :math:`C_{i,x}` — worst-case execution time, *including* the critical
        sections executed by this vertex.
    requests:
        ``resource id -> N_{i,x,q}`` — number of requests this vertex issues.
    """

    index: int
    wcet: float
    requests: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.wcet < 0:
            raise TaskError(f"vertex {self.index}: WCET must be non-negative")
        for rid, count in self.requests.items():
            if count < 0:
                raise TaskError(
                    f"vertex {self.index}: negative request count for resource {rid}"
                )

    def total_requests(self) -> int:
        """Total number of resource requests issued by this vertex."""
        return sum(self.requests.values())


class DAGTask:
    """A sporadic parallel task with shared-resource usage.

    Parameters
    ----------
    task_id:
        Unique non-negative identifier.
    vertices:
        The vertices of the task, indexed ``0 .. len(vertices) - 1``.
    dag:
        Precedence structure over the vertices.
    period:
        Minimum inter-arrival time :math:`T_i` (µs).
    deadline:
        Relative deadline :math:`D_i` (µs); defaults to the period
        (implicit deadline).  Must satisfy :math:`D_i \\le T_i`.
    resource_usages:
        Per-resource usage descriptions (:math:`N_{i,q}` and :math:`L_{i,q}`).
        Per-vertex counts, if omitted, are reconstructed from the vertices.
    priority:
        Base priority :math:`\\pi_i`.  Larger numbers mean *higher* priority.
    name:
        Optional human-readable name.
    """

    def __init__(
        self,
        task_id: int,
        vertices: Sequence[Vertex],
        dag: DAG,
        period: float,
        deadline: Optional[float] = None,
        resource_usages: Iterable[ResourceUsage] = (),
        priority: int = 0,
        name: str = "",
    ) -> None:
        if task_id < 0:
            raise TaskError("task_id must be non-negative")
        if not vertices:
            raise TaskError("a task needs at least one vertex")
        if dag.num_vertices != len(vertices):
            raise TaskError(
                f"DAG has {dag.num_vertices} vertices, task has {len(vertices)}"
            )
        for pos, vertex in enumerate(vertices):
            if vertex.index != pos:
                raise TaskError(
                    f"vertex at position {pos} has index {vertex.index}; "
                    "vertices must be listed in index order"
                )
        if period <= 0:
            raise TaskError("period must be positive")
        deadline = period if deadline is None else deadline
        if deadline <= 0 or deadline > period:
            raise TaskError("deadline must satisfy 0 < D_i <= T_i")

        self.task_id = int(task_id)
        self.name = name or f"tau{task_id}"
        self.vertices: Tuple[Vertex, ...] = tuple(vertices)
        self.dag = dag
        self.period = float(period)
        self.deadline = float(deadline)
        self.priority = int(priority)
        self._usages: Dict[int, ResourceUsage] = {}
        for usage in resource_usages:
            if usage.resource_id in self._usages:
                raise TaskError(
                    f"duplicate resource usage for resource {usage.resource_id}"
                )
            self._usages[usage.resource_id] = usage
        self._reconcile_usages()
        self._validate_wcets()
        self._critical_path_cache: Optional[Tuple[int, float]] = None
        self._wcet_cache: Optional[float] = None
        self._min_processors_cache: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _reconcile_usages(self) -> None:
        """Cross-check vertex-level request counts against task-level usages."""
        per_resource: Dict[int, Dict[int, int]] = {}
        for vertex in self.vertices:
            for rid, count in vertex.requests.items():
                if count <= 0:
                    continue
                per_resource.setdefault(rid, {})[vertex.index] = count
        for rid, per_vertex in per_resource.items():
            total = sum(per_vertex.values())
            usage = self._usages.get(rid)
            if usage is None:
                raise TaskError(
                    f"vertices of task {self.task_id} request resource {rid} "
                    "but no ResourceUsage (critical-section length) was given"
                )
            if usage.max_requests != total:
                raise TaskError(
                    f"task {self.task_id}, resource {rid}: usage declares "
                    f"{usage.max_requests} requests but vertices issue {total}"
                )
            if not usage.per_vertex_requests:
                usage.per_vertex_requests = dict(per_vertex)
        for rid, usage in self._usages.items():
            if usage.max_requests > 0 and rid not in per_resource:
                # Usage declared at task level only; spread over vertex 0 so
                # that per-vertex accounting is always available.
                usage.per_vertex_requests = {0: usage.max_requests}
                self.vertices[0].requests[rid] = usage.max_requests

    def _validate_wcets(self) -> None:
        for vertex in self.vertices:
            cs_time = sum(
                count * self._usages[rid].cs_length
                for rid, count in vertex.requests.items()
                if count > 0
            )
            if cs_time > vertex.wcet + 1e-9:
                raise TaskError(
                    f"task {self.task_id}, vertex {vertex.index}: critical "
                    f"sections ({cs_time}) exceed the vertex WCET ({vertex.wcet})"
                )

    # ------------------------------------------------------------------ #
    # Aggregate parameters
    # ------------------------------------------------------------------ #
    @property
    def wcet(self) -> float:
        """:math:`C_i` — total WCET over all vertices.

        Cached: the vertex tuple is fixed at construction and the analyses
        read this in every federated sizing pass (same policy as
        :attr:`critical_path_length`).
        """
        if self._wcet_cache is None:
            self._wcet_cache = sum(v.wcet for v in self.vertices)
        return self._wcet_cache

    @property
    def utilization(self) -> float:
        """:math:`U_i = C_i / T_i`."""
        return self.wcet / self.period

    @property
    def density(self) -> float:
        """:math:`C_i / D_i` (used to classify heavy vs. light tasks)."""
        return self.wcet / self.deadline

    @property
    def is_heavy(self) -> bool:
        """Heavy tasks have :math:`C_i / D_i > 1` under federated scheduling."""
        return self.density > 1.0

    @property
    def critical_path_length(self) -> float:
        """:math:`L^*_i` — length of the longest path of the DAG.

        Cached per edge count: the analyses query this repeatedly, and the
        only supported DAG mutation (``add_edge``) changes the edge count.
        """
        cached = self._critical_path_cache
        if cached is not None and cached[0] == self.dag.num_edges:
            return cached[1]
        value = self.dag.longest_path_length([v.wcet for v in self.vertices])
        self._critical_path_cache = (self.dag.num_edges, value)
        return value

    @property
    def non_critical_wcet(self) -> float:
        """:math:`C'_i = C_i - \\sum_q N_{i,q} L_{i,q}`."""
        return self.wcet - sum(u.total_cs_time for u in self._usages.values())

    def minimum_processors(self) -> int:
        """Initial federated assignment :math:`\\lceil (C_i-L^*_i)/(D_i-L^*_i) \\rceil`.

        Cached per edge count (every schedulability test starts its sizing
        pass here; the only supported DAG mutation, ``add_edge``, changes
        the edge count and thereby :math:`L^*_i`).
        """
        cached = self._min_processors_cache
        if cached is not None and cached[0] == self.dag.num_edges:
            return cached[1]
        lstar = self.critical_path_length
        if lstar >= self.deadline:
            raise TaskError(
                f"task {self.task_id} is infeasible: L*={lstar} >= D={self.deadline}"
            )
        import math

        value = max(1, math.ceil((self.wcet - lstar) / (self.deadline - lstar)))
        self._min_processors_cache = (self.dag.num_edges, value)
        return value

    # ------------------------------------------------------------------ #
    # Resource queries
    # ------------------------------------------------------------------ #
    @property
    def resource_usages(self) -> Dict[int, ResourceUsage]:
        """Mapping ``resource id -> ResourceUsage`` for resources this task uses."""
        return dict(self._usages)

    def uses_resource(self, resource_id: int) -> bool:
        """Whether the task issues at least one request to ``resource_id``."""
        usage = self._usages.get(resource_id)
        return usage is not None and usage.max_requests > 0

    def used_resources(self) -> List[int]:
        """Ids of resources used (with at least one request) by this task."""
        return sorted(
            rid for rid, usage in self._usages.items() if usage.max_requests > 0
        )

    def request_count(self, resource_id: int) -> int:
        """:math:`N_{i,q}` — per-job request bound for ``resource_id``."""
        usage = self._usages.get(resource_id)
        return usage.max_requests if usage else 0

    def cs_length(self, resource_id: int) -> float:
        """:math:`L_{i,q}` — maximum critical-section length for ``resource_id``."""
        usage = self._usages.get(resource_id)
        return usage.cs_length if usage else 0.0

    def vertex_requests(self, vertex: int, resource_id: int) -> int:
        """:math:`N_{i,x,q}` — requests issued by one vertex to one resource."""
        return self.vertices[vertex].requests.get(resource_id, 0)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def path_profile(self, vertices: Sequence[int]) -> PathProfile:
        """Build the :class:`PathProfile` of a path given as vertex indices."""
        length = sum(self.vertices[v].wcet for v in vertices)
        requests: Dict[int, int] = {}
        for v in vertices:
            for rid, count in self.vertices[v].requests.items():
                if count > 0:
                    requests[rid] = requests.get(rid, 0) + count
        return PathProfile(vertices=tuple(vertices), length=length, requests=requests)

    def critical_path_profile(self) -> PathProfile:
        """Profile of one longest path of the task."""
        path = self.dag.longest_path([v.wcet for v in self.vertices])
        return self.path_profile(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DAGTask(id={self.task_id}, |V|={len(self.vertices)}, "
            f"C={self.wcet:.1f}, T={self.period:.1f}, D={self.deadline:.1f}, "
            f"U={self.utilization:.3f})"
        )


class TaskSet:
    """A set of parallel tasks sharing a set of resources.

    The task set owns the *global vs. local* classification of resources: a
    resource is global when used by two or more tasks (Sec. III-A).
    """

    def __init__(self, tasks: Sequence[DAGTask], resources: Iterable[Resource] = ()) -> None:
        if not tasks:
            raise TaskError("a task set needs at least one task")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise TaskError("task ids must be unique")
        self.tasks: Tuple[DAGTask, ...] = tuple(tasks)
        self._by_id: Dict[int, DAGTask] = {t.task_id: t for t in tasks}

        declared = {r.resource_id: r for r in resources}
        used_ids = sorted({rid for t in tasks for rid in t.used_resources()})
        for rid in used_ids:
            declared.setdefault(rid, Resource(rid))
        self.resources: Dict[int, Resource] = declared

        usage_map = {t.task_id: t.resource_usages.values() for t in tasks}
        self._is_global = classify_resources(usage_map)

    # ------------------------------------------------------------------ #
    # Task queries
    # ------------------------------------------------------------------ #
    def __iter__(self):
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def task(self, task_id: int) -> DAGTask:
        """Return the task with the given id."""
        try:
            return self._by_id[task_id]
        except KeyError:
            raise TaskError(f"unknown task id {task_id}") from None

    @property
    def total_utilization(self) -> float:
        """Sum of task utilizations."""
        return sum(t.utilization for t in self.tasks)

    def higher_priority_tasks(self, task: DAGTask) -> List[DAGTask]:
        """Tasks with strictly higher base priority than ``task``."""
        return [t for t in self.tasks if t.priority > task.priority]

    def lower_priority_tasks(self, task: DAGTask) -> List[DAGTask]:
        """Tasks with strictly lower base priority than ``task``."""
        return [t for t in self.tasks if t.priority < task.priority]

    def by_priority(self, descending: bool = True) -> List[DAGTask]:
        """Tasks sorted by base priority (highest first by default)."""
        return sorted(self.tasks, key=lambda t: t.priority, reverse=descending)

    # ------------------------------------------------------------------ #
    # Resource queries
    # ------------------------------------------------------------------ #
    def resource_ids(self) -> List[int]:
        """All resource ids used by at least one task."""
        return sorted(self._is_global)

    def is_global(self, resource_id: int) -> bool:
        """Whether ``resource_id`` is a global resource (used by >= 2 tasks)."""
        return self._is_global.get(resource_id, False)

    def global_resources(self) -> List[int]:
        """Ids of global resources (:math:`\\Phi^G`)."""
        return sorted(rid for rid, g in self._is_global.items() if g)

    def local_resources(self) -> List[int]:
        """Ids of local resources (:math:`\\Phi^L`)."""
        return sorted(rid for rid, g in self._is_global.items() if not g)

    def tasks_using(self, resource_id: int) -> List[DAGTask]:
        """:math:`\\tau(\\ell_q)` — tasks issuing requests to ``resource_id``."""
        return [t for t in self.tasks if t.uses_resource(resource_id)]

    def resource_utilization(self, resource_id: int) -> float:
        """:math:`u^\\Phi_q = \\sum_j N_{j,q} L_{j,q} / T_j`."""
        return sum(
            t.request_count(resource_id) * t.cs_length(resource_id) / t.period
            for t in self.tasks
        )

    def resource_ceiling(self, resource_id: int) -> int:
        """Priority ceiling of a resource: the highest base priority among users.

        The paper defines :math:`\\Pi_q = \\pi^H + \\max_{\\tau_j \\in \\tau(\\ell_q)} \\pi_j`;
        since :math:`\\pi^H` is a constant offset we return the max base
        priority and let callers add the boost where needed.
        """
        users = self.tasks_using(resource_id)
        if not users:
            raise ResourceError(f"resource {resource_id} is not used by any task")
        return max(t.priority for t in users)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskSet(n={len(self.tasks)}, U={self.total_utilization:.2f}, "
            f"resources={len(self._is_global)})"
        )


def validate_taskset(taskset: TaskSet) -> List[str]:
    """Return a list of human-readable warnings about a task set.

    This performs the plausibility checks used by the generator
    (Sec. VII-A): constrained deadlines, :math:`L^*_i < D_i`, vertex WCETs
    covering their critical sections, and per-vertex request counts summing
    to the task-level bounds.  An empty list means the task set is clean.
    """
    warnings: List[str] = []
    for task in taskset:
        if task.deadline > task.period:
            warnings.append(f"{task.name}: deadline exceeds period")
        if task.critical_path_length >= task.deadline:
            warnings.append(f"{task.name}: critical path >= deadline (infeasible)")
        for rid, usage in task.resource_usages.items():
            per_vertex_total = sum(usage.per_vertex_requests.values())
            if usage.max_requests and per_vertex_total != usage.max_requests:
                warnings.append(
                    f"{task.name}: per-vertex requests for resource {rid} do not "
                    "sum to the task-level bound"
                )
    return warnings
