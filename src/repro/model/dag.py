"""Directed acyclic graph structure for parallel (DAG) tasks.

The paper models each parallel task :math:`\\tau_i` as a DAG
:math:`G_i = (V_i, E_i)` whose vertices carry worst-case execution times and
whose edges encode precedence constraints.  This module provides the plain
graph structure together with the graph-level operations the analysis needs:

* validation (acyclicity, dangling edges),
* topological ordering,
* longest-path computation (:math:`L^*_i`),
* complete-path enumeration (every head-to-tail path), and
* per-path aggregation helpers used by the response-time analysis.

The DAG is intentionally decoupled from the task parameters (period, deadline,
resource usage); those live in :mod:`repro.model.task`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple


class DAGError(ValueError):
    """Raised when a DAG is structurally invalid (cycle, bad edge, ...)."""


@dataclass(frozen=True)
class Edge:
    """A precedence edge ``src -> dst`` between two vertex indices."""

    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise DAGError(f"self-loop on vertex {self.src} is not allowed")


class DAG:
    """A directed acyclic graph over vertices ``0 .. num_vertices - 1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  Vertices are identified by their integer index.
    edges:
        Iterable of ``(src, dst)`` pairs or :class:`Edge` instances.

    Raises
    ------
    DAGError
        If an edge references a vertex outside ``[0, num_vertices)`` or if the
        resulting graph contains a cycle.
    """

    def __init__(self, num_vertices: int, edges: Iterable = ()) -> None:
        if num_vertices <= 0:
            raise DAGError("a DAG needs at least one vertex")
        self._n = int(num_vertices)
        self._succ: List[List[int]] = [[] for _ in range(self._n)]
        self._pred: List[List[int]] = [[] for _ in range(self._n)]
        self._edges: Set[Tuple[int, int]] = set()
        for edge in edges:
            if isinstance(edge, Edge):
                src, dst = edge.src, edge.dst
            else:
                src, dst = edge
            self.add_edge(src, dst)
        self._topo_cache: Tuple[int, ...] = ()
        self._validate()

    # ------------------------------------------------------------------ #
    # Construction / mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, src: int, dst: int) -> None:
        """Add the precedence edge ``src -> dst`` (idempotent)."""
        if not (0 <= src < self._n and 0 <= dst < self._n):
            raise DAGError(f"edge ({src}, {dst}) references unknown vertices")
        if src == dst:
            raise DAGError(f"self-loop on vertex {src} is not allowed")
        if (src, dst) in self._edges:
            return
        self._edges.add((src, dst))
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        self._topo_cache = ()

    def _validate(self) -> None:
        # A topological sort succeeds iff the graph is acyclic.
        self.topological_order()

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of precedence edges in the graph."""
        return len(self._edges)

    @property
    def edges(self) -> Set[Tuple[int, int]]:
        """The set of ``(src, dst)`` edges."""
        return set(self._edges)

    def successors(self, v: int) -> List[int]:
        """Direct successors of vertex ``v``."""
        return list(self._succ[v])

    def predecessors(self, v: int) -> List[int]:
        """Direct predecessors of vertex ``v``."""
        return list(self._pred[v])

    def successor_lists(self) -> List[List[int]]:
        """The internal successor adjacency (one list per vertex).

        Returned without copying for traversal-heavy callers; treat as
        read-only.
        """
        return self._succ

    def predecessor_lists(self) -> List[List[int]]:
        """The internal predecessor adjacency (one list per vertex).

        Returned without copying for traversal-heavy callers; treat as
        read-only.
        """
        return self._pred

    def has_edge(self, src: int, dst: int) -> bool:
        """Whether the edge ``src -> dst`` exists."""
        return (src, dst) in self._edges

    def sources(self) -> List[int]:
        """Head vertices: vertices without predecessors."""
        return [v for v in range(self._n) if not self._pred[v]]

    def sinks(self) -> List[int]:
        """Tail vertices: vertices without successors."""
        return [v for v in range(self._n) if not self._succ[v]]

    # ------------------------------------------------------------------ #
    # Orderings and paths
    # ------------------------------------------------------------------ #
    def topological_order(self) -> Tuple[int, ...]:
        """Return a topological ordering of the vertices.

        Raises :class:`DAGError` if the graph contains a cycle.
        """
        if self._topo_cache:
            return self._topo_cache
        indegree = [len(self._pred[v]) for v in range(self._n)]
        ready = [v for v in range(self._n) if indegree[v] == 0]
        order: List[int] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for w in self._succ[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    ready.append(w)
        if len(order) != self._n:
            raise DAGError("graph contains a cycle")
        self._topo_cache = tuple(order)
        return self._topo_cache

    def longest_path_length(self, weights: Sequence[float]) -> float:
        """Length of the longest (critical) path under vertex ``weights``.

        The length of a path is the sum of the weights of the vertices on it
        (edges carry no weight), matching the paper's definition of
        :math:`L(\\lambda_i)`.
        """
        self._check_weights(weights)
        best = [0.0] * self._n
        for v in self.topological_order():
            incoming = [best[u] for u in self._pred[v]]
            best[v] = (max(incoming) if incoming else 0.0) + float(weights[v])
        return max(best) if best else 0.0

    def longest_path(self, weights: Sequence[float]) -> List[int]:
        """Return the vertices of one longest path (ties broken arbitrarily)."""
        self._check_weights(weights)
        best = [0.0] * self._n
        parent = [-1] * self._n
        for v in self.topological_order():
            incoming = [(best[u], u) for u in self._pred[v]]
            if incoming:
                b, u = max(incoming)
                best[v] = b + float(weights[v])
                parent[v] = u
            else:
                best[v] = float(weights[v])
        end = max(range(self._n), key=lambda v: best[v])
        path = [end]
        while parent[path[-1]] != -1:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def iter_complete_paths(self, limit: int = 0) -> Iterator[Tuple[int, ...]]:
        """Yield every complete (head-to-tail) path as a tuple of vertices.

        Parameters
        ----------
        limit:
            If positive, stop after yielding ``limit`` paths.  The caller is
            responsible for falling back to a sound over-approximation when
            the limit is hit (see :class:`repro.analysis.paths.PathEnumerator`).
        """
        count = 0
        stack: List[Tuple[int, Tuple[int, ...]]] = [
            (v, (v,)) for v in sorted(self.sources(), reverse=True)
        ]
        while stack:
            v, path = stack.pop()
            succs = self._succ[v]
            if not succs:
                yield path
                count += 1
                if limit and count >= limit:
                    return
                continue
            for w in sorted(succs, reverse=True):
                stack.append((w, path + (w,)))

    def count_complete_paths(self, limit: int = 0) -> int:
        """Count complete paths via dynamic programming (no enumeration).

        If ``limit`` is positive, counting stops (and ``limit`` is returned)
        as soon as the count is known to reach it, avoiding overflow work for
        graphs with astronomically many paths.
        """
        counts = [0] * self._n
        for v in reversed(self.topological_order()):
            if not self._succ[v]:
                counts[v] = 1
            else:
                counts[v] = sum(counts[w] for w in self._succ[v])
            if limit and counts[v] >= limit:
                counts[v] = limit
        total = sum(counts[v] for v in self.sources())
        if limit:
            return min(total, limit)
        return total

    def ancestors(self, v: int) -> Set[int]:
        """All vertices from which ``v`` is reachable (excluding ``v``)."""
        seen: Set[int] = set()
        frontier = list(self._pred[v])
        while frontier:
            u = frontier.pop()
            if u in seen:
                continue
            seen.add(u)
            frontier.extend(self._pred[u])
        return seen

    def descendants(self, v: int) -> Set[int]:
        """All vertices reachable from ``v`` (excluding ``v``)."""
        seen: Set[int] = set()
        frontier = list(self._succ[v])
        while frontier:
            u = frontier.pop()
            if u in seen:
                continue
            seen.add(u)
            frontier.extend(self._succ[u])
        return seen

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _check_weights(self, weights: Sequence[float]) -> None:
        if len(weights) != self._n:
            raise DAGError(
                f"expected {self._n} vertex weights, got {len(weights)}"
            )
        for w in weights:
            if w < 0:
                raise DAGError("vertex weights must be non-negative")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DAG(num_vertices={self._n}, num_edges={self.num_edges})"


@dataclass
class PathProfile:
    """Aggregate view of one complete path used by the WCRT analysis.

    Attributes
    ----------
    vertices:
        The vertices on the path, in precedence order.
    length:
        :math:`L(\\lambda)` — total WCET of the vertices on the path.
    requests:
        Mapping ``resource id -> N^λ_{i,q}`` — the number of requests issued
        by vertices on the path, per resource.
    """

    vertices: Tuple[int, ...]
    length: float
    requests: Dict[int, int] = field(default_factory=dict)

    def request_count(self, resource_id: int) -> int:
        """Number of requests to ``resource_id`` issued on this path."""
        return self.requests.get(resource_id, 0)

    def signature(self) -> Tuple:
        """Hashable signature used to deduplicate analysis-equivalent paths."""
        return (round(self.length, 9), tuple(sorted(self.requests.items())))
