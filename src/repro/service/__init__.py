"""``repro.service`` — the schedulability-analysis daemon and its protocol.

A long-lived serving layer over the campaign stack: clients submit single
schedulability queries or full campaign jobs over a typed, versioned
NDJSON-over-TCP protocol, and the daemon executes them on a persistent
worker pool backed by the existing planner/executor/store machinery.
Three layers, strictly separated:

* :mod:`repro.service.messages` — the wire contract: one frozen dataclass
  per request/reply/push event, a versioned registry, and a decoder that
  answers every malformed frame with a typed error (the protocol
  reference in ``docs/service.md`` is generated from this registry);
* :mod:`repro.service.jobs` — admission and execution: identical queries
  coalesce into one execution, repeats hit a result cache, compatible
  queries share arena-batched waves, and campaign jobs run the
  fault-tolerant executor against durable stores keyed by config hash
  (resubmission = resume = healing);
* :mod:`repro.service.daemon` / :mod:`repro.service.client` — the
  threaded TCP transport and its line-oriented client (also the
  in-process test fixture).

Start it with ``python -m repro.service serve``; see ``docs/service.md``
for the protocol walkthrough and ``examples/service_client.py`` for a
complete client conversation.
"""

from .client import ServiceClient, ServiceClientError
from .daemon import ServiceDaemon
from .jobs import JobManager, evaluate_query_wave, query_cache_key, wave_group_key
from .messages import (
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    ErrorReply,
    GetReport,
    GetStats,
    GetStatus,
    JobAccepted,
    JobStatus,
    Message,
    ProgressEvent,
    ProtocolError,
    ReportReady,
    ResultReady,
    ShuttingDown,
    Shutdown,
    StatsReply,
    SubmitCampaign,
    SubmitQuery,
    decode_frame,
    render_protocol_reference,
)

__all__ = [
    "MESSAGE_TYPES",
    "PROTOCOL_VERSION",
    "ErrorReply",
    "GetReport",
    "GetStats",
    "GetStatus",
    "JobAccepted",
    "JobManager",
    "JobStatus",
    "Message",
    "ProgressEvent",
    "ProtocolError",
    "ReportReady",
    "ResultReady",
    "ServiceClient",
    "ServiceClientError",
    "ServiceDaemon",
    "ShuttingDown",
    "Shutdown",
    "StatsReply",
    "SubmitCampaign",
    "SubmitQuery",
    "decode_frame",
    "evaluate_query_wave",
    "query_cache_key",
    "render_protocol_reference",
    "wave_group_key",
]
