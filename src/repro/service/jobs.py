"""Job admission, coalescing, and execution behind the service daemon.

The :class:`JobManager` is the daemon's entire brain; the transport layer
(:mod:`repro.service.daemon`) only decodes frames and forwards them here.
Two job kinds exist:

* **Queries** (:class:`~repro.service.messages.SubmitQuery`) — one
  scenario at one utilization point.  Admission is where the batching
  economics of the engine arena pay off a second time: identical
  submissions (same cache key over every result-determining field) are
  *coalesced* into one execution whose single result answers every
  subscribed client byte-identically, repeats of an already-answered query
  are served straight from the result cache, and *distinct but compatible*
  queries (same platform size, protocol suite, and path-signature cap)
  that queue together are grouped into one shared **wave** — their task
  sets concatenated into a single :func:`repro.analysis.engine.run_arena`
  call, so the batched solver sweeps fixed points across all of them at
  once.  Verdicts are identical-by-construction to per-query execution
  (the arena's guarantee), so batching changes throughput, never results.

* **Campaigns** (:class:`~repro.service.messages.SubmitCampaign`) — a full
  planned campaign backed by a durable :class:`~repro.campaign.store.
  CampaignStore` under ``<data_dir>/jobs/<config-hash-prefix>`` and
  executed by the existing fault-tolerant executor (retry, quarantine,
  pool-crash recovery — ``workers > 1`` runs a real process pool inside
  the job).  The store directory is *derived from the campaign's config
  hash*, so resubmitting an identical campaign resumes its store:
  completed units are restored instead of re-executed and previously
  quarantined units get fresh attempts — healing is a resubmission, not a
  special verb.

Everything the manager observes goes through one lock-guarded
:class:`~repro.obs.telemetry.Telemetry` bundle (``service.*`` counters:
submissions, coalesce hits, cache hits, queue depth, wave widths) and the
service's ``events.jsonl`` (:class:`~repro.obs.events.JobAdmitted` /
:class:`~repro.obs.events.JobFinished`), strictly out-of-band as always.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.engine import ENGINE_KERNEL, compile_taskset
from ..campaign.executor import (
    RetryPolicy,
    UnitResult,
    build_protocols,
    execute_units,
    plan_runner,
)
from ..campaign.planner import (
    FORMAT_VERSION,
    WorkUnit,
    campaign_manifest,
    config_from_dict,
    config_to_dict,
    plan_campaign,
    scenario_from_dict,
    scenario_to_dict,
)
from ..campaign.progress import ProgressTracker
from ..campaign.store import CampaignStore
from ..generation.randfixedsum import GenerationError
from ..generation.taskset_gen import generate_taskset
from ..model.platform import Platform
from ..obs.events import Event, JobAdmitted, JobFinished
from ..obs.log import get_logger
from ..obs.telemetry import Telemetry
from ..utils.rng import ensure_rng, spawn_rngs
from .messages import (
    JobAccepted,
    JobStatus,
    Message,
    ProgressEvent,
    ResultReady,
    SubmitCampaign,
    SubmitQuery,
)

#: Job lifecycle states (surfaced verbatim in :class:`JobStatus`).
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"

#: Job kinds.
KIND_QUERY = "query"
KIND_CAMPAIGN = "campaign"

#: A push listener: receives every :class:`ProgressEvent` /
#: :class:`ResultReady` of the job it subscribed to.  Raising from a
#: listener (a disconnected client) unsubscribes it — never fails the job.
Listener = Callable[[Message], None]


def query_cache_key(message: SubmitQuery) -> str:
    """Cache/coalesce key of a query: sha256 over its result-determining fields.

    The key covers exactly what determines the result bytes — the store
    format version, the normalised scenario, the utilization point, the
    sample count and seed, the protocol suite (order matters: it is the
    report order), and the EP path-signature cap — and nothing volatile,
    mirroring how :func:`repro.campaign.planner.config_hash` keys stores.
    Normalising the scenario through its round-trip guards against two
    clients spelling the same scenario with different numeric types.
    """
    scenario = scenario_to_dict(scenario_from_dict(dict(message.scenario)))
    payload = {
        "format_version": FORMAT_VERSION,
        "scenario": scenario,
        "utilization": float(message.utilization),
        "samples": int(message.samples),
        "seed": int(message.seed),
        "protocols": list(message.protocols),
        "max_path_signatures": int(message.max_path_signatures),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def wave_group_key(message: SubmitQuery) -> Tuple:
    """Grouping key of the admission wave a query can share.

    Queries in one wave share a single :func:`run_arena` call, so they must
    agree on everything that call fixes globally: the platform size and the
    instantiated protocol suite (names + path-signature cap).  Scenario,
    utilization, samples, and seed may all differ — that is the point.
    """
    scenario = dict(message.scenario)
    return (
        int(scenario.get("platform_size", 0)),
        tuple(message.protocols),
        int(message.max_path_signatures),
    )


def _query_unit(message: SubmitQuery) -> WorkUnit:
    """The work unit a query describes (validates the scenario dict)."""
    return WorkUnit(
        scenario=scenario_from_dict(dict(message.scenario)),
        point_index=0,
        utilization=float(message.utilization),
        seed=int(message.seed),
        samples_per_point=int(message.samples),
    )


def evaluate_query_wave(
    queries: List[SubmitQuery], telemetry: Optional[Telemetry] = None
) -> List[UnitResult]:
    """Evaluate one wave of compatible queries in a single arena pass.

    Per query, the sample streams are spawned from its own seed exactly as
    :func:`repro.campaign.executor.execute_unit` would (same RNG order,
    generation failures counted per sample), so each query's acceptance
    counts are bit-identical to a standalone execution.  All generated
    task sets are then concatenated and every arena-capable protocol runs
    once over the whole wave through
    :func:`repro.analysis.engine.run_arena`; non-arena protocols fall back
    to per-task-set calls.  ``telemetry`` (optional, caller-locked)
    receives the wave width and arena-fallback counters.
    """
    if not queries:
        return []
    first = wave_group_key(queries[0])
    if any(wave_group_key(query) != first for query in queries[1:]):
        raise ValueError("queries of one wave must share a wave group key")
    from ..analysis.engine import arena_capable, run_arena

    tests = build_protocols(
        list(queries[0].protocols), int(queries[0].max_path_signatures)
    )
    platform = Platform(int(first[0]))
    needs_warm = any(
        getattr(test, "engine", None) == ENGINE_KERNEL for test in tests
    )
    arena_tests = [test for test in tests if arena_capable(test)]
    fallback_tests = [test for test in tests if not arena_capable(test)]

    results: List[UnitResult] = []
    spans: List[Tuple[int, int]] = []
    tasksets = []
    for query in queries:
        unit = _query_unit(query)
        result = UnitResult(
            unit_id=f"{unit.scenario.scenario_id}:q",
            scenario_id=unit.scenario.scenario_id,
            point_index=0,
            utilization=unit.utilization,
            accepted={test.name: 0 for test in tests},
        )
        generation_config = unit.scenario.generation_config()
        start = len(tasksets)
        for sample_rng in spawn_rngs(ensure_rng(unit.seed), unit.samples_per_point):
            try:
                taskset = generate_taskset(
                    unit.utilization, generation_config, sample_rng
                )
            except GenerationError:
                result.generation_failures += 1
                continue
            result.evaluated += 1
            if needs_warm:
                compile_taskset(taskset)
            tasksets.append(taskset)
        spans.append((start, len(tasksets)))
        results.append(result)

    verdicts: Dict[str, List] = {}
    if tasksets:
        if arena_tests:
            verdicts.update(run_arena(tasksets, platform, arena_tests))
        for test in fallback_tests:
            if telemetry is not None:
                telemetry.count("service.arena.fallbacks", len(tasksets))
            verdicts[test.name] = [
                test.test(taskset, platform) for taskset in tasksets
            ]
    for (start, end), result in zip(spans, results):
        for index in range(start, end):
            for test in tests:
                if verdicts[test.name][index].schedulable:
                    result.accepted[test.name] += 1
    if telemetry is not None:
        telemetry.record("service.wave.width", len(queries))
        telemetry.count("service.wave.samples", len(tasksets))
    return results


def query_result_payload(message: SubmitQuery, result: UnitResult) -> Dict[str, Any]:
    """The :class:`ResultReady` payload of a finished query.

    Deliberately timing-free: every field is a pure function of the query,
    so all clients of a coalesced execution — and of later cache hits —
    receive byte-identical frames (canonical encoding does the rest).
    """
    return {
        "kind": KIND_QUERY,
        "scenario_id": result.scenario_id,
        "utilization": result.utilization,
        "samples": int(message.samples),
        "seed": int(message.seed),
        "protocols": list(message.protocols),
        "accepted": {name: int(n) for name, n in sorted(result.accepted.items())},
        "evaluated": result.evaluated,
        "generation_failures": result.generation_failures,
    }


class Job:
    """Mutable state of one admitted job (guarded by the manager's lock)."""

    def __init__(self, job_id: str, kind: str, key: str) -> None:
        self.job_id = job_id
        self.kind = kind
        self.key = key
        self.state = STATE_QUEUED
        self.done = 0
        self.total = 0
        self.exit_code = 0
        self.quarantined = 0
        self.error_kind = ""
        self.error_message = ""
        self.result: Optional[Dict[str, Any]] = None
        self.listeners: List[Listener] = []
        self.submissions = 1
        self.tracker = ProgressTracker()
        self.store_directory = ""
        self.started = time.perf_counter()
        self.finished = threading.Event()

    def status(self) -> JobStatus:
        """The :class:`JobStatus` snapshot of this job."""
        eta = self.tracker.eta_seconds()
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            done=self.done,
            total=self.total,
            eta_seconds=-1.0 if eta is None else round(eta, 3),
            quarantined=self.quarantined,
            exit_code=self.exit_code,
            error_kind=self.error_kind,
            error_message=self.error_message,
        )


class JobManager:
    """Admission queue, coalescing cache, and persistent worker pool.

    ``data_dir`` roots the durable state: campaign job stores live under
    ``<data_dir>/jobs/`` and (when ``events`` is given) service events go
    to the sink's ``events.jsonl``.  ``workers`` sizes the *job-level*
    thread pool (campaign jobs additionally run their own process pool as
    requested per submission).  All public methods are thread-safe; push
    listeners are invoked outside the lock and unsubscribed on first
    failure, so a disconnected client can neither deadlock nor fail a job.
    """

    def __init__(
        self,
        data_dir: str,
        workers: int = 2,
        events: Optional[Any] = None,
    ) -> None:
        self.data_dir = str(data_dir)
        self.workers = max(1, int(workers))
        self._events = events
        self._events_lock = threading.Lock()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}
        self._cache: Dict[str, Tuple[Dict[str, Any], int]] = {}
        self._queue: List[Tuple[Job, SubmitQuery]] = []
        self._telemetry = Telemetry()
        self._log = get_logger("service.jobs")
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-job"
        )
        self._admission = threading.Thread(
            target=self._admission_loop, name="repro-admission", daemon=True
        )
        self._admission.start()

    # ------------------------------------------------------------------ #
    # Observability plumbing
    # ------------------------------------------------------------------ #
    def _emit(self, event: Event) -> None:
        """Emit one service event (best-effort, lock-serialised)."""
        if self._events is None:
            return
        try:
            with self._events_lock:
                self._events.emit(event)
        except OSError as error:
            self._log.warning(
                "service event emission failed (%s: %s); continuing",
                event.TYPE,
                error,
            )

    class _LockedSink:
        """Thread-safe ``emit`` facade over one shared event sink.

        Campaign jobs run concurrently on pool threads but the executor's
        event emission assumes a single writer; this facade serialises all
        writers onto the service's one ``events.jsonl``.
        """

        def __init__(self, sink: Any, lock: threading.Lock) -> None:
            self._sink = sink
            self._lock = lock

        def emit(self, event: Event) -> int:
            """Emit one event under the shared service sink lock."""
            with self._lock:
                return self._sink.emit(event)

    def _locked_sink(self) -> Optional["JobManager._LockedSink"]:
        """The shared sink wrapped for concurrent emitters (or ``None``)."""
        if self._events is None:
            return None
        return self._LockedSink(self._events, self._events_lock)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit_query(
        self, message: SubmitQuery, listener: Optional[Listener] = None
    ) -> JobAccepted:
        """Admit one query: coalesce, serve from cache, or enqueue a wave.

        Returns the :class:`JobAccepted` reply; for cache hits the
        :class:`ResultReady` is delivered to ``listener`` before this
        method returns (there is nothing to wait for).  Invalid scenarios
        or protocol names raise ``ValueError``/``KeyError``/``TypeError``
        — the daemon maps those onto typed ``invalid_payload`` errors.
        """
        build_protocols(
            list(message.protocols), int(message.max_path_signatures)
        )
        _query_unit(message)  # validates the scenario dict
        key = query_cache_key(message)
        job_id = f"q-{key[:16]}"
        ready: Optional[ResultReady] = None
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                payload, exit_code = cached
                self._telemetry.count("service.cache.hits")
                accepted = JobAccepted(
                    job_id=job_id, kind=KIND_QUERY, cached=True
                )
                ready = ResultReady(
                    job_id=job_id, result=payload, exit_code=exit_code
                )
            else:
                inflight = self._inflight.get(key)
                if inflight is not None:
                    job = self._jobs[inflight]
                    job.submissions += 1
                    if listener is not None:
                        job.listeners.append(listener)
                    self._telemetry.count("service.coalesce.hits")
                    accepted = JobAccepted(
                        job_id=job.job_id, kind=KIND_QUERY, coalesced=True
                    )
                else:
                    if self._closed:
                        raise RuntimeError("service is shutting down")
                    job = Job(job_id, KIND_QUERY, key)
                    if listener is not None:
                        job.listeners.append(listener)
                    self._jobs[job_id] = job
                    self._inflight[key] = job_id
                    self._queue.append((job, message))
                    self._telemetry.count("service.queries")
                    self._telemetry.record(
                        "service.queue.depth", len(self._queue)
                    )
                    accepted = JobAccepted(job_id=job_id, kind=KIND_QUERY)
                    self._wake.notify_all()
            queue_depth = len(self._queue)
        self._emit(
            JobAdmitted(
                job_id=job_id,
                kind=KIND_QUERY,
                coalesced=accepted.coalesced,
                cached=accepted.cached,
                queue_depth=queue_depth,
            )
        )
        if ready is not None and listener is not None:
            self._deliver(listener, ready)
        return accepted

    def submit_campaign(
        self, message: SubmitCampaign, listener: Optional[Listener] = None
    ) -> JobAccepted:
        """Admit one campaign job backed by a durable store.

        The job id and store directory derive from the campaign's config
        hash, so an identical resubmission either coalesces into the
        in-flight job or starts a run that *resumes* the existing store —
        completed units restore instead of re-executing, quarantined units
        get fresh attempts.  Planning errors (unknown protocols, malformed
        scenarios, empty grids) raise and become ``invalid_payload``.
        """
        scenarios = [scenario_from_dict(dict(s)) for s in message.scenarios]
        config = config_from_dict(dict(message.sweep))
        if config.seed is None:
            raise ValueError("a campaign job requires a concrete sweep seed")
        plan = plan_campaign(
            scenarios, config, list(message.protocols), mode=message.mode
        )
        manifest = campaign_manifest(plan, workers=int(message.workers))
        key = f"campaign:{manifest['config_hash']}"
        job_id = f"c-{manifest['config_hash'][:16]}"
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                job = self._jobs[inflight]
                job.submissions += 1
                if listener is not None:
                    job.listeners.append(listener)
                self._telemetry.count("service.coalesce.hits")
                accepted = JobAccepted(
                    job_id=job.job_id, kind=KIND_CAMPAIGN, coalesced=True
                )
                queue_depth = len(self._queue)
            else:
                if self._closed:
                    raise RuntimeError("service is shutting down")
                job = Job(job_id, KIND_CAMPAIGN, key)
                job.total = len(plan.units)
                job.store_directory = os.path.join(
                    self.data_dir, "jobs", manifest["config_hash"][:16]
                )
                if listener is not None:
                    job.listeners.append(listener)
                self._jobs[job_id] = job
                self._inflight[key] = job_id
                self._telemetry.count("service.campaigns")
                accepted = JobAccepted(job_id=job_id, kind=KIND_CAMPAIGN)
                queue_depth = len(self._queue)
                self._pool.submit(
                    self._run_campaign, job, plan, manifest, message
                )
        self._emit(
            JobAdmitted(
                job_id=job_id,
                kind=KIND_CAMPAIGN,
                coalesced=accepted.coalesced,
                queue_depth=queue_depth,
            )
        )
        return accepted

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def status(self, job_id: str) -> Optional[JobStatus]:
        """The status snapshot of ``job_id``, or ``None`` if unknown."""
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.status()

    def job(self, job_id: str) -> Optional[Job]:
        """The job record of ``job_id``, or ``None`` if unknown."""
        with self._lock:
            return self._jobs.get(job_id)

    def stats(self) -> Dict[str, Any]:
        """Service counters plus a per-state job tally (JSON-safe)."""
        with self._lock:
            snapshot = self._telemetry.to_dict()
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            snapshot["jobs"] = {k: states[k] for k in sorted(states)}
            snapshot["cache_entries"] = len(self._cache)
        return snapshot

    def counter(self, name: str) -> int:
        """Current value of one service counter (0 when never counted)."""
        with self._lock:
            return self._telemetry.counters.get(name, 0)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block until ``job_id`` reaches a terminal state (True on arrival)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return False
        return job.finished.wait(timeout)

    def unsubscribe(self, job_id: str, listener: Listener) -> None:
        """Detach one push listener (a disconnect); the job runs on."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and listener in job.listeners:
                job.listeners.remove(listener)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _admission_loop(self) -> None:
        """Drain the queue into waves: group compatible queries, dispatch.

        Runs on its own thread.  Everything queued at wake-up drains at
        once, so queries that accumulate while a wave executes form the
        next wave together — the longer the backlog, the wider (and more
        arena-efficient) the wave.
        """
        while True:
            with self._wake:
                while not self._queue and not self._closed:
                    self._wake.wait()
                if not self._queue and self._closed:
                    return
                batch = self._queue[:]
                del self._queue[:]
                for job, _ in batch:
                    job.state = STATE_RUNNING
            groups: Dict[Tuple, List[Tuple[Job, SubmitQuery]]] = {}
            for job, query in batch:
                groups.setdefault(wave_group_key(query), []).append((job, query))
            for group in groups.values():
                self._pool.submit(self._run_wave, group)

    def _run_wave(self, group: List[Tuple[Job, SubmitQuery]]) -> None:
        """Execute one wave of compatible queries on a pool thread."""
        queries = [query for _, query in group]
        started = time.perf_counter()
        try:
            results = evaluate_query_wave(queries)
            with self._lock:
                self._telemetry.record("service.wave.width", len(queries))
                self._telemetry.observe(
                    "service.wave.seconds", time.perf_counter() - started
                )
        except Exception as error:  # noqa: BLE001 - containment boundary
            self._log.warning("query wave failed: %s", error)
            for job, _ in group:
                self._fail(job, type(error).__name__, str(error))
            return
        for (job, query), result in zip(group, results):
            payload = query_result_payload(query, result)
            self._finish(job, payload, exit_code=0, cache=True)

    def _run_campaign(
        self,
        job: Job,
        plan,
        manifest: Dict[str, Any],
        message: SubmitCampaign,
    ) -> None:
        """Execute one campaign job against its durable store (pool thread)."""
        try:
            store = CampaignStore(job.store_directory)
            store.initialize(manifest)
            protocols = build_protocols(
                plan.protocol_names, plan.config.max_path_signatures
            )
            batch_size = int(message.batch_size) if message.batch_size else None
            runner = plan_runner(plan, batch_size=batch_size)
            with self._lock:
                job.state = STATE_RUNNING
                job.tracker = ProgressTracker(total=len(plan.units))

            def progress(done: int, total: int, result) -> None:
                with self._lock:
                    job.done = done
                    job.total = total
                    job.tracker.update(done, total, restored=result is None)
                    eta = job.tracker.eta_seconds()
                    listeners = list(job.listeners)
                event = ProgressEvent(
                    job_id=job.job_id,
                    done=done,
                    total=total,
                    unit_id=result.unit_id if result is not None else "",
                    eta_seconds=-1.0 if eta is None else round(eta, 3),
                )
                for listener in listeners:
                    self._deliver(listener, event, job=job)

            completed = execute_units(
                plan.units,
                protocols,
                workers=max(1, int(message.workers)),
                store=store,
                progress=progress,
                runner=runner,
                events=self._locked_sink(),
                retry=RetryPolicy(
                    max_attempts=max(1, int(message.max_attempts)),
                    backoff_base=0.0,
                ),
            )
            unresolved = store.unresolved_quarantine()
            payload = {
                "kind": KIND_CAMPAIGN,
                "config_hash": manifest["config_hash"],
                "store_directory": job.store_directory,
                "completed": len(completed),
                "total": len(plan.units),
                "quarantined": sorted(unresolved),
            }
            if len(completed) == len(plan.units) and not unresolved:
                self._finish(job, payload, exit_code=0, cache=False)
            else:
                first = next(iter(sorted(unresolved)), "")
                record = unresolved.get(first, {})
                self._fail(
                    job,
                    "unit_quarantined",
                    f"{len(unresolved)} unit(s) quarantined "
                    f"(e.g. {first}: {record.get('error_kind', 'unknown')})",
                    exit_code=3,
                    result=payload,
                    quarantined=len(unresolved),
                )
        except Exception as error:  # noqa: BLE001 - containment boundary
            self._log.warning("campaign job %s failed: %s", job.job_id, error)
            self._fail(job, type(error).__name__, str(error), exit_code=2)

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #
    def _deliver(
        self, listener: Listener, message: Message, job: Optional[Job] = None
    ) -> None:
        """Push one message to a listener; failures unsubscribe, never kill."""
        try:
            listener(message)
        except Exception:  # noqa: BLE001 - client went away
            if job is not None:
                self.unsubscribe(job.job_id, listener)

    def _settle(
        self,
        job: Job,
        state: str,
        payload: Optional[Dict[str, Any]],
        exit_code: int,
        cache: bool,
    ) -> None:
        """Move a job to a terminal state and fan its result out."""
        elapsed = time.perf_counter() - job.started
        with self._lock:
            job.state = state
            job.result = payload
            job.exit_code = exit_code
            job.done = max(job.done, job.total if state == STATE_DONE else job.done)
            if cache and payload is not None:
                self._cache[job.key] = (payload, exit_code)
            self._inflight.pop(job.key, None)
            listeners = list(job.listeners)
            self._telemetry.observe(f"service.job.{job.kind}.seconds", elapsed)
        self._emit(
            JobFinished(
                job_id=job.job_id,
                state=state,
                exit_code=exit_code,
                elapsed_seconds=round(elapsed, 6),
            )
        )
        job.finished.set()
        if payload is not None:
            ready = ResultReady(
                job_id=job.job_id, result=payload, exit_code=exit_code
            )
            for listener in listeners:
                self._deliver(listener, ready, job=job)

    def _finish(
        self, job: Job, payload: Dict[str, Any], exit_code: int, cache: bool
    ) -> None:
        """Complete a job successfully (optionally caching its result)."""
        self._settle(job, STATE_DONE, payload, exit_code, cache)

    def _fail(
        self,
        job: Job,
        kind: str,
        message: str,
        exit_code: int = 2,
        result: Optional[Dict[str, Any]] = None,
        quarantined: int = 0,
    ) -> None:
        """Move a job to the ``failed`` state with its typed error."""
        with self._lock:
            job.error_kind = kind
            job.error_message = message
            job.quarantined = quarantined
        self._settle(job, STATE_FAILED, result, exit_code, cache=False)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def running_jobs(self) -> int:
        """How many jobs are currently queued or running."""
        with self._lock:
            return sum(
                1
                for job in self._jobs.values()
                if job.state in (STATE_QUEUED, STATE_RUNNING)
            )

    def shutdown(self, wait: bool = True) -> None:
        """Stop admitting work and (optionally) wait for running jobs."""
        with self._lock:
            self._closed = True
            self._wake.notify_all()
        self._admission.join(timeout=5.0)
        self._pool.shutdown(wait=wait)
