"""Command-line entry point of the analysis service (``python -m repro.service``).

Two subcommands:

* ``serve`` — run the daemon in the foreground until interrupted;
* ``protocol`` — print the generated protocol reference (the exact
  markdown block embedded in ``docs/service.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..obs.log import LOG_LEVELS, configure_logging
from .daemon import ServiceDaemon
from .messages import render_protocol_reference


def build_parser() -> argparse.ArgumentParser:
    """The service CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Schedulability-analysis service daemon.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="run the daemon in the foreground until interrupted"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=7667,
        help="TCP port (0 binds an ephemeral port; default: 7667)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker-pool width for concurrent jobs (default: 2)",
    )
    serve.add_argument(
        "--data-dir",
        required=True,
        help="directory for durable job stores and the service events.jsonl",
    )
    serve.add_argument(
        "--log-level",
        choices=sorted(LOG_LEVELS),
        default="info",
        help="log verbosity (default: info)",
    )

    sub.add_parser(
        "protocol",
        help="print the generated protocol reference (markdown)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the service CLI; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "protocol":
        print(render_protocol_reference())
        return 0
    configure_logging(args.log_level)
    daemon = ServiceDaemon(
        data_dir=args.data_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
    )
    print(f"listening on {daemon.host}:{daemon.port}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.stop(wait_jobs=False)
    return 0


if __name__ == "__main__":
    sys.exit(main())
