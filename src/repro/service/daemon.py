"""The analysis service daemon: NDJSON-over-TCP transport around the jobs core.

The daemon is a deliberately thin shell: a threaded TCP server whose per-
connection handler reads newline-delimited frames, decodes them through the
typed codec (:func:`repro.service.messages.decode_frame`), and forwards the
typed messages to the :class:`~repro.service.jobs.JobManager`.  Everything
interesting — coalescing, waves, durable campaign stores, fault handling —
lives in the manager; the transport only owns framing, error mapping, and
connection lifecycle:

* every decode failure and every rejected request is answered with a typed
  :class:`~repro.service.messages.ErrorReply` (the connection survives —
  malformed frames never crash the daemon or the decoder);
* push events (:class:`~repro.service.messages.ProgressEvent`,
  :class:`~repro.service.messages.ResultReady`) are written through a
  per-connection lock so replies and pushes interleave line-atomically;
* a dropped connection merely unsubscribes its listeners — running jobs
  neither die nor leak workers, and their results stay available to
  ``get_status``/``get_report`` afterwards.

Tests (and the example client's ``--spawn`` mode) embed the daemon
in-process: ``ServiceDaemon(port=0, ...)`` + :meth:`ServiceDaemon.start`
binds an ephemeral port and serves from a background thread.
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Optional, Tuple

from ..obs.events import ServiceStarted
from ..obs.log import get_logger
from ..obs.sink import EventSink
from .jobs import JobManager
from .messages import (
    ERR_INTERNAL,
    ERR_INVALID,
    ERR_UNKNOWN_JOB,
    ErrorReply,
    GetReport,
    GetStats,
    GetStatus,
    Message,
    ProtocolError,
    ReportReady,
    ShuttingDown,
    Shutdown,
    StatsReply,
    SubmitCampaign,
    SubmitQuery,
    decode_frame,
)

#: Errors a job manager raises for requests it must reject; the handler
#: maps them onto typed ``invalid_payload`` replies.
_REJECTIONS = (KeyError, TypeError, ValueError, RuntimeError)


class _Connection:
    """One client connection: line-atomic writes shared by reply and push.

    Replies run on the handler thread while push events arrive from job
    worker threads; the write lock keeps every frame one atomic line.  A
    closed or broken socket raises out of :meth:`send` — the job manager's
    delivery path treats that as an unsubscribe, never as a job failure.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()

    def send(self, message: Message) -> None:
        """Write one message as a single NDJSON line (thread-safe)."""
        data = message.encode()
        with self._lock:
            self._sock.sendall(data)


class _Handler(socketserver.StreamRequestHandler):
    """Per-connection request loop of :class:`ServiceDaemon`."""

    def handle(self) -> None:
        """Read frames until EOF, answering each with typed messages."""
        daemon: "ServiceDaemon" = self.server.daemon  # type: ignore[attr-defined]
        connection = _Connection(self.request)
        subscribed = []
        try:
            for raw_line in self.rfile:
                if not raw_line.strip():
                    continue
                reply = daemon.dispatch(raw_line, connection, subscribed)
                if reply is not None:
                    try:
                        connection.send(reply)
                    except OSError:
                        break
        finally:
            for job_id, listener in subscribed:
                daemon.manager.unsubscribe(job_id, listener)

    def finish(self) -> None:
        """Tear the connection down, tolerating an already-dead socket."""
        try:
            super().finish()
        except OSError:
            pass


class _Server(socketserver.ThreadingTCPServer):
    """Threaded TCP server wired back to its owning daemon."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], daemon: "ServiceDaemon") -> None:
        self.daemon = daemon
        super().__init__(address, _Handler)


class ServiceDaemon:
    """The schedulability-analysis service: daemon state plus serve loop.

    ``data_dir`` roots the durable job stores and the service's
    ``events.jsonl``; ``workers`` sizes the job manager's worker pool;
    ``port=0`` binds an ephemeral port (read :attr:`address` after
    :meth:`start`).  Use :meth:`start`/:meth:`stop` to embed the daemon
    in-process (tests, the example client's ``--spawn`` mode) or
    :meth:`serve_forever` to run it in the foreground (the
    ``python -m repro.service serve`` path).
    """

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        events: bool = True,
    ) -> None:
        self.data_dir = str(data_dir)
        self._events = EventSink(self.data_dir) if events else None
        self.manager = JobManager(
            self.data_dir, workers=workers, events=self._events
        )
        self._server = _Server((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._log = get_logger("service.daemon")
        host, port = self._server.server_address[:2]
        self.host = host
        self.port = int(port)
        if self._events is not None:
            self._events.emit(
                ServiceStarted(
                    host=self.host,
                    port=self.port,
                    workers=self.manager.workers,
                    data_dir=self.data_dir,
                )
            )

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` the daemon is bound to."""
        return (self.host, self.port)

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def dispatch(
        self, raw_line: bytes, connection: _Connection, subscribed: list
    ) -> Optional[Message]:
        """Decode one frame and produce its reply (never raises).

        ``subscribed`` collects ``(job_id, listener)`` pairs registered on
        behalf of this connection so the handler can unsubscribe them all
        on disconnect.
        """
        try:
            message = decode_frame(raw_line)
        except ProtocolError as error:
            return ErrorReply(code=error.code, message=str(error))
        try:
            return self._handle(message, connection, subscribed)
        except _REJECTIONS as error:
            return ErrorReply(
                code=ERR_INVALID, message=f"{type(error).__name__}: {error}"
            )
        except Exception as error:  # noqa: BLE001 - transport boundary
            self._log.warning(
                "internal error handling %s: %s", message.TYPE, error
            )
            return ErrorReply(
                code=ERR_INTERNAL, message=f"{type(error).__name__}: {error}"
            )

    def _handle(
        self, message: Message, connection: _Connection, subscribed: list
    ) -> Optional[Message]:
        """Route one typed message to the job manager."""
        if isinstance(message, SubmitQuery):
            listener = connection.send
            accepted = self.manager.submit_query(message, listener)
            subscribed.append((accepted.job_id, listener))
            return accepted
        if isinstance(message, SubmitCampaign):
            listener = connection.send
            accepted = self.manager.submit_campaign(message, listener)
            subscribed.append((accepted.job_id, listener))
            return accepted
        if isinstance(message, GetStatus):
            status = self.manager.status(message.job_id)
            if status is None:
                return ErrorReply(
                    code=ERR_UNKNOWN_JOB,
                    message=f"unknown job {message.job_id!r}",
                    job_id=message.job_id,
                )
            return status
        if isinstance(message, GetStats):
            return StatsReply(counters=self.manager.stats())
        if isinstance(message, GetReport):
            return self._report(message.job_id)
        if isinstance(message, Shutdown):
            reply = ShuttingDown(jobs_running=self.manager.running_jobs())
            try:
                connection.send(reply)
            except OSError:
                pass
            self.stop(wait_jobs=False)
            return None
        return ErrorReply(
            code=ERR_INVALID,
            message=f"{message.TYPE!r} is not a request the daemon serves",
        )

    def _report(self, job_id: str) -> Message:
        """Aggregate a campaign job's store into a :class:`ReportReady`.

        The aggregation runs through the same ``report_cache.json``-backed
        path as ``campaign report``, so repeated report requests over an
        unchanged store cost one cache read.
        """
        from ..report.aggregate import aggregate_store

        job = self.manager.job(job_id)
        if job is None:
            return ErrorReply(
                code=ERR_UNKNOWN_JOB,
                message=f"unknown job {job_id!r}",
                job_id=job_id,
            )
        if not job.store_directory:
            return ErrorReply(
                code=ERR_INVALID,
                message=f"job {job_id!r} is a query; reports cover campaigns",
                job_id=job_id,
            )
        aggregate = aggregate_store(job.store_directory)
        report = {
            "config_hash": aggregate.manifest["config_hash"],
            "mode": aggregate.mode,
            "protocols": aggregate.protocols,
            "completed_units": aggregate.completed_units,
            "total_units": aggregate.total_units,
            "complete": aggregate.complete,
            "weighted_acceptance": aggregate.weighted_acceptance(),
            "quarantined": sorted(aggregate.quarantined),
            "cache_hit": aggregate.cache_stats.hit,
        }
        complete = aggregate.complete and not aggregate.quarantined
        return ReportReady(
            job_id=job_id, report=report, exit_code=0 if complete else 3
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServiceDaemon":
        """Serve from a background thread (in-process embedding); returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (the CLI path)."""
        self._log.info(
            "serving on %s:%d (data dir %s)", self.host, self.port, self.data_dir
        )
        self._server.serve_forever()

    def stop(self, wait_jobs: bool = True) -> None:
        """Shut the transport and the job manager down (idempotent)."""
        shutdown = threading.Thread(
            target=self._server.shutdown, name="repro-service-stop"
        )
        shutdown.start()
        shutdown.join(timeout=10.0)
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.manager.shutdown(wait=wait_jobs)
        if self._events is not None:
            self._events.close()
