"""Typed, versioned wire protocol of the analysis service.

One frozen dataclass per message — the named-types idiom the campaign
event stream already follows (:mod:`repro.obs.events`), promoted to a
*wire contract*: every request a client can send and every reply or push
event the daemon can emit is its own class with a stable ``TYPE`` name,
registered in :data:`MESSAGE_TYPES` and stamped with the protocol version
on encode.

Frames are newline-delimited JSON objects::

    {"type": "submit_query", "v": 1, ...payload...}\\n

The codec is deliberately defensive — the decoder **never** raises
anything but :class:`ProtocolError`:

* a frame that is not a JSON object (or not valid UTF-8/JSON at all) is
  :data:`ERR_MALFORMED`;
* a frame whose ``v`` differs from :data:`PROTOCOL_VERSION` is
  :data:`ERR_VERSION` (checked before the type lookup, so a newer peer's
  unknown types still produce the right diagnosis);
* an unregistered ``type`` is :data:`ERR_UNKNOWN_TYPE`;
* a known type whose required payload fields are missing is
  :data:`ERR_INVALID`.

Unknown *fields* of a known type are ignored (forward compatibility:
same-version writers may add optional fields), and every ``ProtocolError``
maps 1:1 onto an :class:`ErrorReply` the daemon sends back instead of
dropping the connection.

The protocol reference in ``docs/service.md`` is generated from the
registry by :func:`render_protocol_reference` (``python -m repro.service
protocol``) and pinned by a test, so docs and code cannot drift apart.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Type, Union

#: Version stamped into every frame.  Bumped on any incompatible change to
#: a message schema; a mismatched peer receives a typed
#: :data:`ERR_VERSION` error instead of a silently misparsed payload.
PROTOCOL_VERSION = 1

#: Envelope keys of a frame (never payload fields).
ENVELOPE_KEYS = ("type", "v")

#: Registry of wire type name → message class, populated by
#: :func:`_register` — the single source :func:`decode_frame` and the
#: generated protocol reference derive from.
MESSAGE_TYPES: Dict[str, Type["Message"]] = {}

#: Error codes carried by :class:`ProtocolError` / :class:`ErrorReply`.
ERR_MALFORMED = "malformed_frame"
ERR_VERSION = "version_mismatch"
ERR_UNKNOWN_TYPE = "unknown_type"
ERR_INVALID = "invalid_payload"
ERR_UNKNOWN_JOB = "unknown_job"
ERR_INTERNAL = "internal_error"

#: Message directions (documentation metadata, rendered into the
#: protocol reference): client → server, server → client, or a push
#: event the server streams without a matching request.
DIRECTION_REQUEST = "request"
DIRECTION_REPLY = "reply"
DIRECTION_EVENT = "push event"


class ProtocolError(Exception):
    """A frame could not be decoded into a typed message.

    ``code`` is one of the ``ERR_*`` constants; the daemon converts the
    error into an :class:`ErrorReply` carrying the same code, so clients
    always see a typed diagnosis instead of a dropped connection.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _register(cls: Type["Message"]) -> Type["Message"]:
    """Class decorator adding a message type to :data:`MESSAGE_TYPES`."""
    if cls.TYPE in MESSAGE_TYPES:  # pragma: no cover - import-time invariant
        raise ValueError(f"duplicate message type name {cls.TYPE!r}")
    MESSAGE_TYPES[cls.TYPE] = cls
    return cls


class Message:
    """Base class of every service message (one frozen dataclass each).

    Subclasses set ``TYPE`` (the stable wire name) and ``DIRECTION``.
    Encoding is canonical (sorted keys, compact separators), so two equal
    messages always encode to byte-identical frames — the property the
    coalescing end-to-end test pins.
    """

    #: Stable wire name of the message type (overridden per subclass).
    TYPE = ""
    #: Who sends it (see the ``DIRECTION_*`` constants).
    DIRECTION = DIRECTION_REQUEST

    def to_frame(self) -> dict:
        """JSON-serialisable frame: envelope plus every payload field."""
        frame: Dict[str, Any] = {"type": self.TYPE, "v": PROTOCOL_VERSION}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            frame[field.name] = value
        return frame

    def encode(self) -> bytes:
        """Canonical newline-terminated wire bytes of this message."""
        return (
            json.dumps(
                self.to_frame(),
                sort_keys=True,
                separators=(",", ":"),
                allow_nan=False,
            ).encode("utf-8")
            + b"\n"
        )

    @classmethod
    def from_frame(cls, frame: Mapping) -> "Message":
        """Rebuild a message from a decoded frame mapping.

        Envelope keys and unknown fields are ignored; lists become tuples
        (shallow, mirroring :meth:`to_frame`); missing required fields
        raise :class:`ProtocolError` with :data:`ERR_INVALID`.
        """
        payload = {}
        for field in dataclasses.fields(cls):
            if field.name in frame:
                value = frame[field.name]
                if isinstance(value, list):
                    value = tuple(value)
                payload[field.name] = value
        try:
            return cls(**payload)  # type: ignore[call-arg]
        except (TypeError, ValueError) as error:
            raise ProtocolError(
                ERR_INVALID,
                f"invalid {cls.TYPE!r} payload: {error}",
            ) from error


def decode_frame(data: Union[bytes, str]) -> Message:
    """Decode one wire line into its typed message.

    Never raises anything but :class:`ProtocolError` — malformed bytes,
    invalid JSON, non-object frames, version mismatches, unknown types,
    and missing required fields all come back as typed codes (see the
    module docstring for the precedence).
    """
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(
                ERR_MALFORMED, f"frame is not UTF-8: {error}"
            ) from error
    text = data.strip()
    if not text:
        raise ProtocolError(ERR_MALFORMED, "empty frame")
    try:
        frame = json.loads(text)
    except (json.JSONDecodeError, ValueError, RecursionError) as error:
        raise ProtocolError(
            ERR_MALFORMED, f"frame is not valid JSON: {error}"
        ) from error
    if not isinstance(frame, dict):
        raise ProtocolError(
            ERR_MALFORMED, f"frame is not a JSON object: {type(frame).__name__}"
        )
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ERR_VERSION,
            f"frame speaks protocol version {version!r}, this service "
            f"speaks {PROTOCOL_VERSION}",
        )
    type_name = frame.get("type")
    cls = MESSAGE_TYPES.get(type_name) if isinstance(type_name, str) else None
    if cls is None:
        raise ProtocolError(
            ERR_UNKNOWN_TYPE, f"unknown message type {type_name!r}"
        )
    return cls.from_frame(frame)


# --------------------------------------------------------------------------- #
# Requests (client → server)
# --------------------------------------------------------------------------- #
@_register
@dataclass(frozen=True)
class SubmitQuery(Message):
    """Submit one schedulability query: a scenario at one utilization.

    ``scenario`` is a :func:`repro.campaign.planner.scenario_to_dict`
    mapping; ``utilization`` the absolute total-utilization point;
    ``samples``/``seed`` the sample count and base seed of the per-sample
    streams (identical to a campaign work unit's, so service answers
    reproduce campaign points bit for bit); ``protocols`` the suite to
    evaluate.  Identical queries — same cache key over all of these
    fields — are coalesced into one execution and served from the result
    cache on repeats.
    """

    TYPE = "submit_query"
    DIRECTION = DIRECTION_REQUEST

    scenario: Dict[str, Any]
    utilization: float
    samples: int
    seed: int
    protocols: Tuple[str, ...]
    max_path_signatures: int = 48

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenario", dict(self.scenario))


@_register
@dataclass(frozen=True)
class SubmitCampaign(Message):
    """Submit a full campaign job backed by a durable store.

    ``scenarios`` and ``sweep`` mirror the campaign manifest
    (:func:`~repro.campaign.planner.scenario_to_dict` /
    :func:`~repro.campaign.planner.config_to_dict`); the daemon derives
    the job's store directory from the campaign's config hash, so
    resubmitting an identical campaign *resumes* it — completed units are
    replayed from the store and quarantined units are retried (healed).
    ``workers`` selects the executor's process-pool width inside the job;
    ``max_attempts`` its retry policy; ``batch_size`` the arena-batched
    evaluation strategy (0 = whole unit per wave).
    """

    TYPE = "submit_campaign"
    DIRECTION = DIRECTION_REQUEST

    scenarios: Tuple[Dict[str, Any], ...]
    sweep: Dict[str, Any]
    protocols: Tuple[str, ...]
    mode: str = "analyze"
    workers: int = 1
    max_attempts: int = 3
    batch_size: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "scenarios", tuple(dict(s) for s in self.scenarios)
        )
        object.__setattr__(self, "sweep", dict(self.sweep))


@_register
@dataclass(frozen=True)
class GetStatus(Message):
    """Request the current :class:`JobStatus` of one job by id."""

    TYPE = "get_status"
    DIRECTION = DIRECTION_REQUEST

    job_id: str


@_register
@dataclass(frozen=True)
class GetStats(Message):
    """Request the service counters (:class:`StatsReply`)."""

    TYPE = "get_stats"
    DIRECTION = DIRECTION_REQUEST


@_register
@dataclass(frozen=True)
class GetReport(Message):
    """Request the cached report aggregate of a finished campaign job.

    The daemon folds the job's store through the reporting aggregator —
    the same ``report_cache.json``-backed path as ``campaign report`` —
    and answers with a :class:`ReportReady` whose ``exit_code`` mirrors
    the CLI's watch-friendly convention (0 complete, 3 incomplete).
    """

    TYPE = "get_report"
    DIRECTION = DIRECTION_REQUEST

    job_id: str


@_register
@dataclass(frozen=True)
class Shutdown(Message):
    """Ask the daemon to stop accepting work and exit its serve loop."""

    TYPE = "shutdown"
    DIRECTION = DIRECTION_REQUEST


# --------------------------------------------------------------------------- #
# Replies and push events (server → client)
# --------------------------------------------------------------------------- #
@_register
@dataclass(frozen=True)
class JobAccepted(Message):
    """A submission was admitted; the job id names it from now on.

    ``coalesced`` marks a submission folded into an identical in-flight
    job; ``cached`` a repeat served from the result cache (the
    :class:`ResultReady` follows immediately).
    """

    TYPE = "job_accepted"
    DIRECTION = DIRECTION_REPLY

    job_id: str
    kind: str
    coalesced: bool = False
    cached: bool = False


@_register
@dataclass(frozen=True)
class JobStatus(Message):
    """Point-in-time state of a job (reply to :class:`GetStatus`).

    ``state`` is one of ``queued``/``running``/``done``/``failed``;
    ``done``/``total`` count work units for campaign jobs;
    ``eta_seconds`` is the headless progress tracker's estimate (−1 when
    unknowable); a ``failed`` job carries its typed ``error_kind`` (e.g.
    ``unit_quarantined``) and ``error_message``.
    """

    TYPE = "job_status"
    DIRECTION = DIRECTION_REPLY

    job_id: str
    state: str
    done: int = 0
    total: int = 0
    eta_seconds: float = -1.0
    quarantined: int = 0
    exit_code: int = 0
    error_kind: str = ""
    error_message: str = ""


@_register
@dataclass(frozen=True)
class ProgressEvent(Message):
    """Push event: one more work unit of a campaign job finished."""

    TYPE = "progress_event"
    DIRECTION = DIRECTION_EVENT

    job_id: str
    done: int
    total: int
    unit_id: str = ""
    eta_seconds: float = -1.0


@_register
@dataclass(frozen=True)
class ResultReady(Message):
    """Push event: a job reached a terminal state; ``result`` is its payload.

    For queries the payload carries the acceptance counts (byte-identical
    across every client of a coalesced execution — timing never enters
    it).  For campaigns it summarises the store.  ``exit_code`` mirrors
    ``campaign report``'s watch-friendly convention: 0 = complete, 3 =
    incomplete or quarantined units remain — the CLI's polling exit codes
    turned into a push.
    """

    TYPE = "result_ready"
    DIRECTION = DIRECTION_EVENT

    job_id: str
    result: Dict[str, Any]
    exit_code: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "result", dict(self.result))


@_register
@dataclass(frozen=True)
class ReportReady(Message):
    """Reply to :class:`GetReport`: the cached aggregate summary of a store."""

    TYPE = "report_ready"
    DIRECTION = DIRECTION_REPLY

    job_id: str
    report: Dict[str, Any]
    exit_code: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "report", dict(self.report))


@_register
@dataclass(frozen=True)
class StatsReply(Message):
    """Reply to :class:`GetStats`: service counters and job tallies."""

    TYPE = "stats_reply"
    DIRECTION = DIRECTION_REPLY

    counters: Dict[str, Any]

    def __post_init__(self) -> None:
        object.__setattr__(self, "counters", dict(self.counters))


@_register
@dataclass(frozen=True)
class ShuttingDown(Message):
    """Reply to :class:`Shutdown`: the daemon is stopping."""

    TYPE = "shutting_down"
    DIRECTION = DIRECTION_REPLY

    jobs_running: int = 0


@_register
@dataclass(frozen=True)
class ErrorReply(Message):
    """Typed error reply: the request could not be served.

    ``code`` is one of the ``ERR_*`` constants of this module; ``job_id``
    names the affected job when there is one.
    """

    TYPE = "error_reply"
    DIRECTION = DIRECTION_REPLY

    code: str
    message: str
    job_id: str = ""


# --------------------------------------------------------------------------- #
# Generated protocol reference
# --------------------------------------------------------------------------- #
def _field_doc(field: dataclasses.Field) -> str:
    """One reference row cell describing a dataclass field."""
    note = ""
    if field.default is not dataclasses.MISSING:
        note = f" = {field.default!r}"
    elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        note = " = {}"
    type_name = getattr(field.type, "__name__", None) or str(field.type)
    return f"`{field.name}`: {type_name}{note}"


def render_protocol_reference() -> str:
    """Markdown reference of every registered message type.

    Rendered from :data:`MESSAGE_TYPES` — the same registry the codec
    dispatches on — so the published protocol documentation in
    ``docs/service.md`` cannot drift from the implementation (a test pins
    the rendered block against the docs file).
    """
    lines = [
        f"Protocol version: **{PROTOCOL_VERSION}** "
        "(frames carry it as `\"v\"`; a mismatch is answered with a typed "
        f"`{ERR_VERSION}` error).",
        "",
        "| Type | Direction | Class | Fields |",
        "| --- | --- | --- | --- |",
    ]
    for name in sorted(MESSAGE_TYPES):
        cls = MESSAGE_TYPES[name]
        fields = [_field_doc(field) for field in dataclasses.fields(cls)]
        summary = (cls.__doc__ or "").strip().splitlines()[0]
        lines.append(
            f"| `{name}` | {cls.DIRECTION} | `{cls.__name__}` | "
            f"{'; '.join(fields) or '—'} |"
        )
        lines.append(f"| | | | {summary} |")
    lines.append("")
    codes = ", ".join(
        f"`{code}`"
        for code in (
            ERR_MALFORMED,
            ERR_VERSION,
            ERR_UNKNOWN_TYPE,
            ERR_INVALID,
            ERR_UNKNOWN_JOB,
            ERR_INTERNAL,
        )
    )
    lines.append(f"Error codes carried by `error_reply`: {codes}.")
    return "\n".join(lines)
