"""Line-oriented client for the analysis service daemon.

:class:`ServiceClient` speaks the typed NDJSON protocol of
:mod:`repro.service.messages` over one TCP connection: :meth:`send` writes
a message as a frame, :meth:`recv` reads and decodes the next one, and the
convenience calls (:meth:`query`, :meth:`campaign`, :meth:`wait_result`)
wrap the common submit-then-wait conversations.  Push events that arrive
while waiting for something else are buffered in order, so interleaved
progress streams never desynchronise a request/reply exchange.

The client is also the service's in-process test fixture: point it at an
embedded :class:`~repro.service.daemon.ServiceDaemon` bound to an
ephemeral port and drive the full protocol without any subprocess.
"""

from __future__ import annotations

import socket
from typing import Iterator, List, Optional, Tuple, Type

from .messages import (
    ErrorReply,
    GetReport,
    GetStats,
    GetStatus,
    JobAccepted,
    JobStatus,
    Message,
    ProgressEvent,
    ReportReady,
    ResultReady,
    Shutdown,
    ShuttingDown,
    StatsReply,
    SubmitCampaign,
    SubmitQuery,
    decode_frame,
)


class ServiceClientError(RuntimeError):
    """The conversation broke: unexpected EOF or an unusable reply."""


class ServiceClient:
    """One typed connection to a running service daemon.

    Usable as a context manager; :meth:`close` is idempotent.  All blocking
    reads honour ``timeout`` (seconds; ``None`` blocks forever).
    """

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rb")
        self._pending: List[Message] = []

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the connected client itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    def close(self) -> None:
        """Close the connection (idempotent; never raises)."""
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Raw protocol
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Write one message as a single NDJSON frame."""
        self._sock.sendall(message.encode())

    def recv(self) -> Message:
        """The next message from the daemon (buffered pushes first)."""
        if self._pending:
            return self._pending.pop(0)
        line = self._file.readline()
        if not line:
            raise ServiceClientError("connection closed by the daemon")
        return decode_frame(line)

    def recv_until(self, *types: Type[Message]) -> Message:
        """Read until a message of one of ``types`` arrives.

        Everything else received on the way (progress pushes, results of
        other jobs on a shared connection) is buffered in arrival order
        for later :meth:`recv` calls.
        """
        buffered: List[Message] = []
        try:
            while True:
                message = self.recv()
                if isinstance(message, types):
                    return message
                buffered.append(message)
        finally:
            self._pending = buffered + self._pending

    # ------------------------------------------------------------------ #
    # Conversations
    # ------------------------------------------------------------------ #
    def submit(self, message: Message) -> Message:
        """Submit a job and return the daemon's admission reply."""
        self.send(message)
        return self.recv_until(JobAccepted)

    def wait_result(self, job_id: str) -> ResultReady:
        """Block until the :class:`ResultReady` of ``job_id`` arrives.

        Messages of other jobs arriving first are buffered in order.
        """
        buffered: List[Message] = []
        try:
            while True:
                message = self.recv()
                if isinstance(message, ResultReady) and message.job_id == job_id:
                    return message
                buffered.append(message)
        finally:
            self._pending = buffered + self._pending

    def query(self, message: SubmitQuery) -> Tuple[JobAccepted, ResultReady]:
        """Submit one query and wait for its result."""
        accepted = self.submit(message)
        if not isinstance(accepted, JobAccepted):
            raise ServiceClientError(f"query rejected: {accepted}")
        return accepted, self.wait_result(accepted.job_id)

    def campaign(
        self, message: SubmitCampaign
    ) -> Tuple[JobAccepted, ResultReady]:
        """Submit one campaign job and wait for its terminal result."""
        accepted = self.submit(message)
        if not isinstance(accepted, JobAccepted):
            raise ServiceClientError(f"campaign rejected: {accepted}")
        return accepted, self.wait_result(accepted.job_id)

    def progress(self, job_id: str) -> Iterator[ProgressEvent]:
        """Yield progress pushes of ``job_id`` until its result arrives.

        The terminating :class:`ResultReady` is buffered for a subsequent
        :meth:`wait_result` call.
        """
        while True:
            message = self.recv_until(ProgressEvent, ResultReady)
            if isinstance(message, ResultReady):
                self._pending.insert(0, message)
                return
            if message.job_id == job_id:
                yield message

    def status(self, job_id: str) -> Message:
        """Request the :class:`~repro.service.messages.JobStatus` of a job."""
        self.send(GetStatus(job_id=job_id))
        return self.recv_until(JobStatus, ErrorReply)

    def stats(self) -> StatsReply:
        """Request the service counters."""
        self.send(GetStats())
        reply = self.recv_until(StatsReply)
        assert isinstance(reply, StatsReply)
        return reply

    def report(self, job_id: str) -> Message:
        """Request the cached report aggregate of a campaign job."""
        self.send(GetReport(job_id=job_id))
        return self.recv_until(ReportReady, ErrorReply)

    def shutdown(self) -> ShuttingDown:
        """Ask the daemon to stop; returns its farewell."""
        self.send(Shutdown())
        reply = self.recv_until(ShuttingDown)
        assert isinstance(reply, ShuttingDown)
        return reply
