"""Reproduction of the paper's Tables 2 and 3 (dominance / outperformance).

The tables report, for every ordered protocol pair (row, column), in how many
of the experimental scenarios the row protocol dominates / outperforms the
column protocol, as an absolute count and as a percentage of the scenarios.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .figures import load_sweep_results
from .metrics import PairwiseStatistics
from .runner import pairwise_statistics

#: Protocol order used by the paper's tables.
TABLE_PROTOCOLS = ("DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP")


def _format_cell(count: int, total: int) -> str:
    percentage = 100.0 * count / total if total else 0.0
    return f"{count}({percentage:.1f}%)"


def _render(
    stats: PairwiseStatistics,
    matrix_name: str,
    protocols: Sequence[str],
    title: str,
) -> str:
    matrix = getattr(stats, matrix_name)
    total = stats.scenario_count
    header = [""] + list(protocols)
    rows: List[List[str]] = [header]
    for row_protocol in protocols:
        row = [row_protocol]
        for col_protocol in protocols:
            if row_protocol == col_protocol:
                row.append("N/A")
            else:
                row.append(_format_cell(matrix[row_protocol][col_protocol], total))
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = [f"{title} ({total} scenarios)"]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_dominance_table(
    stats: PairwiseStatistics, protocols: Optional[Sequence[str]] = None
) -> str:
    """Render Table 2 ("Statistic for Dominance") as plain text."""
    protocols = protocols or [p for p in TABLE_PROTOCOLS if p in stats.protocols]
    return _render(stats, "dominance", protocols, "Table 2. Statistic for Dominance")


def render_outperformance_table(
    stats: PairwiseStatistics, protocols: Optional[Sequence[str]] = None
) -> str:
    """Render Table 3 ("Statistic for Outperformance") as plain text."""
    protocols = protocols or [p for p in TABLE_PROTOCOLS if p in stats.protocols]
    return _render(
        stats, "outperformance", protocols, "Table 3. Statistic for Outperformance"
    )


def load_pairwise_statistics(
    store_directory: str,
    protocols: Optional[Sequence[str]] = None,
    allow_partial: bool = True,
) -> PairwiseStatistics:
    """Build dominance/outperformance statistics from a campaign store.

    Only scenarios whose sweep completed contribute (partial curves would
    bias the per-scenario comparisons); pass ``allow_partial=False`` to
    require a fully executed campaign instead.  The store is folded by the
    reporting aggregator, so this shares its code path (and cache format)
    with ``python -m repro.campaign report``.
    """
    results = load_sweep_results(store_directory, allow_partial=allow_partial)
    if not results:
        raise ValueError(
            f"store {store_directory!r} holds no completed scenario sweeps yet"
        )
    return pairwise_statistics(results, protocols=protocols)


def table_rows(
    stats: PairwiseStatistics,
    matrix: str,
    protocols: Optional[Sequence[str]] = None,
) -> List[dict]:
    """Structured rows of a table (useful for CSV export and tests).

    Each row is ``{"protocol": row, column: count, ...}``.
    """
    if matrix not in ("dominance", "outperformance"):
        raise ValueError("matrix must be 'dominance' or 'outperformance'")
    protocols = protocols or [p for p in TABLE_PROTOCOLS if p in stats.protocols]
    data = getattr(stats, matrix)
    rows: List[dict] = []
    for row_protocol in protocols:
        row = {"protocol": row_protocol}
        for col_protocol in protocols:
            if row_protocol == col_protocol:
                row[col_protocol] = None
            else:
                row[col_protocol] = data[row_protocol][col_protocol]
        rows.append(row)
    return rows
