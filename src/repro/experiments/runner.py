"""Experiment runner: utilization sweeps and scenario-grid campaigns.

The runner generates task sets, applies every schedulability test, and
collects :class:`~repro.experiments.metrics.SweepCurve` objects that the
figure and table builders consume.

Since the campaign engine landed, the runner is a thin façade over
:mod:`repro.campaign`: sweeps are decomposed into per-utilization-point work
units by the planner and executed by the executor, so the serial convenience
API and the parallel/resumable campaign CLI share one code path (and one
seed-derivation scheme — results are bit-identical either way).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.dpcp_p import DEFAULT_MAX_PATH_SIGNATURES
from ..analysis.interfaces import SchedulabilityTest
from .metrics import PairwiseStatistics, SweepCurve
from .scenarios import Scenario

#: Callback invoked after every evaluated utilization point:
#: ``(scenario, utilization, {protocol: accepted})``.
ProgressCallback = Callable[[Scenario, float, Dict[str, int]], None]


@dataclass
class SweepConfig:
    """Run-time knobs of a utilization sweep.

    Attributes
    ----------
    samples_per_point:
        Number of task sets generated per utilization point.
    utilization_step_fraction:
        Sweep resolution as a fraction of the platform size (0.05 in the
        paper).
    max_path_signatures:
        Cap forwarded to the EP path enumerator (see DESIGN.md).
    seed:
        Base seed; every (point, sample) pair receives its own child stream.
    """

    samples_per_point: int = 20
    utilization_step_fraction: float = 0.05
    max_path_signatures: int = DEFAULT_MAX_PATH_SIGNATURES
    seed: Optional[int] = 20200706

    def __post_init__(self) -> None:
        if self.samples_per_point < 1:
            raise ValueError("samples_per_point must be at least 1")
        if not 0 < self.utilization_step_fraction <= 1:
            raise ValueError(
                "utilization_step_fraction must be in (0, 1] — it is a "
                "fraction of the platform size, and a value above 1 would "
                "yield an empty sweep"
            )
        if self.max_path_signatures < 1:
            raise ValueError("max_path_signatures must be at least 1")


@dataclass
class SweepResult:
    """Outcome of sweeping one scenario."""

    scenario: Scenario
    curves: Dict[str, SweepCurve] = field(default_factory=dict)

    def curve(self, protocol: str) -> SweepCurve:
        """Curve of one protocol."""
        return self.curves[protocol]

    @property
    def protocols(self) -> List[str]:
        """Protocols covered by this sweep."""
        return list(self.curves)


def _resolve_protocols(
    protocols: Optional[Sequence[SchedulabilityTest]], config: "SweepConfig"
) -> List[SchedulabilityTest]:
    """Explicit protocol list, or the paper's suite honouring the EP cap."""
    if protocols is not None:
        return list(protocols)
    from ..campaign.executor import build_protocols
    from ..campaign.planner import KNOWN_PROTOCOLS

    return build_protocols(KNOWN_PROTOCOLS, config.max_path_signatures)


def _adapt_progress(progress: Optional[ProgressCallback], resolve_scenario):
    """Wrap a per-point :data:`ProgressCallback` as the executor's per-unit
    callback (``None`` passes through)."""
    if progress is None:
        return None

    def unit_progress(done, total, result):
        if result is not None:
            progress(
                resolve_scenario(result.scenario_id),
                result.utilization,
                dict(result.accepted),
            )

    return unit_progress


def run_sweep(
    scenario: Scenario,
    protocols: Optional[Sequence[SchedulabilityTest]] = None,
    config: Optional[SweepConfig] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Sweep the normalized utilization for one scenario.

    For every utilization point, ``config.samples_per_point`` task sets are
    generated and every protocol is applied to every task set; the acceptance
    counts form one :class:`SweepCurve` per protocol.  Points where every
    task-set draw failed are recorded with ``sampled == 0`` and their failure
    count (see :attr:`SweepCurve.generation_failures`).
    """
    # Deferred import: the campaign subsystem builds on the types above.
    from ..campaign.executor import assemble_sweep, execute_units
    from ..campaign.planner import plan_scenario_units

    config = config or SweepConfig()
    tests = _resolve_protocols(protocols, config)
    units = plan_scenario_units(scenario, config)

    unit_progress = _adapt_progress(progress, lambda scenario_id: scenario)
    results = execute_units(units, tests, workers=1, progress=unit_progress)
    return assemble_sweep(scenario, [t.name for t in tests], results)


def run_campaign(
    scenarios: Sequence[Scenario],
    protocols: Optional[Sequence[SchedulabilityTest]] = None,
    config: Optional[SweepConfig] = None,
    progress: Optional[ProgressCallback] = None,
    workers: int = 1,
) -> List[SweepResult]:
    """Run a sweep for every scenario of a grid.

    With ``workers > 1`` the campaign's work units are fanned out across a
    process pool (requires a non-``None`` seed for reproducibility); results
    are identical to the serial run either way.  For checkpointing/resume use
    the campaign engine directly (``python -m repro.campaign``).
    """
    config = config or SweepConfig()
    scenarios = list(scenarios)
    if not scenarios:
        return []
    if workers <= 1:
        return [
            run_sweep(scenario, protocols=protocols, config=config, progress=progress)
            for scenario in scenarios
        ]
    if config.seed is None:
        raise ValueError(
            "run_campaign with workers > 1 requires a concrete SweepConfig.seed; "
            "with seed=None every unit would draw fresh OS entropy and the "
            "results could never be reproduced"
        )

    from ..campaign.executor import assemble_campaign, execute_units
    from ..campaign.planner import plan_campaign

    tests = _resolve_protocols(protocols, config)
    # Duplicate scenarios are legal (and produce identical results) on the
    # serial path; plan each distinct scenario once and fan the assembled
    # sweeps back out so the workers knob never changes the outcome.
    unique: List[Scenario] = []
    seen = set()
    for scenario in scenarios:
        if scenario.scenario_id not in seen:
            seen.add(scenario.scenario_id)
            unique.append(scenario)
    plan = plan_campaign(unique, config, [t.name for t in tests])
    scenario_by_id = {s.scenario_id: s for s in plan.scenarios}
    unit_progress = _adapt_progress(progress, scenario_by_id.__getitem__)
    results = execute_units(plan.units, tests, workers=workers, progress=unit_progress)
    sweep_by_id = {
        sweep.scenario.scenario_id: sweep
        for sweep in assemble_campaign(plan, results)
    }
    emitted: set = set()
    output: List[SweepResult] = []
    for scenario in scenarios:
        sweep = sweep_by_id[scenario.scenario_id]
        # Serial runs return independent result objects for duplicate
        # scenarios; copy so mutating one entry never corrupts another.
        if scenario.scenario_id in emitted:
            sweep = copy.deepcopy(sweep)
        emitted.add(scenario.scenario_id)
        output.append(sweep)
    return output


def pairwise_statistics(
    results: Sequence[SweepResult], protocols: Optional[Sequence[str]] = None
) -> PairwiseStatistics:
    """Aggregate dominance/outperformance statistics over sweep results."""
    if not results:
        raise ValueError("no sweep results to aggregate")
    if protocols is None:
        protocols = results[0].protocols
    stats = PairwiseStatistics(protocols=list(protocols))
    for result in results:
        stats.record_scenario(result.curves)
    return stats
