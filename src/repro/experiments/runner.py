"""Experiment runner: utilization sweeps and scenario-grid campaigns.

The runner generates task sets, applies every schedulability test, and
collects :class:`~repro.experiments.metrics.SweepCurve` objects that the
figure and table builders consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis import default_protocols
from ..analysis.interfaces import SchedulabilityTest
from ..generation.randfixedsum import GenerationError
from ..generation.taskset_gen import generate_taskset
from ..model.platform import Platform
from ..model.task import TaskSet
from ..utils.rng import RngLike, ensure_rng, spawn_rngs
from .metrics import PairwiseStatistics, SweepCurve
from .scenarios import Scenario

#: Callback invoked after every evaluated utilization point:
#: ``(scenario, utilization, {protocol: accepted})``.
ProgressCallback = Callable[[Scenario, float, Dict[str, int]], None]


@dataclass
class SweepConfig:
    """Run-time knobs of a utilization sweep.

    Attributes
    ----------
    samples_per_point:
        Number of task sets generated per utilization point.
    utilization_step_fraction:
        Sweep resolution as a fraction of the platform size (0.05 in the
        paper).
    max_path_signatures:
        Cap forwarded to the EP path enumerator (see DESIGN.md).
    seed:
        Base seed; every (point, sample) pair receives its own child stream.
    """

    samples_per_point: int = 20
    utilization_step_fraction: float = 0.05
    max_path_signatures: int = 2048
    seed: Optional[int] = 20200706


@dataclass
class SweepResult:
    """Outcome of sweeping one scenario."""

    scenario: Scenario
    curves: Dict[str, SweepCurve] = field(default_factory=dict)

    def curve(self, protocol: str) -> SweepCurve:
        """Curve of one protocol."""
        return self.curves[protocol]

    @property
    def protocols(self) -> List[str]:
        """Protocols covered by this sweep."""
        return list(self.curves)


def run_sweep(
    scenario: Scenario,
    protocols: Optional[Sequence[SchedulabilityTest]] = None,
    config: Optional[SweepConfig] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Sweep the normalized utilization for one scenario.

    For every utilization point, ``config.samples_per_point`` task sets are
    generated and every protocol is applied to every task set; the acceptance
    counts form one :class:`SweepCurve` per protocol.
    """
    config = config or SweepConfig()
    protocols = list(protocols) if protocols is not None else default_protocols()
    platform = Platform(scenario.platform_size)
    generation_config = scenario.generation_config()
    points = scenario.utilization_points(config.utilization_step_fraction)

    result = SweepResult(scenario=scenario)
    for test in protocols:
        result.curves[test.name] = SweepCurve(protocol=test.name)

    base_rng = ensure_rng(config.seed)
    point_rngs = spawn_rngs(base_rng, len(points))
    for point_index, utilization in enumerate(points):
        sample_rngs = spawn_rngs(point_rngs[point_index], config.samples_per_point)
        accepted: Dict[str, int] = {test.name: 0 for test in protocols}
        evaluated = 0
        for sample_rng in sample_rngs:
            taskset = _generate(utilization, generation_config, sample_rng)
            if taskset is None:
                continue
            evaluated += 1
            for test in protocols:
                if test.test(taskset, platform).schedulable:
                    accepted[test.name] += 1
        evaluated = max(evaluated, 1)
        for test in protocols:
            result.curves[test.name].add_point(
                utilization, accepted[test.name], evaluated
            )
        if progress is not None:
            progress(scenario, utilization, accepted)
    return result


def _generate(utilization, generation_config, rng) -> Optional[TaskSet]:
    """Generate one task set, tolerating (rare) infeasible draws."""
    try:
        return generate_taskset(utilization, generation_config, rng)
    except GenerationError:
        return None


def run_campaign(
    scenarios: Sequence[Scenario],
    protocols: Optional[Sequence[SchedulabilityTest]] = None,
    config: Optional[SweepConfig] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[SweepResult]:
    """Run a sweep for every scenario of a grid."""
    return [
        run_sweep(scenario, protocols=protocols, config=config, progress=progress)
        for scenario in scenarios
    ]


def pairwise_statistics(
    results: Sequence[SweepResult], protocols: Optional[Sequence[str]] = None
) -> PairwiseStatistics:
    """Aggregate dominance/outperformance statistics over sweep results."""
    if not results:
        raise ValueError("no sweep results to aggregate")
    if protocols is None:
        protocols = results[0].protocols
    stats = PairwiseStatistics(protocols=list(protocols))
    for result in results:
        stats.record_scenario(result.curves)
    return stats
