"""Metrics used by the paper's evaluation: acceptance ratio, dominance,
outperformance — plus the bound-tightness statistics of simulate-mode
validation campaigns.

*Acceptance ratio* — fraction of generated task sets deemed schedulable at a
given utilization point.

For one experimental scenario (a full utilization sweep), the paper compares
two algorithms A and B as follows (footnote 1):

* A **outperforms** B if A scheduled more task sets than B over the whole
  sweep;
* A **dominates** B if A's acceptance ratio is at least B's at every tested
  point and strictly higher at some point.

*Bound tightness* — for an analysis-accepted task set that was additionally
*simulated*, the per-task ratio ``observed max response time / analytical
WCRT bound``.  Soundness requires every ratio ``<= 1``; how far below 1 the
distribution sits measures the pessimism of the bound.
:class:`TightnessStats` folds those ratios into a fixed-size summary
(count / sum / min / max / histogram) that merges associatively, so
campaign work units can be folded in any order into per-scenario and
campaign-wide rollups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass
class SweepCurve:
    """Acceptance-ratio curve of one protocol over one utilization sweep."""

    protocol: str
    utilizations: List[float] = field(default_factory=list)
    accepted: List[int] = field(default_factory=list)
    sampled: List[int] = field(default_factory=list)
    #: Per-point count of task-set draws the generator failed to realise.
    #: A point where *every* draw failed has ``sampled == 0`` and an
    #: acceptance ratio of NaN — surfaced as such in tables and figures
    #: instead of fabricating a 0-out-of-1 ratio.
    generation_failures: List[int] = field(default_factory=list)

    def add_point(
        self,
        utilization: float,
        accepted: int,
        sampled: int,
        generation_failures: int = 0,
    ) -> None:
        """Record the outcome of one utilization point."""
        if sampled < 0:
            raise ValueError("sampled must be non-negative")
        if generation_failures < 0:
            raise ValueError("generation_failures must be non-negative")
        if not 0 <= accepted <= sampled:
            raise ValueError("accepted must lie in [0, sampled]")
        self.utilizations.append(float(utilization))
        self.accepted.append(int(accepted))
        self.sampled.append(int(sampled))
        self.generation_failures.append(int(generation_failures))

    @property
    def acceptance_ratios(self) -> List[float]:
        """Per-point acceptance ratios (NaN where no task set was realised)."""
        return [
            a / s if s else float("nan")
            for a, s in zip(self.accepted, self.sampled)
        ]

    @property
    def total_generation_failures(self) -> int:
        """Total failed task-set draws over the sweep."""
        return sum(self.generation_failures)

    @property
    def total_accepted(self) -> int:
        """Total number of task sets accepted over the sweep."""
        return sum(self.accepted)

    @property
    def total_sampled(self) -> int:
        """Total number of task sets evaluated over the sweep."""
        return sum(self.sampled)

    def normalized_utilizations(self, platform_size: int) -> List[float]:
        """Utilization points divided by the platform size (the figure x-axis)."""
        return [u / platform_size for u in self.utilizations]


def outperforms(a: SweepCurve, b: SweepCurve) -> bool:
    """Whether protocol ``a`` scheduled strictly more task sets than ``b``."""
    return a.total_accepted > b.total_accepted


def dominates(a: SweepCurve, b: SweepCurve, tolerance: float = 1e-12) -> bool:
    """Whether ``a``'s curve is never below and somewhere above ``b``'s curve.

    The comparison is defined over the points where both curves realised at
    least one task set; a point with a NaN ratio on either side (see
    :attr:`SweepCurve.generation_failures`) is excluded.  Curves produced by
    one sweep share their task-set draws, so there a NaN is always mutual
    and carries no information about either protocol; when comparing curves
    from unrelated runs, one-sided NaN points are likewise skipped rather
    than counted for or against anyone.
    """
    ratios_a = a.acceptance_ratios
    ratios_b = b.acceptance_ratios
    if len(ratios_a) != len(ratios_b):
        raise ValueError("curves must cover the same utilization points")
    pairs = [
        (ra, rb)
        for ra, rb in zip(ratios_a, ratios_b)
        if not (math.isnan(ra) or math.isnan(rb))
    ]
    never_below = all(ra >= rb - tolerance for ra, rb in pairs)
    somewhere_above = any(ra > rb + tolerance for ra, rb in pairs)
    return never_below and somewhere_above


@dataclass
class PairwiseStatistics:
    """Dominance / outperformance counts over a collection of scenarios."""

    protocols: List[str]
    scenario_count: int = 0
    dominance: Dict[str, Dict[str, int]] = field(default_factory=dict)
    outperformance: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for a in self.protocols:
            self.dominance.setdefault(a, {})
            self.outperformance.setdefault(a, {})
            for b in self.protocols:
                if a == b:
                    continue
                self.dominance[a].setdefault(b, 0)
                self.outperformance[a].setdefault(b, 0)

    def record_scenario(self, curves: Mapping[str, SweepCurve]) -> None:
        """Update the counts with the sweep curves of one scenario."""
        missing = [p for p in self.protocols if p not in curves]
        if missing:
            raise ValueError(f"missing curves for protocols {missing}")
        self.scenario_count += 1
        for a in self.protocols:
            for b in self.protocols:
                if a == b:
                    continue
                if dominates(curves[a], curves[b]):
                    self.dominance[a][b] += 1
                if outperforms(curves[a], curves[b]):
                    self.outperformance[a][b] += 1

    def dominance_fraction(self, a: str, b: str) -> float:
        """Fraction of scenarios where ``a`` dominates ``b``."""
        if self.scenario_count == 0:
            return 0.0
        return self.dominance[a][b] / self.scenario_count

    def outperformance_fraction(self, a: str, b: str) -> float:
        """Fraction of scenarios where ``a`` outperforms ``b``."""
        if self.scenario_count == 0:
            return 0.0
        return self.outperformance[a][b] / self.scenario_count


#: Number of equal-width histogram bins over the ratio range ``[0, 1]``.
TIGHTNESS_BINS = 10


@dataclass
class TightnessStats:
    """Foldable summary of an observed/bound ratio distribution.

    ``histogram[i]`` counts ratios in ``[i/B, (i+1)/B)`` (the last bin is
    closed at 1.0); ratios above ``1 + 1e-9`` — analytical bound
    *violations* — are counted in :attr:`overflows` instead of a bin, so a
    violation can never hide inside the top bin.  ``minimum``/``maximum``
    are ``None`` while the distribution is empty.
    """

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    overflows: int = 0
    histogram: List[int] = field(default_factory=lambda: [0] * TIGHTNESS_BINS)

    def add(self, ratio: float) -> None:
        """Fold one observed/bound ratio into the summary."""
        if ratio < 0:
            raise ValueError(f"ratio must be non-negative, got {ratio}")
        self.count += 1
        self.total += ratio
        if self.minimum is None or ratio < self.minimum:
            self.minimum = ratio
        if self.maximum is None or ratio > self.maximum:
            self.maximum = ratio
        if ratio > 1.0 + 1e-9:
            self.overflows += 1
        else:
            bin_index = min(TIGHTNESS_BINS - 1, int(ratio * TIGHTNESS_BINS))
            self.histogram[bin_index] += 1

    def merge(self, other: "TightnessStats") -> None:
        """Fold another summary into this one (associative, any order)."""
        self.count += other.count
        self.total += other.total
        if other.minimum is not None:
            if self.minimum is None or other.minimum < self.minimum:
                self.minimum = other.minimum
        if other.maximum is not None:
            if self.maximum is None or other.maximum > self.maximum:
                self.maximum = other.maximum
        self.overflows += other.overflows
        self.histogram = [
            mine + theirs for mine, theirs in zip(self.histogram, other.histogram)
        ]

    @property
    def mean(self) -> float:
        """Mean ratio (NaN while the distribution is empty)."""
        return self.total / self.count if self.count else float("nan")

    def to_dict(self) -> dict:
        """JSON-serialisable form (stored in campaign unit records)."""
        return {
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "overflows": self.overflows,
            "histogram": list(self.histogram),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TightnessStats":
        """Rebuild a summary from :meth:`to_dict` output."""
        histogram = [int(v) for v in data["histogram"]]
        if len(histogram) != TIGHTNESS_BINS:
            raise ValueError(
                f"expected {TIGHTNESS_BINS} histogram bins, got {len(histogram)}"
            )
        return cls(
            count=int(data["count"]),
            total=float(data["total"]),
            minimum=None if data["minimum"] is None else float(data["minimum"]),
            maximum=None if data["maximum"] is None else float(data["maximum"]),
            overflows=int(data["overflows"]),
            histogram=histogram,
        )


@dataclass
class ValidationRollup:
    """Per-protocol fold of simulate-mode validation evidence.

    One instance summarises any number of validation runs — a single work
    unit's, a scenario's, or a whole campaign's — and merges associatively
    like :class:`TightnessStats`.  ``simulated`` counts analysis-accepted
    task sets that were run through the simulator; the invariant counters
    and ``deadline_misses`` must stay zero for the analysis to be sound
    (the ratio :attr:`TightnessStats.overflows` is the third soundness
    signal).
    """

    simulated: int = 0
    truncated: int = 0
    rule_failures: int = 0
    mutual_exclusion_violations: int = 0
    processor_overlaps: int = 0
    spin_exclusivity_violations: int = 0
    deadline_misses: int = 0
    jobs_finished: int = 0
    events: int = 0
    ratio: TightnessStats = field(default_factory=TightnessStats)

    def merge(self, other: "ValidationRollup") -> None:
        """Fold another rollup into this one."""
        self.simulated += other.simulated
        self.truncated += other.truncated
        self.rule_failures += other.rule_failures
        self.mutual_exclusion_violations += other.mutual_exclusion_violations
        self.processor_overlaps += other.processor_overlaps
        self.spin_exclusivity_violations += other.spin_exclusivity_violations
        self.deadline_misses += other.deadline_misses
        self.jobs_finished += other.jobs_finished
        self.events += other.events
        self.ratio.merge(other.ratio)

    @property
    def violations(self) -> int:
        """Total soundness violations: invariants, misses, bound overflows."""
        return (
            self.mutual_exclusion_violations
            + self.processor_overlaps
            + self.spin_exclusivity_violations
            + self.deadline_misses
            + self.ratio.overflows
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (stored in campaign unit records)."""
        return {
            "simulated": self.simulated,
            "truncated": self.truncated,
            "rule_failures": self.rule_failures,
            "mutual_exclusion_violations": self.mutual_exclusion_violations,
            "processor_overlaps": self.processor_overlaps,
            "spin_exclusivity_violations": self.spin_exclusivity_violations,
            "deadline_misses": self.deadline_misses,
            "jobs_finished": self.jobs_finished,
            "events": self.events,
            "ratio": self.ratio.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ValidationRollup":
        """Rebuild a rollup from :meth:`to_dict` output."""
        return cls(
            simulated=int(data["simulated"]),
            truncated=int(data["truncated"]),
            rule_failures=int(data["rule_failures"]),
            mutual_exclusion_violations=int(data["mutual_exclusion_violations"]),
            processor_overlaps=int(data["processor_overlaps"]),
            spin_exclusivity_violations=int(data["spin_exclusivity_violations"]),
            deadline_misses=int(data["deadline_misses"]),
            jobs_finished=int(data["jobs_finished"]),
            events=int(data["events"]),
            ratio=TightnessStats.from_dict(data["ratio"]),
        )


def weighted_acceptance(curves: Sequence[SweepCurve]) -> Dict[str, float]:
    """Overall acceptance ratio per protocol, aggregated over several sweeps.

    A protocol whose every task-set draw failed has no realised samples and
    maps to NaN — the same convention as
    :attr:`SweepCurve.acceptance_ratios` — never a fabricated 0.0.
    """
    totals: Dict[str, List[int]] = {}
    for curve in curves:
        accepted, sampled = totals.setdefault(curve.protocol, [0, 0])
        totals[curve.protocol] = [
            accepted + curve.total_accepted,
            sampled + curve.total_sampled,
        ]
    return {
        protocol: (accepted / sampled if sampled else float("nan"))
        for protocol, (accepted, sampled) in totals.items()
    }
