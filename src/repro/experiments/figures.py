"""Reproduction of the paper's Fig. 2 (acceptance-ratio curves).

The figure builders turn sweep results into (i) plain-text tables of the
acceptance-ratio series (one column per protocol), (ii) a simple ASCII plot
for terminal inspection, and (iii) CSV files for external plotting — the
repository deliberately has no plotting dependency.

Series assembly and CSV writing live in :mod:`repro.report.series` (the
aggregation path shared with the grid reports); the helpers here are thin
single-sweep front-ends over it, so a scenario's CSV is byte-identical
whether it was written by :func:`write_series_csv` or by
``python -m repro.campaign report``.

Sweep results can come straight from :func:`~repro.experiments.runner.run_sweep`
or be loaded from an on-disk campaign store (:func:`load_sweep_results`), so
figure regeneration never requires re-running the experiments.

Utilization points where every task-set draw failed carry a NaN acceptance
ratio; the renderers show them as ``n/a`` (table), a gap (ASCII plot), or an
empty cell (CSV), and every row reports its ``generation_failures`` count.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from .runner import SweepResult

#: Plot order used in Fig. 2.
FIGURE_PROTOCOLS = ("DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP", "FED-FP")


def acceptance_series(result: SweepResult, protocols: Optional[Sequence[str]] = None) -> List[dict]:
    """Per-utilization-point acceptance ratios (one dict per point).

    Delegates to :func:`repro.report.series.series_rows`: a sweep without
    matching curves yields ``[]`` under the default selection, and an
    explicit ``protocols`` list is validated (duplicates and protocols the
    sweep has no curve for raise a :class:`ValueError` naming them).
    """
    # Deferred import, NOT hoistable: repro.report builds on this package
    # at module level (see DESIGN.md, "Layering").
    from ..report.series import series_rows

    return series_rows(result, protocols)


def _resolve(result: SweepResult, protocols: Optional[Sequence[str]]) -> List[str]:
    """Resolve/validate the protocol selection (paper's figure order).

    ``report.series`` defaults to :data:`FIGURE_PROTOCOLS` already — this
    wrapper only hides the deferred import for the renderers below.
    """
    from ..report.series import resolve_protocols

    return resolve_protocols(result, protocols)


def _format_ratio(ratio: float, width: int = 10) -> str:
    if math.isnan(ratio):
        return f"{'n/a':>{width}s}"
    return f"{ratio:>{width}.2f}"


def render_series_table(
    result: SweepResult, protocols: Optional[Sequence[str]] = None, title: str = ""
) -> str:
    """Plain-text table of the acceptance-ratio series of one sweep.

    A trailing ``fails`` column appears when any point lost task-set draws to
    generation failures.
    """
    protocols = _resolve(result, protocols)
    rows = acceptance_series(result, protocols)
    show_failures = any(row["generation_failures"] for row in rows)
    header = ["U/m"] + list(protocols) + (["fails"] if show_failures else [])
    lines = [title or f"Scenario {result.scenario.scenario_id}"]
    lines.append("  ".join(f"{h:>10s}" for h in header))
    for row in rows:
        cells = [f"{row['normalized_utilization']:>10.2f}"]
        cells += [_format_ratio(row[p]) for p in protocols]
        if show_failures:
            cells.append(f"{row['generation_failures']:>10d}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_ascii_plot(
    result: SweepResult,
    protocols: Optional[Sequence[str]] = None,
    height: int = 12,
) -> str:
    """Very small ASCII rendering of the acceptance-ratio curves.

    Each protocol is drawn with its own marker; points round to the nearest
    character cell, which is plenty to eyeball the crossovers reported in the
    paper.  Points with no realised task sets are left blank.
    """
    protocols = _resolve(result, protocols)
    markers = "ox+*#@%&"
    rows = acceptance_series(result, protocols)
    width = len(rows)
    grid = [[" "] * width for _ in range(height + 1)]
    for column, row in enumerate(rows):
        for index, protocol in enumerate(protocols):
            if math.isnan(row[protocol]):
                continue
            level = int(round(row[protocol] * height))
            grid[height - level][column] = markers[index % len(markers)]
    lines = [f"acceptance ratio vs normalized utilization — {result.scenario.scenario_id}"]
    for level, row_cells in enumerate(grid):
        label = f"{(height - level) / height:4.2f} |"
        lines.append(label + "".join(row_cells))
    lines.append("      " + "-" * width)
    legend = ", ".join(
        f"{markers[i % len(markers)]}={p}" for i, p in enumerate(protocols)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def series_to_csv(
    result: SweepResult, protocols: Optional[Sequence[str]] = None
) -> str:
    """CSV text of the acceptance-ratio series (for external plotting)."""
    from ..report.series import series_csv

    return series_csv(result, protocols)


def write_series_csv(result: SweepResult, path: str) -> None:
    """Write the acceptance-ratio series of one sweep to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(series_to_csv(result))


def load_sweep_results(
    store_directory: str, allow_partial: bool = True, use_cache: bool = False
) -> List[SweepResult]:
    """Load sweep results from an on-disk campaign store.

    Decouples figure/table regeneration from campaign execution: a store
    produced by ``python -m repro.campaign run`` can be re-rendered at any
    time.  The store is folded by the reporting aggregator
    (:func:`repro.report.aggregate.aggregate_store`); pass
    ``use_cache=True`` to reuse/refresh its on-disk aggregation cache.
    Scenarios whose sweep is incomplete are skipped when ``allow_partial``
    is true, otherwise a ``ValueError`` is raised.
    """
    from ..report.aggregate import aggregate_store

    aggregate = aggregate_store(store_directory, use_cache=use_cache)
    if not allow_partial:
        for report in aggregate.incomplete_reports():
            raise ValueError(
                f"scenario {report.scenario.scenario_id} is incomplete "
                f"({report.points_done}/{report.points_total} units); resume "
                "the campaign or pass allow_partial=True"
            )
    return aggregate.complete_results()
