"""Reproduction of the paper's Fig. 2 (acceptance-ratio curves).

The figure builders turn sweep results into (i) plain-text tables of the
acceptance-ratio series (one column per protocol), (ii) a simple ASCII plot
for terminal inspection, and (iii) CSV files for external plotting — the
repository deliberately has no plotting dependency.
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional, Sequence

from .metrics import SweepCurve
from .runner import SweepResult

#: Plot order used in Fig. 2.
FIGURE_PROTOCOLS = ("DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP", "FED-FP")


def acceptance_series(result: SweepResult, protocols: Optional[Sequence[str]] = None) -> List[dict]:
    """Per-utilization-point acceptance ratios (one dict per point)."""
    protocols = protocols or [p for p in FIGURE_PROTOCOLS if p in result.curves]
    rows: List[dict] = []
    reference = result.curves[protocols[0]]
    m = result.scenario.platform_size
    for index, utilization in enumerate(reference.utilizations):
        row = {
            "utilization": utilization,
            "normalized_utilization": utilization / m,
        }
        for protocol in protocols:
            row[protocol] = result.curves[protocol].acceptance_ratios[index]
        rows.append(row)
    return rows


def render_series_table(
    result: SweepResult, protocols: Optional[Sequence[str]] = None, title: str = ""
) -> str:
    """Plain-text table of the acceptance-ratio series of one sweep."""
    protocols = protocols or [p for p in FIGURE_PROTOCOLS if p in result.curves]
    rows = acceptance_series(result, protocols)
    header = ["U/m"] + list(protocols)
    lines = [title or f"Scenario {result.scenario.scenario_id}"]
    lines.append("  ".join(f"{h:>10s}" for h in header))
    for row in rows:
        cells = [f"{row['normalized_utilization']:>10.2f}"]
        cells += [f"{row[p]:>10.2f}" for p in protocols]
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_ascii_plot(
    result: SweepResult,
    protocols: Optional[Sequence[str]] = None,
    height: int = 12,
) -> str:
    """Very small ASCII rendering of the acceptance-ratio curves.

    Each protocol is drawn with its own marker; points round to the nearest
    character cell, which is plenty to eyeball the crossovers reported in the
    paper.
    """
    protocols = protocols or [p for p in FIGURE_PROTOCOLS if p in result.curves]
    markers = "ox+*#@%&"
    rows = acceptance_series(result, protocols)
    width = len(rows)
    grid = [[" "] * width for _ in range(height + 1)]
    for column, row in enumerate(rows):
        for index, protocol in enumerate(protocols):
            level = int(round(row[protocol] * height))
            grid[height - level][column] = markers[index % len(markers)]
    lines = [f"acceptance ratio vs normalized utilization — {result.scenario.scenario_id}"]
    for level, row_cells in enumerate(grid):
        label = f"{(height - level) / height:4.2f} |"
        lines.append(label + "".join(row_cells))
    lines.append("      " + "-" * width)
    legend = ", ".join(
        f"{markers[i % len(markers)]}={p}" for i, p in enumerate(protocols)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def series_to_csv(
    result: SweepResult, protocols: Optional[Sequence[str]] = None
) -> str:
    """CSV text of the acceptance-ratio series (for external plotting)."""
    protocols = protocols or [p for p in FIGURE_PROTOCOLS if p in result.curves]
    rows = acceptance_series(result, protocols)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer,
        fieldnames=["utilization", "normalized_utilization", *protocols],
        lineterminator="\n",
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_series_csv(result: SweepResult, path: str) -> None:
    """Write the acceptance-ratio series of one sweep to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(series_to_csv(result))
