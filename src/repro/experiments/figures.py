"""Reproduction of the paper's Fig. 2 (acceptance-ratio curves).

The figure builders turn sweep results into (i) plain-text tables of the
acceptance-ratio series (one column per protocol), (ii) a simple ASCII plot
for terminal inspection, and (iii) CSV files for external plotting — the
repository deliberately has no plotting dependency.

Sweep results can come straight from :func:`~repro.experiments.runner.run_sweep`
or be loaded from an on-disk campaign store (:func:`load_sweep_results`), so
figure regeneration never requires re-running the experiments.

Utilization points where every task-set draw failed carry a NaN acceptance
ratio; the renderers show them as ``n/a`` (table), a gap (ASCII plot), or an
empty cell (CSV), and every row reports its ``generation_failures`` count.
"""

from __future__ import annotations

import csv
import io
import math
from typing import List, Optional, Sequence

from .metrics import SweepCurve
from .runner import SweepResult

#: Plot order used in Fig. 2.
FIGURE_PROTOCOLS = ("DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP", "FED-FP")


def acceptance_series(result: SweepResult, protocols: Optional[Sequence[str]] = None) -> List[dict]:
    """Per-utilization-point acceptance ratios (one dict per point).

    All curves of a sweep are built from the same task-set draws (the
    runner/campaign assembler guarantees it), so the shared
    ``generation_failures`` column is read from the first protocol's curve.
    """
    protocols = protocols or [p for p in FIGURE_PROTOCOLS if p in result.curves]
    rows: List[dict] = []
    reference = result.curves[protocols[0]]
    failures = reference.generation_failures
    ratios = {p: result.curves[p].acceptance_ratios for p in protocols}
    m = result.scenario.platform_size
    for index, utilization in enumerate(reference.utilizations):
        row = {
            "utilization": utilization,
            "normalized_utilization": utilization / m,
            "generation_failures": failures[index] if index < len(failures) else 0,
        }
        for protocol in protocols:
            row[protocol] = ratios[protocol][index]
        rows.append(row)
    return rows


def _format_ratio(ratio: float, width: int = 10) -> str:
    if math.isnan(ratio):
        return f"{'n/a':>{width}s}"
    return f"{ratio:>{width}.2f}"


def render_series_table(
    result: SweepResult, protocols: Optional[Sequence[str]] = None, title: str = ""
) -> str:
    """Plain-text table of the acceptance-ratio series of one sweep.

    A trailing ``fails`` column appears when any point lost task-set draws to
    generation failures.
    """
    protocols = protocols or [p for p in FIGURE_PROTOCOLS if p in result.curves]
    rows = acceptance_series(result, protocols)
    show_failures = any(row["generation_failures"] for row in rows)
    header = ["U/m"] + list(protocols) + (["fails"] if show_failures else [])
    lines = [title or f"Scenario {result.scenario.scenario_id}"]
    lines.append("  ".join(f"{h:>10s}" for h in header))
    for row in rows:
        cells = [f"{row['normalized_utilization']:>10.2f}"]
        cells += [_format_ratio(row[p]) for p in protocols]
        if show_failures:
            cells.append(f"{row['generation_failures']:>10d}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_ascii_plot(
    result: SweepResult,
    protocols: Optional[Sequence[str]] = None,
    height: int = 12,
) -> str:
    """Very small ASCII rendering of the acceptance-ratio curves.

    Each protocol is drawn with its own marker; points round to the nearest
    character cell, which is plenty to eyeball the crossovers reported in the
    paper.  Points with no realised task sets are left blank.
    """
    protocols = protocols or [p for p in FIGURE_PROTOCOLS if p in result.curves]
    markers = "ox+*#@%&"
    rows = acceptance_series(result, protocols)
    width = len(rows)
    grid = [[" "] * width for _ in range(height + 1)]
    for column, row in enumerate(rows):
        for index, protocol in enumerate(protocols):
            if math.isnan(row[protocol]):
                continue
            level = int(round(row[protocol] * height))
            grid[height - level][column] = markers[index % len(markers)]
    lines = [f"acceptance ratio vs normalized utilization — {result.scenario.scenario_id}"]
    for level, row_cells in enumerate(grid):
        label = f"{(height - level) / height:4.2f} |"
        lines.append(label + "".join(row_cells))
    lines.append("      " + "-" * width)
    legend = ", ".join(
        f"{markers[i % len(markers)]}={p}" for i, p in enumerate(protocols)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def series_to_csv(
    result: SweepResult, protocols: Optional[Sequence[str]] = None
) -> str:
    """CSV text of the acceptance-ratio series (for external plotting)."""
    protocols = protocols or [p for p in FIGURE_PROTOCOLS if p in result.curves]
    rows = acceptance_series(result, protocols)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer,
        fieldnames=[
            "utilization",
            "normalized_utilization",
            *protocols,
            "generation_failures",
        ],
        lineterminator="\n",
    )
    writer.writeheader()
    for row in rows:
        row = dict(row)
        for protocol in protocols:
            if math.isnan(row[protocol]):
                row[protocol] = ""
        writer.writerow(row)
    return buffer.getvalue()


def write_series_csv(result: SweepResult, path: str) -> None:
    """Write the acceptance-ratio series of one sweep to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(series_to_csv(result))


def load_sweep_results(
    store_directory: str, allow_partial: bool = True
) -> List[SweepResult]:
    """Load sweep results from an on-disk campaign store.

    Decouples figure/table regeneration from campaign execution: a store
    produced by ``python -m repro.campaign run`` can be re-rendered at any
    time.  Scenarios whose sweep is incomplete are skipped when
    ``allow_partial`` is true, otherwise a ``ValueError`` is raised.
    """
    # Deferred import, NOT hoistable: repro.campaign imports this package at
    # module level (see DESIGN.md, "Layering").
    from ..campaign.executor import UnitResult, assemble_campaign
    from ..campaign.planner import plan_from_manifest
    from ..campaign.store import CampaignStore

    store = CampaignStore(store_directory)
    plan = plan_from_manifest(store.read_manifest())
    results = [
        UnitResult.from_record(record) for record in store.load_records().values()
    ]
    return assemble_campaign(plan, results, allow_partial=allow_partial)
