"""Experimental scenario grid (Sec. VII-A).

A *scenario* is one combination of the evaluation parameters:

* platform size ``m ∈ {8, 16, 32}``,
* number of shared resources ``nr`` drawn from ``[2,4]``, ``[4,8]`` or ``[8,16]``,
* average task utilization ``U_avg ∈ {1.5, 2}``,
* resource-access probability ``pr ∈ {0.5, 0.75, 1.0}``,
* per-job request bound ``N_{i,q}`` drawn from ``[1,25]`` or ``[1,50]``,
* critical-section length ``L_{i,q}`` drawn from ``[15,50]`` or ``[50,100]`` µs.

The cross product yields the paper's 216 experimental scenarios.  For every
scenario the harness sweeps the normalized utilization from (almost) 0 to 1
in steps of 0.05 and measures the acceptance ratio of every protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Sequence, Tuple

from ..generation.dag_gen import DagGenerationConfig
from ..generation.resources_gen import ResourceGenerationConfig
from ..generation.taskset_gen import TaskSetGenerationConfig

#: Parameter domains of the paper's evaluation.
PLATFORM_SIZES: Tuple[int, ...] = (8, 16, 32)
RESOURCE_COUNT_RANGES: Tuple[Tuple[int, int], ...] = ((2, 4), (4, 8), (8, 16))
AVERAGE_UTILIZATIONS: Tuple[float, ...] = (1.5, 2.0)
ACCESS_PROBABILITIES: Tuple[float, ...] = (0.5, 0.75, 1.0)
REQUEST_COUNT_RANGES: Tuple[Tuple[int, int], ...] = ((1, 25), (1, 50))
CS_LENGTH_RANGES: Tuple[Tuple[float, float], ...] = ((15.0, 50.0), (50.0, 100.0))

#: Utilization sweep resolution (the paper uses steps of 0.05 * m).
UTILIZATION_STEP_FRACTION = 0.05


@dataclass(frozen=True)
class Scenario:
    """One point of the experimental parameter grid."""

    platform_size: int
    resource_count_range: Tuple[int, int]
    average_utilization: float
    access_probability: float
    request_count_range: Tuple[int, int]
    cs_length_range: Tuple[float, float]
    #: Vertex-count range of the DAG generator.  The paper uses [10, 100];
    #: the default here is the full range, benchmarks may scale it down for
    #: run-time reasons (documented in EXPERIMENTS.md).
    num_vertices_range: Tuple[int, int] = (10, 100)
    edge_probability: float = 0.1

    @property
    def scenario_id(self) -> str:
        """Compact, human-readable identifier of the scenario.

        Covers every field that affects results — including the DAG-shape
        knobs ``num_vertices_range`` and ``edge_probability`` — so distinct
        scenarios never share an id (campaign stores key work units by it).
        """
        return (
            f"m{self.platform_size}"
            f"-nr{self.resource_count_range[0]}_{self.resource_count_range[1]}"
            f"-U{self.average_utilization:g}"
            f"-pr{self.access_probability:g}"
            f"-N{self.request_count_range[0]}_{self.request_count_range[1]}"
            f"-L{self.cs_length_range[0]:g}_{self.cs_length_range[1]:g}"
            f"-v{self.num_vertices_range[0]}_{self.num_vertices_range[1]}"
            f"-e{self.edge_probability:g}"
        )

    def generation_config(self) -> TaskSetGenerationConfig:
        """Build the task-set generation configuration for this scenario."""
        return TaskSetGenerationConfig(
            average_utilization=self.average_utilization,
            dag=DagGenerationConfig(
                num_vertices_range=self.num_vertices_range,
                edge_probability=self.edge_probability,
            ),
            resources=ResourceGenerationConfig(
                num_resources_range=self.resource_count_range,
                access_probability=self.access_probability,
                request_count_range=self.request_count_range,
                cs_length_range=self.cs_length_range,
            ),
        )

    def utilization_points(
        self, step_fraction: float = UTILIZATION_STEP_FRACTION
    ) -> List[float]:
        """Total-utilization sweep points ``step, 2*step, ..., m``."""
        if step_fraction <= 0:
            raise ValueError(
                f"step fraction must be positive, got {step_fraction}"
            )
        m = self.platform_size
        points: List[float] = []
        step = step_fraction * m
        value = step
        while value <= m + 1e-9:
            points.append(min(value, float(m)))
            value += step
        return points

    def with_vertices(self, num_vertices_range: Tuple[int, int]) -> "Scenario":
        """Copy of the scenario with a different DAG vertex-count range."""
        return replace(self, num_vertices_range=num_vertices_range)


def full_grid(
    num_vertices_range: Tuple[int, int] = (10, 100),
) -> List[Scenario]:
    """The paper's full 216-scenario grid."""
    scenarios: List[Scenario] = []
    for m in PLATFORM_SIZES:
        for nr in RESOURCE_COUNT_RANGES:
            for uavg in AVERAGE_UTILIZATIONS:
                for pr in ACCESS_PROBABILITIES:
                    for nrange in REQUEST_COUNT_RANGES:
                        for lrange in CS_LENGTH_RANGES:
                            scenarios.append(
                                Scenario(
                                    platform_size=m,
                                    resource_count_range=nr,
                                    average_utilization=uavg,
                                    access_probability=pr,
                                    request_count_range=nrange,
                                    cs_length_range=lrange,
                                    num_vertices_range=num_vertices_range,
                                )
                            )
    return scenarios


def figure2_scenarios(
    num_vertices_range: Tuple[int, int] = (10, 100),
) -> dict:
    """The four scenarios plotted in Fig. 2 of the paper.

    Fig. 2 uses ``N ∈ [1, 50]`` and ``L ∈ [50, 100]`` µs with

    * (a) ``U_avg = 1.5``, ``m = 16``, ``nr ∈ [4, 8]``, ``pr = 0.5``;
    * (b) ``U_avg = 1.5``, ``m = 32``, ``nr ∈ [8, 16]``, ``pr = 1.0``;
    * (c) ``U_avg = 2``,   ``m = 16``, ``nr ∈ [4, 8]``, ``pr = 0.5``;
    * (d) ``U_avg = 2``,   ``m = 32``, ``nr ∈ [8, 16]``, ``pr = 1.0``.
    """
    common = dict(
        request_count_range=(1, 50),
        cs_length_range=(50.0, 100.0),
        num_vertices_range=num_vertices_range,
    )
    return {
        "a": Scenario(
            platform_size=16,
            resource_count_range=(4, 8),
            average_utilization=1.5,
            access_probability=0.5,
            **common,
        ),
        "b": Scenario(
            platform_size=32,
            resource_count_range=(8, 16),
            average_utilization=1.5,
            access_probability=1.0,
            **common,
        ),
        "c": Scenario(
            platform_size=16,
            resource_count_range=(4, 8),
            average_utilization=2.0,
            access_probability=0.5,
            **common,
        ),
        "d": Scenario(
            platform_size=32,
            resource_count_range=(8, 16),
            average_utilization=2.0,
            access_probability=1.0,
            **common,
        ),
    }


def iter_grid(scenarios: Sequence[Scenario]) -> Iterator[Scenario]:
    """Yield scenarios (convenience wrapper for symmetry with other iterators)."""
    yield from scenarios
