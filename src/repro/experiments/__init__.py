"""Schedulability experiment harness (Sec. VII): sweeps, figures, tables."""

from .figures import (
    FIGURE_PROTOCOLS,
    acceptance_series,
    load_sweep_results,
    render_ascii_plot,
    render_series_table,
    series_to_csv,
    write_series_csv,
)
from .metrics import (
    PairwiseStatistics,
    SweepCurve,
    dominates,
    outperforms,
    weighted_acceptance,
)
from .runner import (
    SweepConfig,
    SweepResult,
    pairwise_statistics,
    run_campaign,
    run_sweep,
)
from .scenarios import (
    ACCESS_PROBABILITIES,
    AVERAGE_UTILIZATIONS,
    CS_LENGTH_RANGES,
    PLATFORM_SIZES,
    REQUEST_COUNT_RANGES,
    RESOURCE_COUNT_RANGES,
    Scenario,
    figure2_scenarios,
    full_grid,
)
from .tables import (
    TABLE_PROTOCOLS,
    load_pairwise_statistics,
    render_dominance_table,
    render_outperformance_table,
    table_rows,
)

__all__ = [
    "FIGURE_PROTOCOLS",
    "acceptance_series",
    "load_sweep_results",
    "load_pairwise_statistics",
    "render_ascii_plot",
    "render_series_table",
    "series_to_csv",
    "write_series_csv",
    "PairwiseStatistics",
    "SweepCurve",
    "dominates",
    "outperforms",
    "weighted_acceptance",
    "SweepConfig",
    "SweepResult",
    "pairwise_statistics",
    "run_campaign",
    "run_sweep",
    "ACCESS_PROBABILITIES",
    "AVERAGE_UTILIZATIONS",
    "CS_LENGTH_RANGES",
    "PLATFORM_SIZES",
    "REQUEST_COUNT_RANGES",
    "RESOURCE_COUNT_RANGES",
    "Scenario",
    "figure2_scenarios",
    "full_grid",
    "TABLE_PROTOCOLS",
    "render_dominance_table",
    "render_outperformance_table",
    "table_rows",
]
