"""``repro.obs`` — structured telemetry, events, and logging for campaigns.

The observability layer is strictly **out-of-band**: it observes the
campaign stack (solver convergence, cache effectiveness, per-phase timing,
simulator budgets) without ever touching result bytes, config hashes, or
store format versions.  Four stdlib-only core modules:

* :mod:`repro.obs.events` — typed frozen event dataclasses (one class per
  event) with ``to_record``/``from_record`` and a name registry;
* :mod:`repro.obs.telemetry` — associatively mergeable counters, timers
  (``span()`` perf_counter context managers), and bucketed histograms
  behind a near-zero-cost active-session guard;
* :mod:`repro.obs.sink` — the append-only, torn-line-tolerant
  ``events.jsonl`` writer/reader with monotonic sequence numbers;
* :mod:`repro.obs.log` — ``repro.*`` module loggers and the plain/JSON
  stream handler behind the CLI's ``--log-level``/``--log-json`` flags.

:mod:`repro.obs.profile` (imported lazily — it depends on the campaign
store) turns a store's ``results.jsonl`` + ``events.jsonl`` into the
compute profile rendered by ``python -m repro.campaign profile`` and the
report bundle's "Compute profile" section.

See ``docs/observability.md`` for the event taxonomy and walkthroughs.
"""

from .events import (
    EVENT_TYPES,
    CacheStats,
    CampaignFinished,
    CampaignStarted,
    Event,
    JobAdmitted,
    JobFinished,
    ServiceStarted,
    SimTruncated,
    SolveStats,
    UnitFinished,
    UnitStarted,
    UnitTelemetry,
    event_from_record,
)
from .log import LOG_LEVELS, configure_logging, get_logger
from .sink import EVENTS_NAME, EventSink, events_path, iter_event_records, read_events
from .telemetry import ScalarSolveStats, Telemetry, TimerStats, active, session

__all__ = [
    "EVENT_TYPES",
    "EVENTS_NAME",
    "LOG_LEVELS",
    "CacheStats",
    "CampaignFinished",
    "CampaignStarted",
    "Event",
    "EventSink",
    "JobAdmitted",
    "JobFinished",
    "ScalarSolveStats",
    "ServiceStarted",
    "SimTruncated",
    "SolveStats",
    "Telemetry",
    "TimerStats",
    "UnitFinished",
    "UnitStarted",
    "UnitTelemetry",
    "active",
    "configure_logging",
    "event_from_record",
    "events_path",
    "get_logger",
    "iter_event_records",
    "read_events",
    "session",
]
