"""Structured logging for the ``repro.*`` module loggers.

Every subsystem logs through a module logger named after its import path
(``logging.getLogger("repro.campaign.cli")`` etc., via :func:`get_logger`),
and :func:`configure_logging` attaches exactly one handler to the shared
``repro`` root — either a plain human-readable stream handler or a
JSON-lines handler (one ``{"ts", "level", "logger", "message"}`` object
per line), selected by the campaign CLI's ``--log-level`` / ``--log-json``
flags.  Library code never configures handlers itself: embedding
applications keep full control of the ``repro`` logger tree, and with no
configuration at all Python's default ``lastResort`` behaviour applies.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional, TextIO

#: Log level names accepted by :func:`configure_logging` / ``--log-level``.
LOG_LEVELS = ("debug", "info", "warning", "error")


def get_logger(name: str) -> logging.Logger:
    """The ``repro.*`` module logger for ``name``.

    ``name`` may be a full module path (``repro.campaign.cli``) or a
    suffix (``campaign.cli``); both resolve under the shared ``repro``
    logging tree so one :func:`configure_logging` call covers everything.
    """
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


class JsonLinesFormatter(logging.Formatter):
    """Format log records as one JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as a compact, sorted-key JSON line."""
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def configure_logging(
    level: str = "info",
    json_lines: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger tree for CLI use (idempotent).

    Replaces any handlers previously attached to the ``repro`` root with a
    single stream handler on ``stream`` (default: stderr, keeping stdout
    clean for command output), formatted as plain messages or JSON lines.
    Returns the configured root logger.
    """
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {', '.join(LOG_LEVELS)}"
        )
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    return root
