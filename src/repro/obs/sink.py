"""Append-only event sink: ``events.jsonl`` next to ``results.jsonl``.

The sink persists :mod:`repro.obs.events` values as JSON lines with the
same torn-line tolerance as the campaign result store — and, crucially,
**strictly out-of-band**: it writes a separate file, never touches
``results.jsonl`` bytes, config hashes, or the store format version, so
enabling or disabling telemetry cannot perturb the bit-identical parallel
determinism of campaign results.

Every appended record carries an *envelope*: a monotonic ``seq`` number
(resumed from the existing file across interrupted runs, so a tailing
consumer can detect gaps and restarts) and a wall-clock ``ts``.  Unlike
result checkpoints, event lines are flushed but **not fsynced** — losing a
tail of observability data in a crash is acceptable; doubling the store's
fsync traffic is not.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterator, List, Optional, Tuple

from .events import Event, event_from_record

#: File name of the event stream inside a campaign store directory.
EVENTS_NAME = "events.jsonl"


def events_path(directory: str) -> str:
    """Path of the event stream file inside ``directory``."""
    return os.path.join(directory, EVENTS_NAME)


def iter_event_records(
    path: str, start_offset: int = 0
) -> Iterator[Tuple[dict, int]]:
    """Stream event records from ``path`` starting at ``start_offset``.

    Mirrors :meth:`repro.campaign.store.CampaignStore.iter_records`:
    yields ``(record, end_offset)`` pairs for every *complete* line, skips
    malformed complete lines, and never advances past a torn trailing line
    (a killed writer's partial write), so incremental tail readers can
    resume from the last yielded offset.
    """
    if not os.path.isfile(path):
        return
    with open(path, "rb") as handle:
        handle.seek(start_offset)
        offset = start_offset
        for raw_line in handle:
            if not raw_line.endswith(b"\n"):
                return
            offset += len(raw_line)
            line = raw_line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("type"):
                yield record, offset


def read_events(path: str) -> List[Event]:
    """All typed events of an event stream (unknown types skipped)."""
    events: List[Event] = []
    for record, _ in iter_event_records(path):
        try:
            event = event_from_record(record)
        except TypeError:
            continue
        if event is not None:
            events.append(event)
    return events


def _last_seq(path: str) -> int:
    """Highest ``seq`` in an existing event stream (-1 when none)."""
    last = -1
    for record, _ in iter_event_records(path):
        seq = record.get("seq")
        if isinstance(seq, int) and seq > last:
            last = seq
    return last


class EventSink:
    """Append-only writer of one ``events.jsonl`` stream.

    Keeps the file handle open across emits (events are per-unit, not
    per-sample, but a campaign can finish hundreds of thousands of units);
    heals a torn trailing line left by a killed writer before the first
    append, exactly like the result store.  Usable as a context manager.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self.path = events_path(self.directory)
        self._handle = None
        self._seq = _last_seq(self.path) + 1

    @property
    def next_seq(self) -> int:
        """Sequence number the next emitted event will carry."""
        return self._seq

    def _ensure_handle(self):
        """Open (and torn-line-heal) the stream on first use."""
        if self._handle is None:
            os.makedirs(self.directory, exist_ok=True)
            handle = open(self.path, "a+b")
            handle.seek(0, os.SEEK_END)
            if handle.tell():
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    # Heal a torn trailing line: without the newline the next
                    # record would merge into the partial line and readers
                    # would silently skip both.
                    handle.write(b"\n")
            self._handle = handle
        return self._handle

    def emit(self, event: Event) -> int:
        """Append one event (sequence-stamped, flushed); returns its ``seq``."""
        record = dict(event.to_record())
        record["seq"] = self._seq
        record["ts"] = round(time.time(), 6)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        handle = self._ensure_handle()
        handle.write(line.encode("utf-8") + b"\n")
        handle.flush()
        seq = self._seq
        self._seq += 1
        return seq

    def close(self) -> None:
        """Close the underlying file handle (a later emit reopens it)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventSink":
        """Context-manager entry: the sink itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the stream."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventSink({self.directory!r})"
