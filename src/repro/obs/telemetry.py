"""Near-zero-cost counters, histograms, and span timers for the hot paths.

One :class:`Telemetry` instance aggregates everything a work unit (or a
whole campaign) observes about *where compute goes*: monotonically
increasing **counters** (solver convergence tallies, cache hits, simulator
events), **timers** fed by :meth:`Telemetry.span` context managers
(``perf_counter`` wall-clock per phase and per protocol), and bucketed
**histograms** (solver iteration counts).  All three merge associatively
via :meth:`Telemetry.merge`, so process-pool workers aggregate per work
unit and the parent folds the per-unit snapshots in any grouping without
changing the totals.

Instrumented library code never takes a ``Telemetry`` parameter.  It reads
the module-level *active session* instead::

    tel = telemetry.active()
    if tel is not None:          # one global load + identity check when off
        tel.count("solver.scalar.converged")

With no session active (the default) the cost of an instrumentation point
is a single global read and an ``is not None`` check — which is what keeps
the kernel hot paths within the ≤2 % overhead budget (measured in
``BENCH_PR6.json``) and lets telemetry stay strictly out-of-band: nothing
here ever touches ``results.jsonl`` bytes, config hashes, or the store
format version.

Sessions are process-local plain globals (campaign workers are separate
processes, each enabling its own session); no thread synchronisation is
attempted.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional


@dataclass
class TimerStats:
    """Associatively mergeable summary of one timer's observations."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one observed duration (seconds) into the summary."""
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds

    def merge(self, other: "TimerStats") -> None:
        """Fold another timer summary into this one (associative)."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    def to_dict(self) -> dict:
        """JSON-serialisable form (``min`` is ``None`` while empty)."""
        return {
            "count": self.count,
            "total": round(self.total, 9),
            "min": None if self.count == 0 else round(self.minimum, 9),
            "max": round(self.maximum, 9),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TimerStats":
        """Rebuild a summary from :meth:`to_dict` output."""
        return cls(
            count=int(data["count"]),
            total=float(data["total"]),
            minimum=math.inf if data.get("min") is None else float(data["min"]),
            maximum=float(data["max"]),
        )


def bucket_label(value: int) -> str:
    """Power-of-two histogram bucket label of a non-negative integer.

    ``0`` → ``"0"``, ``1`` → ``"1"``, ``2`` → ``"2"``, then doubling ranges
    ``"3-4"``, ``"5-8"``, ``"9-16"``, ... — coarse enough that fixed-seed
    campaigns produce identical histograms across machines, fine enough to
    expose slowly-converging fixed points.
    """
    if value <= 0:
        return "0"
    if value <= 2:
        return str(value)
    low, high = 3, 4
    while value > high:
        low, high = high + 1, high * 2
    return f"{low}-{high}"


def bucket_index(value: int) -> int:
    """Array index of :func:`bucket_label`'s bucket, via ``int.bit_length``.

    ``0`` → 0, ``1`` → 1, ``2`` → 2, ``3-4`` → 3, ``5-8`` → 4, ... — the
    constant-time equivalent of the label loop, used by the hot-path
    accumulators that bucket into a preallocated list instead of a dict.
    """
    return (value - 1).bit_length() + 1 if value > 0 else 0


def bucket_label_from_index(index: int) -> str:
    """The :func:`bucket_label` string for a :func:`bucket_index` slot."""
    if index <= 2:
        return str(max(index, 0))
    return f"{2 ** (index - 2) + 1}-{2 ** (index - 1)}"


class ScalarSolveStats:
    """Hot-path accumulator for the scalar fixed-point solver.

    The scalar solver runs O(100) times per schedulability test, so its
    instrumentation cannot afford the generic :meth:`Telemetry.count` /
    :meth:`Telemetry.record` API (dict lookups, string keys, method calls
    — ~1µs per solve, blowing the ≤2 % kernel overhead budget).  Instead
    the solver appends one encoded integer
    (``iterations << 2 | outcome_code``, codes below) to :attr:`raw`
    through a preloaded bound ``list.append`` (see the ``_SOLVE_APPEND``
    session hook below) — about 100 ns per solve, and plain ``int``s are
    invisible to the cyclic GC, so a long session adds no collector
    pressure.  :meth:`Telemetry.merge` / :meth:`Telemetry.to_dict` fold
    the raw values into the ordinary counters/histograms lazily, so every
    downstream consumer still sees plain ``solver.scalar.*`` counters and
    the ``solver.iterations`` histogram.
    """

    __slots__ = ("raw",)

    #: Outcome codes in the low two bits of a raw entry.
    CONVERGED_CODE = 0
    DIVERGED_CODE = 1
    NO_CONVERGENCE_CODE = 2

    def __init__(self) -> None:
        #: Unfolded ``iterations << 2 | outcome_code`` ints, one per solve.
        self.raw: list = []

    def add(self, outcome: str, iterations: int) -> None:
        """Record one solve (``outcome`` ∈ converged/diverged/no_convergence).

        Equivalent to what the solver does through the session hook — one
        encoded int appended to :attr:`raw`, tallied only when folded.
        """
        if outcome == "converged":
            code = self.CONVERGED_CODE
        elif outcome == "diverged":
            code = self.DIVERGED_CODE
        else:
            code = self.NO_CONVERGENCE_CODE
        self.raw.append(iterations << 2 | code)

    def fold_into(self, telemetry: "Telemetry") -> None:
        """Tally the raw solves into generic counters/histograms.

        Emits the same keys the generic API would have produced
        (``solver.scalar.calls``/``.converged``/``.diverged``/
        ``.no_convergence``/``.iterations`` counters and the
        ``solver.iterations`` histogram) and drains :attr:`raw` in place
        (preserving any live bound ``append``), so folding is idempotent.
        """
        if not self.raw:
            return
        converged = diverged = no_convergence = iterations = 0
        buckets = [0] * 66  # one slot per bucket_index; covers 64-bit counts
        for entry in self.raw:
            count = entry >> 2
            iterations += count
            buckets[(count - 1).bit_length() + 1 if count > 0 else 0] += 1
            code = entry & 3
            if code == self.CONVERGED_CODE:
                converged += 1
            elif code == self.DIVERGED_CODE:
                diverged += 1
            else:
                no_convergence += 1
        del self.raw[:]
        telemetry.count("solver.scalar.calls", converged + diverged + no_convergence)
        if converged:
            telemetry.count("solver.scalar.converged", converged)
        if diverged:
            telemetry.count("solver.scalar.diverged", diverged)
        if no_convergence:
            telemetry.count("solver.scalar.no_convergence", no_convergence)
        telemetry.count("solver.scalar.iterations", iterations)
        histogram = telemetry.histograms.setdefault("solver.iterations", {})
        for index, count in enumerate(buckets):
            if count:
                label = bucket_label_from_index(index)
                histogram[label] = histogram.get(label, 0) + count


def bucket_sort_key(label: str) -> float:
    """Numeric sort key of a :func:`bucket_label` (lower bucket edge)."""
    head = label.split("-", 1)[0]
    try:
        return float(head)
    except ValueError:
        return math.inf


class Telemetry:
    """One mergeable bundle of counters, timers, and histograms.

    ``scalar_solves`` is the :class:`ScalarSolveStats` fast-path slot the
    solver increments directly; it is folded into the generic
    counters/histograms transparently whenever the bundle is snapshotted,
    merged, or truth-tested, so consumers never see it as separate state.
    """

    __slots__ = ("counters", "timers", "histograms", "scalar_solves")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, TimerStats] = {}
        self.histograms: Dict[str, Dict[str, int]] = {}
        self.scalar_solves = ScalarSolveStats()

    def __bool__(self) -> bool:
        """Whether anything has been recorded yet."""
        self.scalar_solves.fold_into(self)
        return bool(self.counters or self.timers or self.histograms)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        """Fold one duration (seconds) into the timer ``name``."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = TimerStats()
        timer.add(seconds)

    def record(self, name: str, value: int) -> None:
        """Count ``value`` into the bucketed histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = {}
        label = bucket_label(value)
        histogram[label] = histogram.get(label, 0) + 1

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into the timer ``name`` (perf_counter)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    # ------------------------------------------------------------------ #
    # Merging and (de)serialisation
    # ------------------------------------------------------------------ #
    def merge(self, other: "Telemetry") -> None:
        """Fold another telemetry bundle into this one.

        The merge is associative and commutative for counters and
        histograms (integer sums) and associative for timers, so per-unit
        worker snapshots can be folded in any grouping.
        """
        self.scalar_solves.fold_into(self)
        other.scalar_solves.fold_into(other)
        for name, value in other.counters.items():
            self.count(name, value)
        for name, timer in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                mine = self.timers[name] = TimerStats()
            mine.merge(timer)
        for name, histogram in other.histograms.items():
            mine_hist = self.histograms.setdefault(name, {})
            for label, count in histogram.items():
                mine_hist[label] = mine_hist.get(label, 0) + count

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (keys sorted for determinism)."""
        self.scalar_solves.fold_into(self)
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "timers": {
                k: self.timers[k].to_dict() for k in sorted(self.timers)
            },
            "histograms": {
                k: {
                    label: self.histograms[k][label]
                    for label in sorted(
                        self.histograms[k], key=bucket_sort_key
                    )
                }
                for k in sorted(self.histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Telemetry":
        """Rebuild a telemetry bundle from :meth:`to_dict` output."""
        telemetry = cls()
        for name, value in dict(data.get("counters") or {}).items():
            telemetry.counters[str(name)] = int(value)
        for name, timer in dict(data.get("timers") or {}).items():
            telemetry.timers[str(name)] = TimerStats.from_dict(timer)
        for name, histogram in dict(data.get("histograms") or {}).items():
            telemetry.histograms[str(name)] = {
                str(label): int(count) for label, count in histogram.items()
            }
        return telemetry


# --------------------------------------------------------------------------- #
# The active session
# --------------------------------------------------------------------------- #
_ACTIVE: Optional[Telemetry] = None

#: The active bundle's ``scalar_solves.raw.append``, preloaded so the scalar
#: solver's per-call cost is one module-attribute read plus one ``append``
#: (:class:`ScalarSolveStats` folding restores the tallies lazily).  ``None``
#: whenever no session is active; managed exclusively by :func:`session`.
_SOLVE_APPEND = None


def active() -> Optional[Telemetry]:
    """The currently active :class:`Telemetry`, or ``None`` when disabled.

    Instrumentation points call this once, keep the local, and skip all
    recording when it is ``None`` — the disabled fast path costs one global
    read.
    """
    return _ACTIVE


@contextmanager
def session(telemetry: Optional[Telemetry] = None) -> Iterator[Telemetry]:
    """Activate ``telemetry`` (or a fresh bundle) for the ``with`` block.

    Sessions nest: the previous active bundle is restored on exit, so a
    work unit can aggregate into its own bundle while an outer benchmark
    session keeps collecting afterwards.
    """
    global _ACTIVE, _SOLVE_APPEND
    bundle = telemetry if telemetry is not None else Telemetry()
    previous = _ACTIVE
    previous_append = _SOLVE_APPEND
    _ACTIVE = bundle
    _SOLVE_APPEND = bundle.scalar_solves.raw.append
    try:
        yield bundle
    finally:
        _ACTIVE = previous
        _SOLVE_APPEND = previous_append


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` of the active session (no-op when off)."""
    tel = _ACTIVE
    if tel is not None:
        tel.count(name, n)


def observe(name: str, seconds: float) -> None:
    """Fold a duration into timer ``name`` of the active session (no-op when off)."""
    tel = _ACTIVE
    if tel is not None:
        tel.observe(name, seconds)


def record(name: str, value: int) -> None:
    """Count ``value`` into histogram ``name`` of the active session (no-op when off)."""
    tel = _ACTIVE
    if tel is not None:
        tel.record(name, value)
