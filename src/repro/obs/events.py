"""Typed, frozen campaign events — one dataclass per event type.

Following the named-types idiom (one frozen class per message, a registry
keyed by a stable type name), every observable campaign occurrence is its
own dataclass: :class:`CampaignStarted`, :class:`UnitStarted`,
:class:`UnitFinished`, :class:`UnitTelemetry`, :class:`SolveStats`,
:class:`SimTruncated`, :class:`CacheStats`, :class:`CampaignFinished`,
the fault-tolerance trio :class:`PoolCrashed`, :class:`UnitRetried`,
:class:`UnitQuarantined`, and the service-daemon trio
:class:`ServiceStarted`, :class:`JobAdmitted`, :class:`JobFinished`.
Events are pure immutable payloads; the *envelope* — monotonic sequence
number and wall-clock timestamp — is stamped by
:class:`repro.obs.sink.EventSink` when a record is appended to
``events.jsonl``, so event values stay hashable, comparable, and trivially
constructible in tests.

``to_record()`` serialises an event into a JSON-safe dict carrying its
``type`` name; :func:`event_from_record` dispatches on that name through
:data:`EVENT_TYPES` and rebuilds the typed value, ignoring envelope keys
and unknown fields (forward compatibility: newer writers may add fields).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Type

#: Registry of event type name → event class, populated by
#: :func:`_register`; the single source :func:`event_from_record` and the
#: docs' event taxonomy derive from.
EVENT_TYPES: Dict[str, Type["Event"]] = {}


def _register(cls: Type["Event"]) -> Type["Event"]:
    """Class decorator adding an event type to :data:`EVENT_TYPES`."""
    if cls.TYPE in EVENT_TYPES:  # pragma: no cover - import-time invariant
        raise ValueError(f"duplicate event type name {cls.TYPE!r}")
    EVENT_TYPES[cls.TYPE] = cls
    return cls


class Event:
    """Base class of every campaign event (payload only, no envelope).

    Subclasses are frozen dataclasses with a ``TYPE`` class attribute (the
    stable wire name).  The base class supplies the generic
    :meth:`to_record` / :meth:`from_record` pair used by the sink and the
    profile reader.
    """

    #: Stable wire name of the event type (overridden per subclass).
    TYPE = ""

    def to_record(self) -> dict:
        """JSON-serialisable record: ``{"type": TYPE, **payload}``."""
        record: Dict[str, Any] = {"type": self.TYPE}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, tuple):
                value = list(value)
            record[field.name] = value
        return record

    @classmethod
    def from_record(cls, record: Mapping) -> "Event":
        """Rebuild an event from :meth:`to_record` output.

        Envelope keys (``seq``, ``ts``, ``type``) and unknown fields are
        ignored; missing optional fields keep their defaults.  Raises
        ``TypeError`` when a required payload field is absent.
        """
        names = {field.name for field in dataclasses.fields(cls)}
        payload = {}
        for name in names:
            if name in record:
                value = record[name]
                if isinstance(value, list):
                    value = tuple(value)
                payload[name] = value
        return cls(**payload)


@_register
@dataclass(frozen=True)
class CampaignStarted(Event):
    """A campaign run (fresh or resumed) began executing work units."""

    TYPE = "campaign_started"

    config_hash: str
    mode: str
    total_units: int
    workers: int
    protocols: Tuple[str, ...] = ()


@_register
@dataclass(frozen=True)
class UnitStarted(Event):
    """A work unit was dispatched for execution (in-process or to a worker)."""

    TYPE = "unit_started"

    unit_id: str


@_register
@dataclass(frozen=True)
class UnitFinished(Event):
    """A work unit completed and was checkpointed into the store."""

    TYPE = "unit_finished"

    unit_id: str
    scenario_id: str
    point_index: int
    utilization: float
    elapsed_seconds: float
    evaluated: int
    generation_failures: int


@_register
@dataclass(frozen=True)
class UnitTelemetry(Event):
    """The full per-unit telemetry snapshot of a finished work unit.

    ``telemetry`` is a :meth:`repro.obs.telemetry.Telemetry.to_dict`
    snapshot aggregated inside the worker; the profile reader merges these
    associatively across units.  Dict payloads are compared by identity in
    the frozen dataclass sense only — events of this type are not hashable.
    """

    TYPE = "unit_telemetry"

    unit_id: str
    telemetry: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "telemetry", dict(self.telemetry))


@_register
@dataclass(frozen=True)
class SolveStats(Event):
    """Fixed-point solver tallies of one finished work unit."""

    TYPE = "solve_stats"

    unit_id: str
    scalar_calls: int = 0
    batched_calls: int = 0
    converged: int = 0
    diverged: int = 0
    no_convergence: int = 0
    iterations: int = 0


@_register
@dataclass(frozen=True)
class SimTruncated(Event):
    """At least one simulation run of a work unit hit a budget and truncated."""

    TYPE = "sim_truncated"

    unit_id: str
    truncated: int
    simulated: int
    events: int = 0


@_register
@dataclass(frozen=True)
class CacheStats(Event):
    """A cache reported its effectiveness (e.g. the report aggregator's)."""

    TYPE = "cache_stats"

    cache: str
    hit: bool
    units_from_cache: int = 0
    units_folded: int = 0
    miss_reason: Optional[str] = None


@_register
@dataclass(frozen=True)
class PoolCrashed(Event):
    """The worker pool broke (a worker was killed) and is being respawned.

    ``respawn`` counts consecutive pool losses without an intervening
    completed chunk; ``backoff_seconds`` is the capped exponential pause
    taken before the respawn; ``inflight_units`` is how many units were
    requeued from the futures that died with the pool.
    """

    TYPE = "pool_crashed"

    respawn: int
    backoff_seconds: float
    inflight_units: int


@_register
@dataclass(frozen=True)
class UnitRetried(Event):
    """A failed work unit was requeued for another execution attempt."""

    TYPE = "unit_retried"

    unit_id: str
    attempt: int
    error_kind: str


@_register
@dataclass(frozen=True)
class UnitQuarantined(Event):
    """A work unit exhausted its attempts and was quarantined.

    The unit's typed error record lands in the store's
    ``quarantine.jsonl`` sibling file; this event mirrors it into the
    observability stream so ``status``/``profile`` surface the failure
    without re-reading the quarantine file.
    """

    TYPE = "unit_quarantined"

    unit_id: str
    error_kind: str
    attempts: int
    error_message: str = ""


@_register
@dataclass(frozen=True)
class ServiceStarted(Event):
    """The analysis service daemon began accepting connections."""

    TYPE = "service_started"

    host: str
    port: int
    workers: int
    data_dir: str = ""


@_register
@dataclass(frozen=True)
class JobAdmitted(Event):
    """The service admitted one submitted job (query or campaign).

    ``coalesced`` marks a submission folded into an identical in-flight
    job (one execution serves several clients); ``cached`` marks a repeat
    served straight from the result cache without any execution.
    ``queue_depth`` is the admission-queue depth observed at submission —
    the signal the coalescing batcher exists to exploit.
    """

    TYPE = "job_admitted"

    job_id: str
    kind: str
    coalesced: bool = False
    cached: bool = False
    queue_depth: int = 0


@_register
@dataclass(frozen=True)
class JobFinished(Event):
    """A service job reached a terminal state (``done`` or ``failed``)."""

    TYPE = "job_finished"

    job_id: str
    state: str
    exit_code: int = 0
    elapsed_seconds: float = 0.0


@_register
@dataclass(frozen=True)
class CampaignFinished(Event):
    """A campaign run finished (completely or out of units/budget)."""

    TYPE = "campaign_finished"

    completed: int
    total: int
    elapsed_seconds: float


def event_from_record(record: Mapping) -> Optional[Event]:
    """Rebuild the typed event of one ``events.jsonl`` record.

    Returns ``None`` for unknown type names (a newer writer's events are
    skipped, never fatal) and raises ``TypeError`` for records missing
    required payload fields of a known type.
    """
    cls = EVENT_TYPES.get(record.get("type", ""))
    if cls is None:
        return None
    return cls.from_record(record)
