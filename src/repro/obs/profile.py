"""Compute profiling: turn a campaign store into "where did the time go".

This is the one :mod:`repro.obs` module that is **not** stdlib-only — it
reads the campaign store (``results.jsonl`` for per-unit wall-clock and
identity, ``events.jsonl`` for the per-unit telemetry snapshots) and is
therefore imported lazily by its consumers (``python -m repro.campaign
profile`` and the report bundle's "Compute profile" section) instead of
from ``repro.obs.__init__`` — eagerly importing it there would cycle
through the campaign planner back into the instrumented analysis engine.

The profile separates two kinds of evidence:

* **Deterministic counters and histograms** (solver outcome tallies, cache
  hits/misses, simulator event counts) — integer sums, identical for a
  fixed seed at any worker count.  These feed the byte-pinned report
  section.
* **Wall-clock timings** (per-phase and per-protocol spans, per-unit
  elapsed seconds) — machine- and load-dependent.  These stay in the
  ``profile`` CLI output only, never in byte-compared artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..campaign.store import CampaignStore
from .events import UnitTelemetry, event_from_record
from .sink import events_path, iter_event_records
from .telemetry import Telemetry, bucket_sort_key


@dataclass
class UnitProfile:
    """Per-unit slice of the compute profile (from ``results.jsonl``)."""

    unit_id: str
    scenario_id: str
    point_index: int
    utilization: float
    elapsed_seconds: float
    evaluated: int
    generation_failures: int

    def to_dict(self) -> dict:
        """JSON-serialisable form (``profile --json``)."""
        return {
            "unit_id": self.unit_id,
            "scenario_id": self.scenario_id,
            "point_index": self.point_index,
            "utilization": self.utilization,
            "elapsed_seconds": self.elapsed_seconds,
            "evaluated": self.evaluated,
            "generation_failures": self.generation_failures,
        }


@dataclass
class ComputeProfile:
    """Everything the ``profile`` command and report section render.

    ``telemetry`` is the associative merge of every unit's
    :class:`~repro.obs.events.UnitTelemetry` snapshot, folded in sorted
    unit-id order; ``units`` covers every checkpointed unit whether or not
    it ran with telemetry.
    """

    store_directory: str
    units: List[UnitProfile] = field(default_factory=list)
    telemetry: Telemetry = field(default_factory=Telemetry)
    #: events.jsonl record count per event type (empty without the file).
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: Units whose telemetry snapshot was found in events.jsonl.
    units_with_telemetry: int = 0

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def phase_timers(self) -> "List[Tuple[str, object]]":
        """``(phase, TimerStats)`` rows of the ``phase.*`` spans (sorted)."""
        return [
            (name[len("phase."):], self.telemetry.timers[name])
            for name in sorted(self.telemetry.timers)
            if name.startswith("phase.")
        ]

    def protocol_timers(self) -> "List[Tuple[str, object]]":
        """``(protocol, TimerStats)`` rows of the ``protocol.*`` spans."""
        return [
            (name[len("protocol."):], self.telemetry.timers[name])
            for name in sorted(self.telemetry.timers)
            if name.startswith("protocol.")
        ]

    def scenario_seconds(self) -> "List[Tuple[str, int, float]]":
        """``(scenario_id, units, elapsed_seconds)`` rows, slowest first."""
        totals: Dict[str, List[float]] = {}
        for unit in self.units:
            slot = totals.setdefault(unit.scenario_id, [0, 0.0])
            slot[0] += 1
            slot[1] += unit.elapsed_seconds
        return sorted(
            ((sid, int(n), t) for sid, (n, t) in totals.items()),
            key=lambda row: (-row[2], row[0]),
        )

    def slowest_units(self, top: int = 10) -> List[UnitProfile]:
        """The ``top`` slowest units by elapsed seconds."""
        ranked = sorted(
            self.units, key=lambda u: (-u.elapsed_seconds, u.unit_id)
        )
        return ranked[: max(0, top)]

    def solver_histogram(self) -> "List[Tuple[str, int]]":
        """Bucketed ``solver.iterations`` rows in ascending bucket order."""
        histogram = self.telemetry.histograms.get("solver.iterations", {})
        return [
            (label, histogram[label])
            for label in sorted(histogram, key=bucket_sort_key)
        ]

    def arena_efficiency(self) -> "Optional[Dict[str, float]]":
        """Batch-efficiency figures of the arena-batched runs, if any ran.

        Returns ``None`` when no ``arena.*`` counters were recorded (the
        campaign used the per-sample loop throughout); otherwise a dict
        with the raw counters plus ``requests_per_solve`` — the
        amortization the batching achieved (fixed points retired per
        batched NumPy solve).
        """
        counters = self.telemetry.counters
        tasksets = int(counters.get("arena.tasksets", 0))
        solves = int(counters.get("arena.batch_solves", 0))
        fallbacks = int(counters.get("arena.fallbacks", 0))
        if not (tasksets or solves or fallbacks):
            return None
        requests = int(counters.get("arena.requests", 0))
        return {
            "tasksets": tasksets,
            "batch_solves": solves,
            "requests": requests,
            "fallbacks": fallbacks,
            "requests_per_solve": requests / solves if solves else 0.0,
        }

    def deterministic_counters(self) -> Dict[str, int]:
        """The integer counters (fixed-seed deterministic at any worker count)."""
        return dict(self.telemetry.counters)

    def to_dict(self) -> dict:
        """JSON-serialisable profile (``profile --json``)."""
        return {
            "store_directory": self.store_directory,
            "units": [unit.to_dict() for unit in self.units],
            "units_with_telemetry": self.units_with_telemetry,
            "event_counts": {
                k: self.event_counts[k] for k in sorted(self.event_counts)
            },
            "telemetry": self.telemetry.to_dict(),
        }


def load_profile(store_directory: str) -> ComputeProfile:
    """Build the :class:`ComputeProfile` of one campaign store.

    ``results.jsonl`` supplies the per-unit rows (torn-line tolerant,
    first record wins per unit, exactly like resume); ``events.jsonl`` —
    when present — supplies the telemetry snapshots, merged in sorted
    unit-id order so the result is independent of completion order.
    A store without events (telemetry disabled, or a pre-observability
    store) still profiles: wall-clock and scenario tables come from the
    results alone and the telemetry sections are empty.
    """
    store = CampaignStore(store_directory)
    profile = ComputeProfile(store_directory=store.directory)
    for record in store.load_records().values():
        profile.units.append(
            UnitProfile(
                unit_id=str(record.get("unit_id", "")),
                scenario_id=str(record.get("scenario_id", "")),
                point_index=int(record.get("point_index", 0)),
                utilization=float(record.get("utilization", 0.0)),
                elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
                evaluated=int(record.get("evaluated", 0)),
                generation_failures=int(record.get("generation_failures", 0)),
            )
        )
    profile.units.sort(key=lambda unit: unit.unit_id)

    snapshots: Dict[str, Telemetry] = {}
    for record, _ in iter_event_records(events_path(store.directory)):
        kind = str(record.get("type"))
        profile.event_counts[kind] = profile.event_counts.get(kind, 0) + 1
        if kind != UnitTelemetry.TYPE:
            continue
        try:
            event = event_from_record(record)
        except TypeError:
            continue
        if isinstance(event, UnitTelemetry):
            # Last snapshot wins per unit: an interrupted run's re-executed
            # unit supersedes the torn original.
            snapshots[event.unit_id] = Telemetry.from_dict(event.telemetry)
    for unit_id in sorted(snapshots):
        profile.telemetry.merge(snapshots[unit_id])
    profile.units_with_telemetry = len(snapshots)
    return profile


def _format_seconds(seconds: float) -> str:
    return f"{seconds:10.3f}s"


def render_profile(profile: ComputeProfile, top: int = 10) -> str:
    """Plain-text compute-profile tables (the ``profile`` command body)."""
    lines: List[str] = []
    total_elapsed = sum(unit.elapsed_seconds for unit in profile.units)
    lines.append(f"compute profile of {profile.store_directory}")
    lines.append(
        f"units: {len(profile.units)} checkpointed, "
        f"{profile.units_with_telemetry} with telemetry, "
        f"{total_elapsed:.3f}s total unit compute"
    )

    phases = profile.phase_timers()
    if phases:
        lines.append("")
        lines.append("time by phase")
        for name, timer in sorted(phases, key=lambda row: -row[1].total):
            share = 100.0 * timer.total / total_elapsed if total_elapsed else 0.0
            lines.append(
                f"  {name:<12} {_format_seconds(timer.total)}  "
                f"{share:5.1f}%  ({timer.count} spans)"
            )

    protocols = profile.protocol_timers()
    if protocols:
        lines.append("")
        lines.append("time by protocol")
        for name, timer in sorted(protocols, key=lambda row: -row[1].total):
            lines.append(
                f"  {name:<12} {_format_seconds(timer.total)}  "
                f"({timer.count} tests, max {timer.maximum:.6f}s)"
            )

    scenarios = profile.scenario_seconds()
    if scenarios:
        lines.append("")
        lines.append("time by scenario")
        for scenario_id, count, seconds in scenarios:
            lines.append(
                f"  {scenario_id:<44} {_format_seconds(seconds)}  ({count} units)"
            )

    slowest = profile.slowest_units(top)
    if slowest:
        lines.append("")
        lines.append(f"slowest units (top {min(top, len(slowest))})")
        for unit in slowest:
            lines.append(
                f"  {unit.unit_id:<48} {_format_seconds(unit.elapsed_seconds)}  "
                f"({unit.evaluated} samples)"
            )

    histogram = profile.solver_histogram()
    if histogram:
        lines.append("")
        lines.append("solver iterations per fixed point")
        total = sum(count for _, count in histogram)
        for label, count in histogram:
            share = 100.0 * count / total if total else 0.0
            lines.append(f"  {label:>7} iterations  {count:>8}  {share:5.1f}%")

    arena = profile.arena_efficiency()
    if arena is not None:
        lines.append("")
        lines.append("arena batching")
        lines.append(f"  tasksets batched      {arena['tasksets']}")
        lines.append(
            f"  batched solves        {arena['batch_solves']}  "
            f"({arena['requests_per_solve']:.1f} requests/solve)"
        )
        lines.append(f"  per-sample fallbacks  {arena['fallbacks']}")

    counters = profile.deterministic_counters()
    if counters:
        lines.append("")
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<32} {counters[name]}")

    if not profile.event_counts:
        lines.append("")
        lines.append(
            "no events.jsonl in this store — run the campaign without "
            "--no-telemetry to collect phase timings and solver statistics"
        )
    return "\n".join(lines)
