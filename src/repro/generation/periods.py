"""Period generation.

The paper draws task periods from a log-uniform distribution over
``[10 ms, 1000 ms]``.  All times in this library are expressed in
microseconds, so the default range is ``[1e4, 1e6]`` µs.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import RngLike, ensure_rng
from .randfixedsum import GenerationError

#: Default period range in microseconds (10 ms .. 1000 ms).
DEFAULT_PERIOD_RANGE_US = (1.0e4, 1.0e6)


def log_uniform_period(
    low: float = DEFAULT_PERIOD_RANGE_US[0],
    high: float = DEFAULT_PERIOD_RANGE_US[1],
    rng: RngLike = None,
) -> float:
    """Draw one period from a log-uniform distribution over ``[low, high]``."""
    if low <= 0 or high < low:
        raise GenerationError("period range must satisfy 0 < low <= high")
    generator = ensure_rng(rng)
    return float(np.exp(generator.uniform(np.log(low), np.log(high))))


def log_uniform_periods(
    count: int,
    low: float = DEFAULT_PERIOD_RANGE_US[0],
    high: float = DEFAULT_PERIOD_RANGE_US[1],
    rng: RngLike = None,
) -> np.ndarray:
    """Draw ``count`` independent log-uniform periods over ``[low, high]``."""
    if count < 0:
        raise GenerationError("count must be non-negative")
    generator = ensure_rng(rng)
    return np.exp(generator.uniform(np.log(low), np.log(high), size=count))
