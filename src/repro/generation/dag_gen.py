"""Random DAG structure generation (Erdős–Rényi style, Cordeiro et al. [5]).

The paper generates the structure of each task with the layer-free
Erdős–Rényi method for scheduling simulations: the vertices are put in an
arbitrary (topological) order and every ordered pair ``(u, v)`` with ``u < v``
receives an edge with a fixed probability ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..model.dag import DAG
from ..utils.rng import RngLike, ensure_rng
from .randfixedsum import GenerationError


@dataclass(frozen=True)
class DagGenerationConfig:
    """Parameters of the Erdős–Rényi DAG generator.

    Attributes
    ----------
    num_vertices_range:
        Inclusive range from which the vertex count is drawn uniformly
        (``[10, 100]`` in the paper).
    edge_probability:
        Probability of an edge between any ordered pair of vertices
        (0.1 in the paper).
    """

    num_vertices_range: Tuple[int, int] = (10, 100)
    edge_probability: float = 0.1

    def __post_init__(self) -> None:
        lo, hi = self.num_vertices_range
        if lo < 1 or hi < lo:
            raise GenerationError("invalid vertex-count range")
        if not 0.0 <= self.edge_probability <= 1.0:
            raise GenerationError("edge probability must be in [0, 1]")


def erdos_renyi_dag(num_vertices: int, edge_probability: float, rng: RngLike = None) -> DAG:
    """Generate a random DAG over ``num_vertices`` ordered vertices.

    Every pair ``(u, v)`` with ``u < v`` independently receives an edge with
    probability ``edge_probability``; the vertex order doubles as a
    topological order, so the result is acyclic by construction.
    """
    if num_vertices < 1:
        raise GenerationError("num_vertices must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise GenerationError("edge probability must be in [0, 1]")
    generator = ensure_rng(rng)
    dag = DAG(num_vertices)
    if num_vertices == 1 or edge_probability == 0.0:
        return dag
    draws = generator.uniform(size=(num_vertices, num_vertices))
    for src in range(num_vertices):
        for dst in range(src + 1, num_vertices):
            if draws[src, dst] < edge_probability:
                dag.add_edge(src, dst)
    return dag


def random_dag(config: DagGenerationConfig, rng: RngLike = None) -> DAG:
    """Draw a DAG according to ``config`` (vertex count uniform in the range)."""
    generator = ensure_rng(rng)
    lo, hi = config.num_vertices_range
    num_vertices = int(generator.integers(lo, hi + 1))
    return erdos_renyi_dag(num_vertices, config.edge_probability, generator)
