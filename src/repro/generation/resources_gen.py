"""Resource-usage generation (Sec. VII-A).

The experimental setup draws, for each experiment scenario, a number of
shared resources ``nr`` from a range (``[2,4]``, ``[4,8]`` or ``[8,16]``).
Each task uses each resource with probability ``pr``; if it does, the number
of requests per job ``N_{i,q}`` is drawn uniformly from ``[1, 25]`` or
``[1, 50]`` and the maximum critical-section length ``L_{i,q}`` uniformly
from ``[15, 50]`` µs or ``[50, 100]`` µs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..utils.rng import RngLike, ensure_rng
from .randfixedsum import GenerationError


@dataclass(frozen=True)
class ResourceGenerationConfig:
    """Parameters controlling shared-resource usage synthesis.

    Attributes
    ----------
    num_resources_range:
        Inclusive range for the number of shared resources ``nr``.
    access_probability:
        ``pr`` — probability that a task uses a given resource.
    request_count_range:
        Inclusive range for ``N_{i,q}`` when a task uses a resource.
    cs_length_range:
        Range for ``L_{i,q}`` in microseconds.
    """

    num_resources_range: Tuple[int, int] = (4, 8)
    access_probability: float = 0.5
    request_count_range: Tuple[int, int] = (1, 50)
    cs_length_range: Tuple[float, float] = (50.0, 100.0)

    def __post_init__(self) -> None:
        lo, hi = self.num_resources_range
        if lo < 0 or hi < lo:
            raise GenerationError("invalid resource-count range")
        if not 0.0 <= self.access_probability <= 1.0:
            raise GenerationError("access probability must be in [0, 1]")
        nlo, nhi = self.request_count_range
        if nlo < 1 or nhi < nlo:
            raise GenerationError("invalid request-count range")
        llo, lhi = self.cs_length_range
        if llo < 0 or lhi < llo:
            raise GenerationError("invalid critical-section length range")


@dataclass
class ResourceDemandDraw:
    """One task's drawn demand on one resource (before vertex placement)."""

    resource_id: int
    max_requests: int
    cs_length: float


def draw_num_resources(config: ResourceGenerationConfig, rng: RngLike = None) -> int:
    """Draw the number of shared resources ``nr`` for one task set."""
    generator = ensure_rng(rng)
    lo, hi = config.num_resources_range
    return int(generator.integers(lo, hi + 1))


def draw_task_demands(
    num_resources: int,
    config: ResourceGenerationConfig,
    rng: RngLike = None,
) -> List[ResourceDemandDraw]:
    """Draw the resource demands of one task.

    Each of the ``num_resources`` resources is used with probability
    ``config.access_probability``; used resources receive a request count and
    a critical-section length drawn uniformly from the configured ranges.
    """
    generator = ensure_rng(rng)
    demands: List[ResourceDemandDraw] = []
    nlo, nhi = config.request_count_range
    llo, lhi = config.cs_length_range
    for rid in range(num_resources):
        if generator.uniform() >= config.access_probability:
            continue
        count = int(generator.integers(nlo, nhi + 1))
        cs_length = float(generator.uniform(llo, lhi))
        demands.append(ResourceDemandDraw(rid, count, cs_length))
    return demands


def scale_demands_to_budget(
    demands: List[ResourceDemandDraw], budget: float
) -> List[ResourceDemandDraw]:
    """Shrink request counts so the total critical-section time fits ``budget``.

    The paper enforces ``C_{i,x} >= sum_q N_{i,x,q} L_{i,q}`` (critical
    sections are part of the WCET), which requires the *total* critical
    section time of a task to be at most its WCET.  When the raw draw exceeds
    the budget we scale all request counts down proportionally (dropping
    resources whose count reaches zero), which preserves the relative
    contention profile of the draw.
    """
    if budget < 0:
        raise GenerationError("budget must be non-negative")
    total = sum(d.max_requests * d.cs_length for d in demands)
    if total <= budget or total == 0:
        return list(demands)
    factor = budget / total
    scaled: List[ResourceDemandDraw] = []
    for demand in demands:
        new_count = int(np.floor(demand.max_requests * factor))
        if new_count >= 1:
            scaled.append(
                ResourceDemandDraw(demand.resource_id, new_count, demand.cs_length)
            )
    return scaled


def distribute_requests_over_vertices(
    total_requests: int,
    num_vertices: int,
    rng: RngLike = None,
) -> Dict[int, int]:
    """Split ``N_{i,q}`` requests over vertices uniformly at random.

    Returns a mapping ``vertex index -> N_{i,x,q}`` whose values sum to
    ``total_requests`` (vertices with zero requests are omitted).
    """
    if total_requests < 0:
        raise GenerationError("total_requests must be non-negative")
    if num_vertices < 1:
        raise GenerationError("num_vertices must be >= 1")
    if total_requests == 0:
        return {}
    generator = ensure_rng(rng)
    choices = generator.integers(0, num_vertices, size=total_requests)
    counts: Dict[int, int] = {}
    for vertex in choices:
        counts[int(vertex)] = counts.get(int(vertex), 0) + 1
    return counts
