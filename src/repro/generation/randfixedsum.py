"""RandFixedSum — uniform generation of utilization vectors with a fixed sum.

Implements the Stafford/Emberson ``RandFixedSum`` algorithm [7] used by the
paper to draw task utilizations: ``n`` values, each within ``[low, high]``,
summing exactly to a prescribed total, distributed uniformly over that
simplex slice.

Reference: P. Emberson, R. Stafford, R. I. Davis, "Techniques for the
synthesis of multiprocessor tasksets", WATERS 2010.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..utils.rng import RngLike, ensure_rng


class GenerationError(ValueError):
    """Raised when a generation request is infeasible or malformed."""


def _rand_fixed_sum_unit(n: int, total: float, nsets: int, rng: np.random.Generator) -> np.ndarray:
    """Stafford's algorithm on the unit cube: values in [0, 1] summing to ``total``."""
    if not 0.0 <= total <= n:
        raise GenerationError(f"total {total} outside the feasible range [0, {n}]")
    if n == 1:
        return np.full((nsets, 1), total)

    k = int(np.floor(total))
    k = min(max(k, 0), n - 1)
    s = total
    s1 = s - np.arange(k, k - n, -1.0)
    s2 = np.arange(k + n, k, -1.0) - s

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max

    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))

    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[0:i] / float(i)
        tmp2 = w[i - 2, 0:i] * s2[n - i : n] / float(i)
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[0:i]
        t[i - 2, 0:i] = (tmp2 / tmp3) * tmp4 + (1 - tmp1 / tmp3) * (~tmp4)

    x = np.zeros((n, nsets))
    rt = rng.uniform(size=(n - 1, nsets))
    rs = rng.uniform(size=(n - 1, nsets))
    s_arr = np.full(nsets, s)
    j_arr = np.full(nsets, k + 1, dtype=int)
    sm = np.zeros(nsets)
    pr = np.ones(nsets)

    for i in range(n - 1, 0, -1):
        e = rt[n - i - 1, :] <= t[i - 1, j_arr - 1]
        sx = rs[n - i - 1, :] ** (1.0 / i)
        sm = sm + (1.0 - sx) * pr * s_arr / (i + 1)
        pr = sx * pr
        x[n - i - 1, :] = sm + pr * e
        s_arr = s_arr - e
        j_arr = j_arr - e.astype(int)

    x[n - 1, :] = sm + pr * s_arr

    # Shuffle each column so the coordinates are exchangeable.
    for col in range(nsets):
        x[:, col] = x[rng.permutation(n), col]

    return x.T


def rand_fixed_sum(
    n: int,
    total: float,
    low: float,
    high: float,
    nsets: int = 1,
    rng: RngLike = None,
) -> np.ndarray:
    """Draw ``nsets`` vectors of ``n`` values in ``[low, high]`` summing to ``total``.

    Returns an array of shape ``(nsets, n)``.

    Raises
    ------
    GenerationError
        If the request is infeasible (``total`` outside ``[n*low, n*high]``).
    """
    if n <= 0:
        raise GenerationError("n must be positive")
    if high < low:
        raise GenerationError("high must be >= low")
    if not (n * low - 1e-12 <= total <= n * high + 1e-12):
        raise GenerationError(
            f"cannot produce {n} values in [{low}, {high}] summing to {total}"
        )
    generator = ensure_rng(rng)
    if high == low:
        return np.full((nsets, n), low)
    unit_total = (total - n * low) / (high - low)
    unit_total = min(max(unit_total, 0.0), float(n))
    unit = _rand_fixed_sum_unit(n, unit_total, nsets, generator)
    return low + unit * (high - low)


def utilizations_for_total(
    total_utilization: float,
    average_utilization: float,
    max_factor: float = 2.0,
    min_utilization: float = 1.0,
    rng: RngLike = None,
) -> List[float]:
    """Draw task utilizations for a target total, as in Sec. VII-A.

    The paper draws the task utilizations with RandFixedSum in the range
    ``(1, 2 * U_avg]``, and chooses the number of tasks from the total and
    the average utilization.  This helper reproduces that policy while
    gracefully handling the boundary cases of very small totals (where no
    heavy task fits) by clamping the per-task range.

    Parameters
    ----------
    total_utilization:
        Target sum of utilizations.
    average_utilization:
        :math:`U^{avg}` (1.5 or 2 in the paper).
    max_factor:
        Upper bound factor; per-task utilizations are at most
        ``max_factor * average_utilization``.
    min_utilization:
        Lower bound on per-task utilization (1.0 in the paper — heavy tasks).
    rng:
        Seed or generator.

    Returns
    -------
    list of float
        The utilizations (their sum equals ``total_utilization`` up to float
        rounding).
    """
    if total_utilization <= 0:
        raise GenerationError("total utilization must be positive")
    if average_utilization <= 0:
        raise GenerationError("average utilization must be positive")

    high = max_factor * average_utilization
    if total_utilization <= min_utilization:
        return [total_utilization]

    n = int(round(total_utilization / average_utilization))
    n = max(n, 1)
    # Feasibility: n * min < total <= n * high.
    while n > 1 and n * min_utilization >= total_utilization:
        n -= 1
    while n * high < total_utilization:
        n += 1

    low = min_utilization if n * min_utilization < total_utilization else 0.0
    values = rand_fixed_sum(n, total_utilization, low, high, nsets=1, rng=rng)[0]
    return [float(u) for u in values]
