"""Synthetic workload generation (Sec. VII-A of the paper)."""

from .dag_gen import DagGenerationConfig, erdos_renyi_dag, random_dag
from .periods import DEFAULT_PERIOD_RANGE_US, log_uniform_period, log_uniform_periods
from .randfixedsum import GenerationError, rand_fixed_sum, utilizations_for_total
from .resources_gen import (
    ResourceDemandDraw,
    ResourceGenerationConfig,
    distribute_requests_over_vertices,
    draw_num_resources,
    draw_task_demands,
    scale_demands_to_budget,
)
from .taskset_gen import TaskSetGenerationConfig, generate_task, generate_taskset

__all__ = [
    "DagGenerationConfig",
    "erdos_renyi_dag",
    "random_dag",
    "DEFAULT_PERIOD_RANGE_US",
    "log_uniform_period",
    "log_uniform_periods",
    "GenerationError",
    "rand_fixed_sum",
    "utilizations_for_total",
    "ResourceDemandDraw",
    "ResourceGenerationConfig",
    "distribute_requests_over_vertices",
    "draw_num_resources",
    "draw_task_demands",
    "scale_demands_to_budget",
    "TaskSetGenerationConfig",
    "generate_task",
    "generate_taskset",
]
