"""Synthetic task-set generation following the paper's experimental setup.

For a target total utilization, the generator draws task utilizations with
RandFixedSum, a log-uniform period per task, an Erdős–Rényi DAG structure,
and per-resource demands, then distributes WCET and requests over the
vertices while enforcing the paper's plausibility constraints:

* ``C_{i,x} >= sum_q N_{i,x,q} * L_{i,q}`` (critical sections fit in the
  vertex WCET), and
* ``L*_i < D_i / 2`` (the critical path leaves slack for parallel execution).

Base priorities are assigned Rate-Monotonically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.dag import DAG
from ..model.priorities import assign_rate_monotonic
from ..model.resources import Resource, ResourceUsage
from ..model.task import DAGTask, TaskSet, Vertex
from ..utils.rng import RngLike, ensure_rng
from .dag_gen import DagGenerationConfig, random_dag
from .periods import DEFAULT_PERIOD_RANGE_US, log_uniform_period
from .randfixedsum import GenerationError, utilizations_for_total
from .resources_gen import (
    ResourceDemandDraw,
    ResourceGenerationConfig,
    distribute_requests_over_vertices,
    draw_num_resources,
    draw_task_demands,
    scale_demands_to_budget,
)


@dataclass(frozen=True)
class TaskSetGenerationConfig:
    """All knobs of the synthetic task-set generator.

    Attributes mirror Sec. VII-A of the paper; times are in microseconds.
    """

    average_utilization: float = 1.5
    utilization_factor: float = 2.0
    dag: DagGenerationConfig = field(default_factory=DagGenerationConfig)
    resources: ResourceGenerationConfig = field(default_factory=ResourceGenerationConfig)
    period_range: Tuple[float, float] = DEFAULT_PERIOD_RANGE_US
    critical_path_fraction: float = 0.5
    cs_budget_fraction: float = 0.4
    max_attempts_per_task: int = 8

    def __post_init__(self) -> None:
        if self.average_utilization <= 0:
            raise GenerationError("average utilization must be positive")
        if not 0.0 < self.critical_path_fraction <= 1.0:
            raise GenerationError("critical_path_fraction must be in (0, 1]")
        if not 0.0 < self.cs_budget_fraction < 1.0:
            raise GenerationError("cs_budget_fraction must be in (0, 1)")


# --------------------------------------------------------------------------- #
# WCET distribution and critical-path shaping
# --------------------------------------------------------------------------- #
def _initial_weights(
    floors: np.ndarray, total_wcet: float, rng: np.random.Generator
) -> np.ndarray:
    """Assign vertex WCETs: critical-section floors plus a random split of the rest."""
    slack = total_wcet - float(floors.sum())
    if slack < -1e-9:
        raise GenerationError("critical sections exceed the task WCET budget")
    shares = rng.uniform(0.5, 1.5, size=len(floors))
    shares = shares / shares.sum()
    return floors + max(slack, 0.0) * shares


def _rebalance_critical_path(
    dag: DAG,
    weights: np.ndarray,
    floors: np.ndarray,
    limit: float,
    max_iterations: int = 200,
) -> Tuple[np.ndarray, DAG, bool]:
    """Shape vertex weights (and, as a last resort, edges) so that ``L* < limit``.

    The total weight is preserved exactly.  The procedure repeatedly takes
    non-critical weight off the current longest path and spreads it over the
    off-path vertices; when no weight can be moved it removes one edge of the
    longest path (mirroring the paper's "regenerate until plausible" policy
    while keeping the draw close to the original).

    Returns ``(weights, dag, success)``.
    """
    weights = weights.astype(float).copy()
    for _ in range(max_iterations):
        lstar = dag.longest_path_length(weights)
        if lstar < limit:
            return weights, dag, True
        path = dag.longest_path(weights)
        on_path = np.zeros(len(weights), dtype=bool)
        on_path[list(path)] = True
        movable = (weights - floors) * on_path
        movable_total = float(movable.sum())
        receivers = ~on_path
        excess = lstar - limit
        if movable_total > 1e-12 and receivers.any():
            # Move just enough (plus a small margin) off the path.
            take = min(movable_total, excess * 1.05 + 1e-9)
            scale = take / movable_total
            taken = movable * scale
            weights = weights - taken
            weights[receivers] += taken.sum() / receivers.sum()
            continue
        # Cannot shift weight: break the longest path structurally.
        edge_to_remove = None
        for src, dst in zip(path, path[1:]):
            edge_to_remove = (src, dst)
            break
        if edge_to_remove is None:
            return weights, dag, bool(dag.longest_path_length(weights) < limit)
        remaining = [e for e in dag.edges if e != edge_to_remove]
        dag = DAG(dag.num_vertices, remaining)
    return weights, dag, bool(dag.longest_path_length(weights) < limit)


# --------------------------------------------------------------------------- #
# Single-task synthesis
# --------------------------------------------------------------------------- #
def generate_task(
    task_id: int,
    utilization: float,
    num_resources: int,
    config: TaskSetGenerationConfig,
    rng: RngLike = None,
) -> DAGTask:
    """Generate one DAG task with the given utilization and resource pool size."""
    generator = ensure_rng(rng)
    last_error: Optional[Exception] = None
    for attempt in range(config.max_attempts_per_task):
        try:
            return _generate_task_once(
                task_id, utilization, num_resources, config, generator, attempt
            )
        except GenerationError as exc:  # retry with a fresh draw
            last_error = exc
    raise GenerationError(
        f"failed to generate task {task_id} after "
        f"{config.max_attempts_per_task} attempts: {last_error}"
    )


def _generate_task_once(
    task_id: int,
    utilization: float,
    num_resources: int,
    config: TaskSetGenerationConfig,
    rng: np.random.Generator,
    attempt: int,
) -> DAGTask:
    dag = random_dag(config.dag, rng)
    num_vertices = dag.num_vertices
    period = log_uniform_period(config.period_range[0], config.period_range[1], rng)
    deadline = period
    wcet = utilization * period

    # Resource demands, shrunk so the critical sections fit the WCET budget.
    # Retries use a progressively smaller budget to guarantee convergence.
    budget_fraction = config.cs_budget_fraction / (1 + attempt)
    demands = draw_task_demands(num_resources, config.resources, rng)
    demands = scale_demands_to_budget(demands, budget_fraction * wcet)

    per_vertex_requests: Dict[int, Dict[int, int]] = {}
    floors = np.zeros(num_vertices)
    for demand in demands:
        split = distribute_requests_over_vertices(demand.max_requests, num_vertices, rng)
        for vertex, count in split.items():
            per_vertex_requests.setdefault(vertex, {})[demand.resource_id] = count
            floors[vertex] += count * demand.cs_length

    weights = _initial_weights(floors, wcet, rng)
    limit = config.critical_path_fraction * deadline
    weights, dag, ok = _rebalance_critical_path(dag, weights, floors, limit)
    if not ok:
        raise GenerationError(
            f"could not shape task {task_id} to satisfy L* < {limit:.1f}"
        )

    vertices = [
        Vertex(index=v, wcet=float(weights[v]), requests=dict(per_vertex_requests.get(v, {})))
        for v in range(num_vertices)
    ]
    usages = [
        ResourceUsage(
            resource_id=demand.resource_id,
            max_requests=demand.max_requests,
            cs_length=demand.cs_length,
        )
        for demand in demands
    ]
    return DAGTask(
        task_id=task_id,
        vertices=vertices,
        dag=dag,
        period=period,
        deadline=deadline,
        resource_usages=usages,
        name=f"tau{task_id}",
    )


# --------------------------------------------------------------------------- #
# Task-set synthesis
# --------------------------------------------------------------------------- #
def generate_taskset(
    total_utilization: float,
    config: Optional[TaskSetGenerationConfig] = None,
    rng: RngLike = None,
) -> TaskSet:
    """Generate a complete task set for a target total utilization.

    The number of tasks, their utilizations, periods, DAG structures, and
    resource demands follow Sec. VII-A; Rate-Monotonic base priorities are
    applied before the task set is returned.
    """
    config = config or TaskSetGenerationConfig()
    generator = ensure_rng(rng)
    utilizations = utilizations_for_total(
        total_utilization,
        config.average_utilization,
        max_factor=config.utilization_factor,
        rng=generator,
    )
    num_resources = draw_num_resources(config.resources, generator)
    tasks: List[DAGTask] = []
    for task_id, utilization in enumerate(utilizations):
        tasks.append(generate_task(task_id, utilization, num_resources, config, generator))
    assign_rate_monotonic(tasks)
    resources = [Resource(rid) for rid in range(num_resources)]
    return TaskSet(tasks, resources)
