"""repro — reproduction of "DPCP-p: A Distributed Locking Protocol for
Parallel Real-Time Tasks" (Yang et al., DAC 2020).

The package is organised as follows:

* :mod:`repro.model` — DAG tasks, shared resources, platforms, priorities.
* :mod:`repro.generation` — synthetic workload generation (Sec. VII-A).
* :mod:`repro.analysis` — DPCP-p (EP/EN) schedulability analysis plus the
  SPIN, LPP, and FED-FP baselines, and the classic DPCP for sequential tasks.
* :mod:`repro.sim` — discrete-event simulator of the DPCP-p runtime protocol.
* :mod:`repro.experiments` — the schedulability experiment harness that
  regenerates the paper's Fig. 2 and Tables 2–3.
* :mod:`repro.campaign` — parallel, resumable scenario-grid campaigns with
  an on-disk checkpoint store and CLI (``python -m repro.campaign``).
* :mod:`repro.report` — store aggregation (cached, incremental) and the
  zero-dependency figure/table renderers (``REPORT.md``, ``report.html``).
"""

from .analysis import (
    DpcpPEnTest,
    DpcpPEpTest,
    DpcpPTest,
    FedFpTest,
    LppTest,
    SchedulabilityResult,
    SchedulabilityTest,
    SpinTest,
    default_protocols,
)
from .generation import TaskSetGenerationConfig, generate_taskset
from .model import (
    DAG,
    DAGTask,
    PartitionedSystem,
    Platform,
    Resource,
    ResourceUsage,
    TaskSet,
    Vertex,
)

__version__ = "0.1.0"

__all__ = [
    "DpcpPEnTest",
    "DpcpPEpTest",
    "DpcpPTest",
    "FedFpTest",
    "LppTest",
    "SchedulabilityResult",
    "SchedulabilityTest",
    "SpinTest",
    "default_protocols",
    "TaskSetGenerationConfig",
    "generate_taskset",
    "DAG",
    "DAGTask",
    "PartitionedSystem",
    "Platform",
    "Resource",
    "ResourceUsage",
    "TaskSet",
    "Vertex",
    "__version__",
]
