"""Work-unit planner: decompose a campaign into independent work units.

A *work unit* is one ``(scenario, utilization point)`` pair together with the
integer seed of its random stream.  Seeds are derived by child-stream
spawning from the campaign seed exactly as the serial sweep in
:mod:`repro.experiments.runner` derives its per-point generators, so
executing the units in any order — or in parallel across processes — yields
curves bit-identical to a serial :func:`~repro.experiments.runner.run_sweep`
with the same seed.

The planner also owns the *manifest*: a JSON-serialisable description of the
campaign (scenarios, sweep configuration, protocol names) whose hash guards
the on-disk store against mixing results from mismatched configurations.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.dpcp_p import DpcpPEnTest, DpcpPEpTest
from ..analysis.fedfp import FedFpTest
from ..analysis.interfaces import SchedulabilityTest
from ..analysis.lpp import LppTest
from ..analysis.spin import SpinTest
from ..experiments.runner import SweepConfig
from ..experiments.scenarios import Scenario, figure2_scenarios, full_grid
from ..sim.validation import SimulationConfig
from ..utils.rng import ensure_rng, spawn_seeds

#: Version of the store layout / manifest schema.  Bumped on incompatible
#: changes so that old stores are rejected instead of silently misread.
#: Version 2: the DPCP-p analyses switched to the vectorized kernel engine
#: (PR 2); bounds can differ from the straight-line implementation at float
#: rounding level, so results must not be mixed with version-1 stores.
#: Version 3: SPIN and LPP switched to the compiled engine kernels (PR 3) —
#: the default baseline provenance changed (and SPIN dropped its dominated
#: off-path solve), so results must not be mixed with version-2 stores.
#: Version 4: campaigns gained a mode (``analyze`` | ``simulate``); the
#: manifest now carries ``mode`` (and, in simulate mode, the ``simulation``
#: config), both of which enter the config hash.
FORMAT_VERSION = 4

#: Manifest version of *simulate-mode* stores.  Version 5: the simulator
#: became protocol-pluggable (SPIN and LPP joined
#: :data:`SIMULATABLE_PROTOCOLS`), validation rollups grew the
#: ``spin_exclusivity_violations`` counter, and each protocol now simulates
#: under its *own* runtime rules — simulate provenance changed, so resuming
#: a version-4 simulate store would mix incompatible evidence.  Analyze-mode
#: provenance is untouched: analyze stores stay on :data:`FORMAT_VERSION`
#: and old analyze stores still resume.
SIMULATE_FORMAT_VERSION = 5

#: Campaign modes: ``analyze`` evaluates the schedulability tests only (the
#: Sec. VII acceptance-ratio experiments); ``simulate`` additionally runs
#: every analysis-accepted task set through the runtime simulator — under
#: the accepting protocol's own locking rules — and records
#: observed-vs-bound tightness plus invariant counters.
MODE_ANALYZE = "analyze"
MODE_SIMULATE = "simulate"
CAMPAIGN_MODES = (MODE_ANALYZE, MODE_SIMULATE)

#: Protocols whose accepted partitions the runtime simulator can execute.
#: The simulator implements the DPCP-p rules (Sec. III) plus the SPIN
#: (non-preemptive busy-wait) and LPP (local priority-ceiling semaphore)
#: baseline runtimes behind :class:`repro.sim.protocols.ProtocolBehavior`
#: strategies.  FED-FP ignores locking entirely — there are no runtime
#: rules to validate a bound against — so simulate-mode campaigns refuse
#: it by name instead of "validating" against the wrong runtime.
SIMULATABLE_PROTOCOLS = ("DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP")


def manifest_format_version(mode: str) -> int:
    """Store format version in force for ``mode``.

    Simulate-mode stores version independently of analyze-mode ones: a
    simulator-semantics change invalidates simulate evidence without
    touching analyze results (and vice versa), so each mode's stores are
    refused exactly when *their* provenance changed.
    """
    return SIMULATE_FORMAT_VERSION if mode == MODE_SIMULATE else FORMAT_VERSION

#: The single registry of the paper's protocol suite (Sec. VII-B): report
#: name → factory taking the EP path-signature cap.  Everything else —
#: :data:`KNOWN_PROTOCOLS`, :func:`repro.campaign.executor.build_protocols`,
#: :func:`repro.analysis.default_protocols` — derives from this mapping, so
#: adding or re-tuning a protocol is a one-place edit.
PROTOCOL_FACTORIES: Dict[str, Callable[[int], SchedulabilityTest]] = {
    "DPCP-p-EP": lambda cap: DpcpPEpTest(max_path_signatures=cap),
    "DPCP-p-EN": lambda cap: DpcpPEnTest(),
    "SPIN": lambda cap: SpinTest(),
    "LPP": lambda cap: LppTest(),
    "FED-FP": lambda cap: FedFpTest(),
}

#: Protocol names the campaign CLI can instantiate (insertion order is the
#: paper's table/figure order).
KNOWN_PROTOCOLS = tuple(PROTOCOL_FACTORIES)


@dataclass(frozen=True)
class WorkUnit:
    """One independently executable unit: a scenario at one utilization."""

    scenario: Scenario
    point_index: int
    utilization: float
    seed: int
    samples_per_point: int

    @property
    def unit_id(self) -> str:
        """Stable identifier used as the checkpoint key in the store."""
        return f"{self.scenario.scenario_id}:p{self.point_index:02d}"


@dataclass
class CampaignPlan:
    """A fully planned campaign: scenarios, config, and their work units."""

    scenarios: List[Scenario]
    config: SweepConfig
    protocol_names: List[str]
    units: List[WorkUnit] = field(default_factory=list)
    #: ``analyze`` or ``simulate`` (see :data:`CAMPAIGN_MODES`).
    mode: str = MODE_ANALYZE
    #: Simulation configuration; set exactly when ``mode == "simulate"``.
    sim_config: Optional[SimulationConfig] = None

    @property
    def unit_ids(self) -> List[str]:
        """Identifiers of every planned unit (plan order)."""
        return [unit.unit_id for unit in self.units]


def plan_scenario_units(scenario: Scenario, config: SweepConfig) -> List[WorkUnit]:
    """Decompose one scenario sweep into per-utilization-point work units.

    Seed derivation mirrors the serial sweep: the campaign seed spawns one
    child seed per utilization point, and each unit spawns its per-sample
    streams from its own seed at execution time.
    """
    points = scenario.utilization_points(config.utilization_step_fraction)
    if not points:
        raise ValueError(
            f"scenario {scenario.scenario_id} yields no utilization points "
            f"at step fraction {config.utilization_step_fraction}"
        )
    seeds = spawn_seeds(ensure_rng(config.seed), len(points))
    return [
        WorkUnit(
            scenario=scenario,
            point_index=index,
            utilization=utilization,
            seed=seeds[index],
            samples_per_point=config.samples_per_point,
        )
        for index, utilization in enumerate(points)
    ]


def plan_campaign(
    scenarios: Sequence[Scenario],
    config: Optional[SweepConfig] = None,
    protocol_names: Optional[Sequence[str]] = None,
    mode: str = MODE_ANALYZE,
    sim_config: Optional[SimulationConfig] = None,
) -> CampaignPlan:
    """Plan a campaign over ``scenarios`` (units in scenario-major order).

    With ``mode="simulate"`` every protocol must be simulatable (see
    :data:`SIMULATABLE_PROTOCOLS`), the default protocol suite shrinks to
    those, and ``sim_config`` (defaulting to :class:`SimulationConfig`)
    becomes part of the plan; with ``mode="analyze"`` a ``sim_config`` is
    refused so manifests never carry dead configuration.
    """
    if mode not in CAMPAIGN_MODES:
        raise ValueError(
            f"unknown campaign mode {mode!r}; expected one of {CAMPAIGN_MODES}"
        )
    config = config or SweepConfig()
    if protocol_names is not None:
        names = list(protocol_names)
    elif mode == MODE_SIMULATE:
        names = list(SIMULATABLE_PROTOCOLS)
    else:
        names = list(KNOWN_PROTOCOLS)
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate protocol names in {names}")
    if mode == MODE_SIMULATE:
        unsimulatable = [n for n in names if n not in SIMULATABLE_PROTOCOLS]
        if unsimulatable:
            raise ValueError(
                f"protocol(s) {', '.join(unsimulatable)} cannot be simulated — "
                f"FED-FP ignores locking, so it has no runtime rules to "
                f"validate a bound against "
                f"(simulatable: {', '.join(SIMULATABLE_PROTOCOLS)})"
            )
        sim_config = sim_config or SimulationConfig()
    elif sim_config is not None:
        raise ValueError("sim_config is only meaningful with mode='simulate'")
    scenarios = list(scenarios)
    if not scenarios:
        raise ValueError("campaign needs at least one scenario")
    seen: Dict[str, Scenario] = {}
    for scenario in scenarios:
        if scenario.scenario_id in seen:
            raise ValueError(f"duplicate scenario {scenario.scenario_id}")
        seen[scenario.scenario_id] = scenario
    units: List[WorkUnit] = []
    for scenario in scenarios:
        units.extend(plan_scenario_units(scenario, config))
    return CampaignPlan(
        scenarios=scenarios,
        config=config,
        protocol_names=names,
        units=units,
        mode=mode,
        sim_config=sim_config,
    )


def shard_units(
    units: Sequence[WorkUnit], index: int, count: int
) -> List[WorkUnit]:
    """The deterministic slice of ``units`` owned by shard ``index``/``count``.

    Round-robin by plan position (``units[index::count]``): every shard
    gets an interleaved, near-equal share of each scenario's utilization
    points, so the per-shard compute load is balanced even though low- and
    high-utilization points cost very different amounts of analysis.  The
    slice depends only on plan order — which is itself derived
    deterministically from the manifest — so any host can recompute its
    own shard (or a lost host's) from the manifest alone.
    """
    if count < 1:
        raise ValueError(f"shard count must be at least 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}), got {index} "
            "(shards are 0-based: the first of N is 0/N)"
        )
    return list(units)[index::count]


# --------------------------------------------------------------------------- #
# Manifest (de)serialisation and hashing
# --------------------------------------------------------------------------- #
def scenario_to_dict(scenario: Scenario) -> dict:
    """JSON-serialisable description of a scenario."""
    return {
        "platform_size": scenario.platform_size,
        "resource_count_range": list(scenario.resource_count_range),
        "average_utilization": scenario.average_utilization,
        "access_probability": scenario.access_probability,
        "request_count_range": list(scenario.request_count_range),
        "cs_length_range": list(scenario.cs_length_range),
        "num_vertices_range": list(scenario.num_vertices_range),
        "edge_probability": scenario.edge_probability,
    }


def scenario_from_dict(data: dict) -> Scenario:
    """Rebuild a :class:`Scenario` from :func:`scenario_to_dict` output."""
    return Scenario(
        platform_size=int(data["platform_size"]),
        resource_count_range=tuple(data["resource_count_range"]),
        average_utilization=float(data["average_utilization"]),
        access_probability=float(data["access_probability"]),
        request_count_range=tuple(data["request_count_range"]),
        cs_length_range=tuple(data["cs_length_range"]),
        num_vertices_range=tuple(data["num_vertices_range"]),
        edge_probability=float(data["edge_probability"]),
    )


def config_to_dict(config: SweepConfig) -> dict:
    """JSON-serialisable description of a sweep configuration."""
    return {
        "samples_per_point": config.samples_per_point,
        "utilization_step_fraction": config.utilization_step_fraction,
        "max_path_signatures": config.max_path_signatures,
        "seed": config.seed,
    }


def config_from_dict(data: dict) -> SweepConfig:
    """Rebuild a :class:`SweepConfig` from :func:`config_to_dict` output."""
    return SweepConfig(
        samples_per_point=int(data["samples_per_point"]),
        utilization_step_fraction=float(data["utilization_step_fraction"]),
        max_path_signatures=int(data["max_path_signatures"]),
        seed=None if data["seed"] is None else int(data["seed"]),
    )


def config_hash(manifest: dict) -> str:
    """Hash of the configuration part of a manifest.

    Only the fields that determine the results enter the hash, so cosmetic
    manifest additions (timestamps, notes) never invalidate a store.
    """
    payload = {
        "format_version": manifest["format_version"],
        "scenarios": manifest["scenarios"],
        "sweep_config": manifest["sweep_config"],
        "protocols": manifest["protocols"],
        "mode": manifest["mode"],
        "simulation": manifest.get("simulation"),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def campaign_manifest(
    plan: CampaignPlan,
    workers: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
) -> dict:
    """Build the manifest persisted alongside a campaign's results.

    ``workers`` records the launch's worker-process count as a purely
    informational key (``status`` uses it for a parallel ETA).  ``shard``
    — an ``(index, count)`` pair — marks the store as holding one shard of
    the campaign grid.  Both are deliberately **outside**
    :func:`config_hash`: results are identical at any worker count, and
    every shard of a campaign shares one configuration, so ``campaign
    merge`` can verify shard stores belong together by comparing hashes.
    """
    if plan.config.seed is None:
        raise ValueError(
            "a persisted campaign requires a concrete seed (SweepConfig.seed "
            "is None); otherwise resumed runs could not reproduce the streams"
        )
    manifest = {
        "format_version": manifest_format_version(plan.mode),
        "scenarios": [scenario_to_dict(s) for s in plan.scenarios],
        "sweep_config": config_to_dict(plan.config),
        "protocols": list(plan.protocol_names),
        "mode": plan.mode,
        "total_units": len(plan.units),
    }
    if plan.sim_config is not None:
        manifest["simulation"] = plan.sim_config.to_dict()
    manifest["config_hash"] = config_hash(manifest)
    if workers is not None:
        manifest["workers"] = int(workers)
    if shard is not None:
        index, count = shard
        # Validate through shard_units so manifest and execution agree on
        # what a legal shard spec is.
        shard_units(plan.units, index, count)
        manifest["shard"] = {"index": int(index), "count": int(count)}
    return manifest


def manifest_shard(manifest: dict) -> Optional[Tuple[int, int]]:
    """The ``(index, count)`` shard spec of a manifest, or ``None``."""
    shard = manifest.get("shard")
    if shard is None:
        return None
    return int(shard["index"]), int(shard["count"])


def plan_from_manifest(manifest: dict) -> CampaignPlan:
    """Rebuild the full campaign plan (including unit seeds) from a manifest."""
    scenarios = [scenario_from_dict(d) for d in manifest["scenarios"]]
    config = config_from_dict(manifest["sweep_config"])
    mode = manifest["mode"]
    sim_config = (
        SimulationConfig.from_dict(manifest["simulation"])
        if manifest.get("simulation") is not None
        else None
    )
    return plan_campaign(
        scenarios, config, manifest["protocols"], mode=mode, sim_config=sim_config
    )


# --------------------------------------------------------------------------- #
# Scenario selection (grids and filter expressions)
# --------------------------------------------------------------------------- #
#: Filter keys understood by :func:`parse_filter` → scenario attribute.
FILTER_KEYS = {
    "m": "platform_size",
    "nr": "resource_count_range",
    "U": "average_utilization",
    "pr": "access_probability",
    "N": "request_count_range",
    "L": "cs_length_range",
}


def _parse_range(text: str) -> Tuple[float, float]:
    for separator in ("-", "_", ":"):
        if separator in text:
            low, high = text.split(separator, 1)
            return float(low), float(high)
    raise ValueError(f"expected a range like '4-8', got {text!r}")


def parse_filter(expression: str) -> dict:
    """Parse a filter expression like ``m=16,pr=0.5,nr=4-8``.

    Supported keys: ``m`` (platform size), ``nr`` (resource-count range),
    ``U`` (average utilization), ``pr`` (access probability), ``N``
    (request-count range, either the upper bound or ``lo-hi``), ``L``
    (critical-section length range ``lo-hi``).  Terms combine with AND.
    """
    criteria: dict = {}
    for term in expression.split(","):
        term = term.strip()
        if not term:
            continue
        if "=" not in term:
            raise ValueError(f"filter term {term!r} is not of the form key=value")
        key, value = (part.strip() for part in term.split("=", 1))
        if key not in FILTER_KEYS:
            raise ValueError(
                f"unknown filter key {key!r}; valid keys: {', '.join(FILTER_KEYS)}"
            )
        if key == "m":
            criteria[key] = int(value)
        elif key in ("U", "pr"):
            criteria[key] = float(value)
        elif key == "N" and "-" not in value and "_" not in value and ":" not in value:
            # Bare upper bound: N=50 matches any request range ending at 50.
            criteria[key] = int(value)
        else:
            criteria[key] = _parse_range(value)
    return criteria


def _matches(scenario: Scenario, criteria: dict) -> bool:
    for key, expected in criteria.items():
        actual = getattr(scenario, FILTER_KEYS[key])
        if key == "N" and isinstance(expected, int):
            if scenario.request_count_range[1] != expected:
                return False
        elif isinstance(expected, tuple):
            if tuple(float(v) for v in actual) != tuple(float(v) for v in expected):
                return False
        elif actual != expected:
            return False
    return True


def select_scenarios(
    scenarios: Sequence[Scenario], expression: Optional[str] = None
) -> List[Scenario]:
    """Scenarios matching a filter expression (all of them when ``None``)."""
    if not expression:
        return list(scenarios)
    criteria = parse_filter(expression)
    return [s for s in scenarios if _matches(s, criteria)]


def grid_scenarios(
    grid: str, num_vertices_range: Tuple[int, int] = (10, 100)
) -> List[Scenario]:
    """Named scenario grids exposed by the CLI (``full`` or ``fig2``)."""
    if grid == "full":
        return full_grid(num_vertices_range=num_vertices_range)
    if grid == "fig2":
        figures = figure2_scenarios(num_vertices_range=num_vertices_range)
        return [figures[key] for key in sorted(figures)]
    raise ValueError(f"unknown grid {grid!r}; expected 'full' or 'fig2'")
