"""Merge partial campaign stores — shards or interrupted hosts — into one.

A sharded campaign (``campaign run --shard I/N``) runs each deterministic
slice of the work-unit grid in its own store directory, possibly on its
own host; a crashed host leaves a partial store behind.  :func:`merge_stores`
combines any number of such partial stores into a single store that
``report``/``resume``/``status``/``profile`` consume unchanged:

* Every source (and the destination, when it already exists) must carry
  the **same configuration hash** and manifest format version — merging
  results of different campaigns is refused outright.
* Work units are **deduplicated by unit id**.  Units are deterministic, so
  duplicate records must agree; they are verified field-by-field (ignoring
  :data:`VOLATILE_FIELDS`, which the writing host stamps) and a
  disagreement is a hard :class:`MergeConflictError` — it means two runs
  computed different results for the same seeded unit, which is corruption
  or a soundness bug, never something to paper over.
* Merged records are written in **plan order**, so a merged store's
  ``results.jsonl`` is byte-comparable to the store of one uninterrupted
  serial run (module volatile fields).
* Quarantine records travel along, except those **healed** by a
  successful record from any source (a unit that failed on one shard but
  completed on another is not failed).

The merged manifest is the shared campaign manifest without any shard
spec: the merged store owns the whole grid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .planner import plan_from_manifest
from .store import CampaignStore, StoreError

#: Record fields stamped by the writing host rather than computed by the
#: unit — legitimately different between two executions of the same unit,
#: so ignored when verifying that duplicate records agree.
VOLATILE_FIELDS = ("completed_at", "elapsed_seconds")


class MergeError(StoreError):
    """A store merge could not be performed (mismatched campaigns, etc.)."""


class MergeConflictError(MergeError):
    """Two sources hold *different* results for the same work unit.

    Work units are deterministic functions of their seed, so this is never
    benign: one of the stores is corrupt or was produced by diverging
    code.  The merge stops without writing the conflicting unit.
    """


@dataclass(frozen=True)
class MergeReport:
    """What a completed merge did — the CLI's summary payload."""

    destination: str
    sources: Tuple[str, ...]
    #: Distinct completed units now in the destination store.
    units: int
    #: Total units of the campaign plan (``units == total_units`` means the
    #: merged store is complete).
    total_units: int
    #: Duplicate records encountered across sources (each verified equal).
    duplicates: int
    #: Records newly appended to the destination (0 when everything was
    #: already there).
    written: int
    #: Unresolved quarantine records carried into the destination.
    quarantined: int
    #: Quarantine records dropped because some source completed the unit.
    healed: int

    @property
    def complete(self) -> bool:
        """Whether the merged store covers the whole campaign plan."""
        return self.units >= self.total_units


def _comparable(record: dict) -> str:
    """Canonical form of a record with host-stamped fields stripped."""
    payload = {
        key: value
        for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def merge_stores(sources: Sequence[str], destination: str) -> MergeReport:
    """Merge the partial stores ``sources`` into ``destination``.

    The destination may be a fresh directory or an existing store of the
    same campaign (its records participate in deduplication and are never
    rewritten).  Returns a :class:`MergeReport`; raises :class:`MergeError`
    on mismatched campaigns or malformed inputs and
    :class:`MergeConflictError` when two sources disagree on a unit.
    """
    if not sources:
        raise MergeError("nothing to merge: no source stores given")
    dest_real = os.path.realpath(destination)
    for source in sources:
        if os.path.realpath(source) == dest_real:
            raise MergeError(
                f"destination {destination!r} is also a merge source; "
                "merge into a separate directory"
            )

    source_stores = [CampaignStore(directory) for directory in sources]
    manifests = [store.read_manifest() for store in source_stores]
    reference = manifests[0]
    for store, manifest in zip(source_stores[1:], manifests[1:]):
        if manifest["config_hash"] != reference["config_hash"]:
            raise MergeError(
                f"store {store.directory!r} holds a different campaign "
                f"(config hash {manifest['config_hash'][:12]}…) than "
                f"{source_stores[0].directory!r} "
                f"({reference['config_hash'][:12]}…); only shards of one "
                "campaign can be merged"
            )

    # The merged store owns the whole grid: same campaign, no shard spec.
    merged_manifest = {
        key: value for key, value in reference.items() if key != "shard"
    }
    plan = plan_from_manifest(merged_manifest)
    known_ids = set(plan.unit_ids)

    dest_store = CampaignStore(destination)
    dest_store.initialize(merged_manifest)
    existing = dest_store.load_records()

    merged: Dict[str, dict] = dict(existing)
    origin: Dict[str, str] = {
        unit_id: destination for unit_id in existing
    }
    duplicates = 0
    for store, manifest in zip(source_stores, manifests):
        for unit_id, record in store.load_records().items():
            if unit_id not in known_ids:
                raise MergeError(
                    f"store {store.directory!r} holds unit {unit_id!r}, "
                    "which is not part of this campaign's plan; the store "
                    "is corrupt"
                )
            held = merged.get(unit_id)
            if held is None:
                merged[unit_id] = record
                origin[unit_id] = store.directory
                continue
            duplicates += 1
            if _comparable(held) != _comparable(record):
                raise MergeConflictError(
                    f"unit {unit_id!r} differs between "
                    f"{origin[unit_id]!r} and {store.directory!r}; "
                    "deterministic units must agree — one store is corrupt "
                    "or was produced by diverging code"
                )

    written = 0
    for unit_id in plan.unit_ids:
        if unit_id in merged and unit_id not in existing:
            dest_store.append(merged[unit_id])
            written += 1

    # Quarantine records: the last verdict per unit wins across sources
    # (in argument order); a unit completed anywhere is healed.
    quarantine: Dict[str, dict] = dict(dest_store.load_quarantine())
    already = set(quarantine)
    healed = 0
    for store in source_stores:
        for unit_id, record in store.load_quarantine().items():
            quarantine[unit_id] = record
    for unit_id in sorted(quarantine):
        if unit_id in merged:
            healed += 1
            continue
        if unit_id not in already:
            dest_store.append_quarantine(quarantine[unit_id])
    unresolved = sum(
        1 for unit_id in quarantine if unit_id not in merged
    )

    return MergeReport(
        destination=destination,
        sources=tuple(store.directory for store in source_stores),
        units=len(merged),
        total_units=len(plan.unit_ids),
        duplicates=duplicates,
        written=written,
        quarantined=unresolved,
        healed=healed,
    )
