"""Deterministic fault injection for exercising campaign crash recovery.

Crash-recovery code that is only ever exercised by real crashes is code
that rots.  This module makes the failure modes of a campaign *plannable*:
a :class:`FaultPlan` is a seeded, JSON-serialisable description of which
work units misbehave and how — raise inside the unit runner, kill the
worker process outright (``os._exit``), or stall past the unit deadline —
plus two store-corruption helpers (:func:`tear_results_tail`,
:func:`leave_stale_manifest_tmp`) that reproduce the artefacts of a writer
killed mid-write.

Activation is environment-based so the plan crosses the process-pool
boundary without touching any executor signature: the executor (and every
spawned worker) calls :func:`active_plan`, which reads the plan file named
by :data:`ENV_VAR`.  Determinism and *transience* are both first-class:

* **Selection** is a pure function of ``(plan seed, fault kind, unit id)``
  — the same plan always poisons the same units, at any worker count, so
  tests can pin exactly which units fail.
* **Firing budgets** (``times``) are enforced through marker files in the
  plan's ``state_dir``, claimed with ``O_CREAT | O_EXCL`` so concurrent
  workers — and *re-spawned* workers after a kill — agree on how often a
  fault has fired.  A ``times=1`` kill therefore behaves like a real
  transient crash: it fires once, and the retried unit succeeds.

The harness is strictly a test/CI facility: with :data:`ENV_VAR` unset,
:func:`active_plan` returns ``None`` and the executor's fault hook is a
single dictionary lookup.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Environment variable naming the JSON fault-plan file; set for a campaign
#: process and inherited by every spawned worker.
ENV_VAR = "REPRO_FAULT_PLAN"

#: Fault kinds a plan can inject inside the unit runner.
FAULT_RAISE = "raise"  # raise FaultInjected inside the unit (poison unit)
FAULT_KILL = "kill"  # os._exit the worker mid-unit (OOM-kill / segfault)
FAULT_SLEEP = "sleep"  # stall the unit (deadline / timeout exercise)
FAULT_KINDS = (FAULT_RAISE, FAULT_KILL, FAULT_SLEEP)

#: Exit status used by the ``kill`` fault — matches the status of a
#: SIGKILL-ed process (128 + 9), the case the recovery path is written for.
KILL_EXIT_STATUS = 137


class FaultInjected(RuntimeError):
    """The exception raised inside a work unit by a ``raise`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what to do, to which units, how often.

    ``unit_ids`` pins the fault to explicit units; an empty tuple selects
    units by hashing instead: the fault fires on units whose selection
    digest is ``0 mod every`` (deterministic in the plan seed, the fault
    kind, and the unit id — roughly one unit in ``every``).  ``times``
    caps total firings per unit across *all* processes and retries
    (``0`` = unlimited); ``seconds`` is the stall length of ``sleep``
    faults.
    """

    kind: str
    every: int = 1
    times: int = 1
    seconds: float = 0.0
    unit_ids: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.every < 1:
            raise ValueError(f"every must be at least 1, got {self.every}")
        if self.times < 0:
            raise ValueError(f"times must be non-negative, got {self.times}")

    def to_dict(self) -> dict:
        """JSON-serialisable form (the plan-file entry)."""
        return {
            "kind": self.kind,
            "every": self.every,
            "times": self.times,
            "seconds": self.seconds,
            "unit_ids": list(self.unit_ids),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            kind=str(data["kind"]),
            every=int(data.get("every", 1)),
            times=int(data.get("times", 1)),
            seconds=float(data.get("seconds", 0.0)),
            unit_ids=tuple(data.get("unit_ids", ())),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs plus the marker directory for budgets."""

    faults: Tuple[FaultSpec, ...]
    seed: int = 0
    #: Directory holding the at-most-once firing markers.  Required when
    #: any fault has a finite ``times`` budget.
    state_dir: str = ""

    def __post_init__(self) -> None:
        if any(f.times for f in self.faults) and not self.state_dir:
            raise ValueError(
                "a plan with times-limited faults needs a state_dir for its "
                "firing markers"
            )

    # ------------------------------------------------------------------ #
    # Selection and budget claims
    # ------------------------------------------------------------------ #
    def selects(self, spec: FaultSpec, unit_id: str) -> bool:
        """Whether ``spec`` targets ``unit_id`` under this plan's seed."""
        if spec.unit_ids:
            return unit_id in spec.unit_ids
        digest = hashlib.sha256(
            f"{self.seed}:{spec.kind}:{unit_id}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") % spec.every == 0

    def _marker_base(self, spec: FaultSpec, unit_id: str) -> str:
        token = hashlib.sha256(
            f"{spec.kind}:{unit_id}".encode("utf-8")
        ).hexdigest()[:24]
        return os.path.join(self.state_dir, f"{spec.kind}-{token}")

    def _claim(self, spec: FaultSpec, unit_id: str) -> bool:
        """Atomically claim one firing slot of ``spec`` for ``unit_id``.

        Each slot is a marker file created with ``O_CREAT | O_EXCL`` — a
        worker that wins the creation race owns that firing; once all
        ``times`` slots exist the budget is spent and the fault stays
        quiet.  Markers are claimed *before* the fault acts, so even an
        ``os._exit`` immediately afterwards cannot double-fire.
        """
        if spec.times == 0:
            return True
        os.makedirs(self.state_dir, exist_ok=True)
        base = self._marker_base(spec, unit_id)
        for slot in range(spec.times):
            try:
                fd = os.open(f"{base}.{slot}", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    def fired(self, kind: str, unit_id: str) -> int:
        """How many firing slots of ``kind`` are spent for ``unit_id``."""
        count = 0
        for spec in self.faults:
            if spec.kind != kind or not spec.times:
                continue
            base = self._marker_base(spec, unit_id)
            count += sum(
                1 for slot in range(spec.times) if os.path.exists(f"{base}.{slot}")
            )
        return count

    # ------------------------------------------------------------------ #
    # Firing
    # ------------------------------------------------------------------ #
    def fire(self, unit_id: str, allow_exit: bool = True) -> None:
        """Fire every due fault for ``unit_id`` (called by the unit runner).

        ``allow_exit=False`` — the in-process (``workers <= 1``) execution
        path — skips ``kill`` faults entirely: exiting would take down the
        campaign process itself, which is not the failure mode the fault
        models (there is no worker to kill and no parent left to recover).
        """
        for spec in self.faults:
            if not self.selects(spec, unit_id):
                continue
            if spec.kind == FAULT_KILL and not allow_exit:
                continue
            if not self._claim(spec, unit_id):
                continue
            if spec.kind == FAULT_RAISE:
                raise FaultInjected(
                    f"injected failure in unit {unit_id} (plan seed {self.seed})"
                )
            if spec.kind == FAULT_KILL:
                os._exit(KILL_EXIT_STATUS)
            if spec.kind == FAULT_SLEEP:
                time.sleep(spec.seconds)

    # ------------------------------------------------------------------ #
    # (De)serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable form (the plan file's contents)."""
        return {
            "seed": self.seed,
            "state_dir": self.state_dir,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())),
            seed=int(data.get("seed", 0)),
            state_dir=str(data.get("state_dir", "")),
        )


def write_plan(plan: FaultPlan, path: str) -> str:
    """Persist ``plan`` as the JSON file :func:`load_plan` reads; returns
    ``path`` (convenient for ``env[ENV_VAR] = write_plan(...)``)."""
    with open(path, "w") as handle:
        json.dump(plan.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_plan(path: str) -> FaultPlan:
    """Load a fault plan from its JSON file."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path!r} is not a fault-plan file")
    return FaultPlan.from_dict(data)


#: Cache of loaded plans keyed by path, so the per-unit hook costs one
#: ``os.environ`` lookup plus one dict hit.
_PLAN_CACHE: Dict[str, FaultPlan] = {}


def active_plan() -> Optional[FaultPlan]:
    """The fault plan named by :data:`ENV_VAR`, or ``None`` when unset.

    Loaded once per process and cached by path; workers inherit the
    environment from the campaign process, so the same plan governs every
    execution path without any executor plumbing.
    """
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    plan = _PLAN_CACHE.get(path)
    if plan is None:
        plan = load_plan(path)
        _PLAN_CACHE[path] = plan
    return plan


def clear_plan_cache() -> None:
    """Drop the per-process plan cache (tests switching plans mid-process)."""
    _PLAN_CACHE.clear()


# --------------------------------------------------------------------------- #
# Store-corruption helpers (writer-killed-mid-write artefacts)
# --------------------------------------------------------------------------- #
def tear_results_tail(
    directory: str, fragment: str = '{"unit_id":"torn-mid-wr'
) -> str:
    """Append a torn (newline-less) JSON fragment to a store's results file.

    Reproduces the exact artefact of a writer killed mid-``write``: the
    final line is incomplete, and every store reader must neither yield it
    nor advance past it.  Returns the results-file path.
    """
    path = os.path.join(directory, "results.jsonl")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(fragment)
    return path


def leave_stale_manifest_tmp(directory: str) -> str:
    """Drop a half-written ``manifest.json.tmp`` into a store directory.

    Reproduces a crash *between* the temporary-manifest write and its
    atomic ``os.replace``: the real manifest (if any) is intact, but a
    stale, truncated temporary lingers.  Store initialisation must ignore
    and clean it rather than trip over it.  Returns the tmp path.
    """
    path = os.path.join(directory, "manifest.json.tmp")
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write('{"format_version": 4, "scenarios": [{"plat')
    return path
