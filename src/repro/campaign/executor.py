"""Parallel executor: run work units in-process or across a process pool.

Work units are independent by construction (each carries its own seed), so
the executor is free to dispatch them in chunks to a
:class:`concurrent.futures.ProcessPoolExecutor` and collect them in
completion order; results are re-ordered to plan order before curves are
assembled, and every unit of a chunk is checkpointed into the store the
moment the chunk arrives (the auto chunk size is kept small so an
interrupted run forfeits little finished-but-unreported compute).  With
``workers <= 1`` the executor degrades gracefully
to plain in-process execution (no pool, no pickling) — the code path used by
:func:`repro.experiments.runner.run_sweep`.

The fault model is *contain, retry, quarantine* (see ``docs/robustness.md``):

* An exception inside one unit becomes a typed error
  :class:`UnitResult` instead of poisoning its chunk; the unit is retried
  up to :attr:`RetryPolicy.max_attempts` times and then **quarantined** —
  its error record appended to the store's ``quarantine.jsonl`` sibling
  file, never to ``results.jsonl``.
* A killed worker (OOM, segfault, injected ``os._exit``) breaks the whole
  pool; the executor respawns it with capped exponential backoff, requeues
  the in-flight chunks (bisecting multi-unit chunks so a repeatedly fatal
  chunk narrows toward its poison unit), and — once crashes repeat — falls
  back to one-unit-at-a-time isolation where blame is definite and the
  poison unit can be quarantined.
* An optional per-unit wall-clock deadline converts a hung unit into an
  ordinary timeout error (POSIX ``SIGALRM``; a no-op where unavailable).

Every recovery action is emitted as a typed :mod:`repro.obs` event
(``pool_crashed`` / ``unit_retried`` / ``unit_quarantined``), strictly
out-of-band as always.
"""

from __future__ import annotations

import contextlib
import functools
import math
import signal
import threading
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..analysis.dpcp_p import DEFAULT_MAX_PATH_SIGNATURES
from ..analysis.engine import compile_taskset
from ..analysis.interfaces import SchedulabilityTest
from ..experiments.metrics import ValidationRollup
from ..generation.randfixedsum import GenerationError
from ..generation.taskset_gen import generate_taskset
from ..model.platform import Platform
from ..obs.events import (
    Event,
    PoolCrashed,
    SimTruncated,
    SolveStats,
    UnitFinished,
    UnitQuarantined,
    UnitRetried,
    UnitStarted,
    UnitTelemetry,
)
from ..obs.log import get_logger
from ..obs.sink import EventSink
from ..obs.telemetry import active as _active_telemetry
from ..obs.telemetry import session as _telemetry_session
from ..sim.validation import (
    STATUS_RULE_ERROR,
    STATUS_TRUNCATED,
    SimulationConfig,
    validate_partition,
)
from ..utils.rng import ensure_rng, spawn_rngs
from . import faultinject
from .planner import MODE_SIMULATE, PROTOCOL_FACTORIES, CampaignPlan, WorkUnit
from .store import CampaignStore

#: Unit outcomes: a unit either produced its acceptance counts (``ok``) or
#: failed with a typed error (``error`` — quarantined, never checkpointed
#: into ``results.jsonl``).
OUTCOME_OK = "ok"
OUTCOME_ERROR = "error"

#: Well-known ``error_kind`` values the executor assigns itself (any other
#: kind is the raising exception's class name, e.g. ``FaultInjected``).
ERROR_KIND_TIMEOUT = "timeout"
ERROR_KIND_WORKER_CRASH = "worker_crash"

#: Cap on stored traceback text per error record (the tail is kept — the
#: raise site is what matters for triage).
_TRACEBACK_LIMIT = 4000


@dataclass
class UnitResult:
    """Outcome of one executed work unit."""

    unit_id: str
    scenario_id: str
    point_index: int
    utilization: float
    accepted: Dict[str, int] = field(default_factory=dict)
    evaluated: int = 0
    generation_failures: int = 0
    elapsed_seconds: float = 0.0
    #: Per-protocol validation evidence (simulate-mode units only).
    simulation: Optional[Dict[str, ValidationRollup]] = None
    #: Per-unit telemetry snapshot (:meth:`repro.obs.telemetry.Telemetry.to_dict`)
    #: when the unit ran with telemetry enabled.  Deliberately **excluded**
    #: from :meth:`to_record`: observability is out-of-band, and the
    #: ``results.jsonl`` bytes must be identical with telemetry on or off.
    telemetry: Optional[dict] = None
    #: ``ok`` or ``error`` (see :data:`OUTCOME_OK` / :data:`OUTCOME_ERROR`).
    outcome: str = OUTCOME_OK
    #: Error classification of a failed unit (``None`` for ``ok`` results).
    error_kind: Optional[str] = None
    #: One-line error description of a failed unit.
    error_message: Optional[str] = None
    #: Truncated traceback of a failed unit (in-band failures only).
    traceback: Optional[str] = None
    #: Execution attempts consumed by this unit (final value set by the
    #: executor's retry loop).
    attempts: int = 1

    def to_record(self) -> dict:
        """Serialise into a store record (telemetry excluded — out-of-band).

        Error fields appear only on ``error`` results, so the records of
        successful units are byte-identical to what pre-fault-tolerance
        code wrote — and ``results.jsonl`` stays comparable between faulty
        and fault-free runs of the same campaign.
        """
        record = {
            "unit_id": self.unit_id,
            "scenario_id": self.scenario_id,
            "point_index": self.point_index,
            "utilization": self.utilization,
            "accepted": dict(self.accepted),
            "evaluated": self.evaluated,
            "generation_failures": self.generation_failures,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }
        if self.simulation is not None:
            record["simulation"] = {
                name: rollup.to_dict() for name, rollup in self.simulation.items()
            }
        if self.outcome != OUTCOME_OK:
            record["outcome"] = self.outcome
            record["error_kind"] = self.error_kind
            record["error_message"] = self.error_message
            record["traceback"] = self.traceback
            record["attempts"] = self.attempts
        return record

    @classmethod
    def from_record(cls, record: dict) -> "UnitResult":
        """Rebuild a result from a store record."""
        simulation = None
        if record.get("simulation") is not None:
            simulation = {
                name: ValidationRollup.from_dict(data)
                for name, data in record["simulation"].items()
            }
        return cls(
            unit_id=record["unit_id"],
            scenario_id=record["scenario_id"],
            point_index=int(record["point_index"]),
            utilization=float(record["utilization"]),
            accepted={k: int(v) for k, v in record["accepted"].items()},
            evaluated=int(record["evaluated"]),
            generation_failures=int(record.get("generation_failures", 0)),
            elapsed_seconds=float(record.get("elapsed_seconds", 0.0)),
            simulation=simulation,
            outcome=str(record.get("outcome", OUTCOME_OK)),
            error_kind=record.get("error_kind"),
            error_message=record.get("error_message"),
            traceback=record.get("traceback"),
            attempts=int(record.get("attempts", 1)),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor retries failures and recovers a crashed pool.

    ``max_attempts`` bounds executions per unit (in-band errors and
    definite worker-crash blame both consume attempts) before the unit is
    quarantined.  ``backoff_base``/``backoff_cap`` shape the capped
    exponential pause before a pool respawn (``base * 2**(crashes-1)``,
    clamped to the cap; a zero base disables sleeping — used by tests).
    ``max_pool_respawns`` is how many *consecutive* pool crashes (no
    completed chunk in between) are tolerated before the executor falls
    back to one-unit-at-a-time isolation, where a crash blames exactly one
    unit and a poison unit is provably cornered.
    """

    max_attempts: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 8.0
    max_pool_respawns: int = 3

    def backoff_seconds(self, crashes: int) -> float:
        """Pause before the ``crashes``-th consecutive respawn."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_base * (2 ** max(0, crashes - 1)), self.backoff_cap)


class UnitDeadlineExceeded(Exception):
    """A work unit overran its per-unit wall-clock deadline."""


@contextlib.contextmanager
def _deadline_guard(seconds: Optional[float], unit_id: str):
    """Raise :class:`UnitDeadlineExceeded` if the body outruns ``seconds``.

    Implemented with ``SIGALRM``/``setitimer`` — pool workers execute
    chunks on their main thread, so the alarm interrupts even a tight
    compute loop.  Where alarms are unavailable (non-POSIX platforms, or a
    non-main thread) the guard is a documented no-op: deadlines are
    best-effort containment, not a scheduling guarantee.
    """
    if (
        not seconds
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise UnitDeadlineExceeded(
            f"unit {unit_id} exceeded its {seconds:g}s deadline"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: Callback invoked after every completed unit: ``(done, total, result)``.
#: ``result`` is ``None`` for units restored from the store on resume.
UnitProgress = Callable[[int, int, Optional[UnitResult]], None]


def build_protocols(
    names: Sequence[str], max_path_signatures: int = DEFAULT_MAX_PATH_SIGNATURES
) -> List[SchedulabilityTest]:
    """Instantiate schedulability tests from their report names.

    The name → factory mapping is
    :data:`repro.campaign.planner.PROTOCOL_FACTORIES` — the one place the
    paper's protocol suite is defined.
    """
    tests: List[SchedulabilityTest] = []
    for name in names:
        if name not in PROTOCOL_FACTORIES:
            raise ValueError(
                f"unknown protocol {name!r}; known: "
                f"{', '.join(PROTOCOL_FACTORIES)}"
            )
        tests.append(PROTOCOL_FACTORIES[name](max_path_signatures))
    _require_unique_names(tests)
    return tests


def _require_unique_names(protocols: Sequence[SchedulabilityTest]) -> None:
    """Duplicate protocol names would double-count into one ``accepted``
    slot, persisting corrupted records — refuse them up front."""
    names = [test.name for test in protocols]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ValueError(f"duplicate protocol name(s): {', '.join(sorted(duplicates))}")


def _needs_table_warmup(protocols: Sequence[SchedulabilityTest]) -> bool:
    """Whether any protocol in the suite reads the compiled analysis tables.

    Only kernel-engine tests consult :func:`compile_taskset`'s memo;
    reference-oracle suites would pay a pointless compile per sample, so
    the evaluation loops skip the warm-up entirely for them.
    """
    from ..analysis.engine.solver import ENGINE_KERNEL

    return any(
        getattr(test, "engine", None) == ENGINE_KERNEL for test in protocols
    )


def _generate_sample(unit, generation_config, sample_rng, result, tel):
    """Draw one task set, folding failures into ``result``; None on failure.

    Single-sourced between the per-sample loop and the arena-batched
    generation phase so both count ``generation_failures`` per sample and
    time ``phase.generation`` identically.
    """
    try:
        if tel is not None:
            with tel.span("phase.generation"):
                taskset = generate_taskset(
                    unit.utilization, generation_config, sample_rng
                )
        else:
            taskset = generate_taskset(
                unit.utilization, generation_config, sample_rng
            )
    except GenerationError:
        result.generation_failures += 1
        if tel is not None:
            tel.count("generation.failures")
        return None
    result.evaluated += 1
    if tel is not None:
        tel.count("generation.tasksets")
    return taskset


def _fold_verdict(result, test, verdict, on_accepted, tel) -> None:
    """Count one verdict into ``result`` and run the acceptance hook.

    The single place acceptance is tallied: the serial loop and the
    batched fold both come through here, sample-major and in protocol
    order, so acceptance counts and every ``on_accepted`` float fold are
    identical by construction across batch sizes.
    """
    if not verdict.schedulable:
        return
    result.accepted[test.name] += 1
    if on_accepted is not None:
        if tel is not None:
            with tel.span("phase.simulation"):
                on_accepted(test, verdict)
        else:
            on_accepted(test, verdict)


def _evaluate_samples(
    unit: WorkUnit,
    protocols: Sequence[SchedulabilityTest],
    result: UnitResult,
    on_accepted=None,
    batch_size: Optional[int] = None,
) -> None:
    """The one generation/analysis loop behind both unit runners.

    Draws the unit's samples (streams spawned from the unit's own seed,
    reproducing exactly the generators the serial sweep would have used),
    applies every protocol, and counts acceptances into ``result``.
    ``on_accepted(test, verdict)`` is invoked for every schedulable
    verdict — the simulate runner's validation hook.  Keeping this loop
    single-sourced is what makes the two modes' acceptance counts
    *identical by construction*, not merely by test.

    ``batch_size`` selects the execution strategy, never the results:
    ``None`` or ``1`` runs the per-sample reference loop below; any other
    value routes through :func:`_evaluate_batched`, which drains the
    unit's sample stream in chunks and solves each chunk's fixed points
    arena-wide (see :mod:`repro.analysis.engine.arena`).  Verdicts,
    acceptance counts, and ``on_accepted`` call order are identical by
    construction across every batch size.

    With an active telemetry session the loop times its phases
    (``phase.generation``, ``phase.analysis``, ``phase.simulation``) and
    each protocol's share (``protocol.<name>``); the guard is one global
    read when telemetry is off, so the hot loop stays unperturbed.
    """
    platform = Platform(unit.scenario.platform_size)
    generation_config = unit.scenario.generation_config()
    sample_rngs = spawn_rngs(ensure_rng(unit.seed), unit.samples_per_point)
    tel = _active_telemetry()
    needs_warm = _needs_table_warmup(protocols)
    if batch_size is not None and batch_size != 1:
        _evaluate_batched(
            unit, protocols, result, on_accepted, batch_size,
            platform, generation_config, sample_rngs, tel, needs_warm,
        )
        return
    for sample_rng in sample_rngs:
        taskset = _generate_sample(
            unit, generation_config, sample_rng, result, tel
        )
        if taskset is None:
            continue
        if needs_warm:
            # Warm the shared analysis tables: every kernel-engine protocol
            # below reads the same (weak-keyed, dies-with-the-taskset)
            # CompiledTaskset via compile_taskset's memo.
            compile_taskset(taskset)
        for test in protocols:
            if tel is not None:
                with tel.span("phase.analysis"), tel.span(f"protocol.{test.name}"):
                    verdict = test.test(taskset, platform)
            else:
                verdict = test.test(taskset, platform)
            _fold_verdict(result, test, verdict, on_accepted, tel)


def _evaluate_batched(
    unit: WorkUnit,
    protocols: Sequence[SchedulabilityTest],
    result: UnitResult,
    on_accepted,
    batch_size: int,
    platform: Platform,
    generation_config,
    sample_rngs,
    tel,
    needs_warm: bool,
) -> None:
    """Arena-batched strategy behind :func:`_evaluate_samples`.

    Per chunk of ``batch_size`` samples (``<= 0`` means the whole unit):
    generation first drains the chunk's sample stream — same RNG order,
    failures still counted per sample — then every arena-capable protocol
    runs arena-wide through :func:`repro.analysis.engine.arena.run_arena`
    while the rest fall back to per-sample calls (counted under
    ``arena.fallbacks``).  Verdicts are folded sample-major in protocol
    order, replaying the per-sample loop's exact tally and
    ``on_accepted`` sequence.
    """
    from ..analysis.engine.arena import arena_capable, run_arena

    arena_tests = [test for test in protocols if arena_capable(test)]
    fallback_tests = [test for test in protocols if not arena_capable(test)]
    chunk = len(sample_rngs) if batch_size <= 0 else batch_size
    for base in range(0, len(sample_rngs), chunk):
        tasksets = []
        for sample_rng in sample_rngs[base:base + chunk]:
            taskset = _generate_sample(
                unit, generation_config, sample_rng, result, tel
            )
            if taskset is None:
                continue
            if needs_warm:
                compile_taskset(taskset)
            tasksets.append(taskset)
        if not tasksets:
            continue
        verdicts: Dict[str, List] = {}
        if arena_tests:
            if tel is not None:
                with tel.span("phase.analysis"):
                    verdicts.update(run_arena(tasksets, platform, arena_tests))
            else:
                verdicts.update(run_arena(tasksets, platform, arena_tests))
        for test in fallback_tests:
            if tel is not None:
                tel.count("arena.fallbacks", len(tasksets))
            column = []
            for taskset in tasksets:
                if tel is not None:
                    with tel.span("phase.analysis"), \
                            tel.span(f"protocol.{test.name}"):
                        column.append(test.test(taskset, platform))
                else:
                    column.append(test.test(taskset, platform))
            verdicts[test.name] = column
        for index in range(len(tasksets)):
            for test in protocols:
                _fold_verdict(
                    result, test, verdicts[test.name][index], on_accepted, tel
                )


def execute_unit(
    unit: WorkUnit,
    protocols: Sequence[SchedulabilityTest],
    telemetry: bool = False,
    batch_size: Optional[int] = None,
) -> UnitResult:
    """Execute one work unit: generate the samples and apply every protocol.

    The sample streams are spawned from the unit's own seed, reproducing
    exactly the generators the serial sweep would have used for this point.
    With ``telemetry=True`` the unit runs inside its own
    :func:`repro.obs.telemetry.session` and its aggregated snapshot travels
    back in :attr:`UnitResult.telemetry` (never in the store record).
    ``batch_size`` picks the evaluation strategy (see
    :func:`_evaluate_samples`); results are identical across all values.
    """
    started = time.perf_counter()
    result = UnitResult(
        unit_id=unit.unit_id,
        scenario_id=unit.scenario.scenario_id,
        point_index=unit.point_index,
        utilization=unit.utilization,
        accepted={test.name: 0 for test in protocols},
    )
    if telemetry:
        with _telemetry_session() as tel:
            _evaluate_samples(unit, protocols, result, batch_size=batch_size)
            result.telemetry = tel.to_dict()
    else:
        _evaluate_samples(unit, protocols, result, batch_size=batch_size)
    result.elapsed_seconds = time.perf_counter() - started
    return result


def execute_simulation_unit(
    unit: WorkUnit,
    protocols: Sequence[SchedulabilityTest],
    sim_config: Optional[SimulationConfig] = None,
    telemetry: bool = False,
    batch_size: Optional[int] = None,
) -> UnitResult:
    """Execute one *validation* work unit: analyze, then simulate acceptances.

    Sample generation and the analysis pass are identical to
    :func:`execute_unit` (same seeds, same acceptance counts).  Every
    analysis-accepted task set is additionally run through the runtime
    simulator — under the *accepting protocol's* locking rules (DPCP-p,
    SPIN or LPP) — on the partition the analysis produced, and the
    observed/bound response-time ratios, deadline misses, invariant
    counters, and truncation outcomes are folded into one
    :class:`~repro.experiments.metrics.ValidationRollup` per protocol.
    ``telemetry`` behaves exactly as in :func:`execute_unit`.
    """
    sim_config = sim_config or SimulationConfig()
    started = time.perf_counter()
    result = UnitResult(
        unit_id=unit.unit_id,
        scenario_id=unit.scenario.scenario_id,
        point_index=unit.point_index,
        utilization=unit.utilization,
        accepted={test.name: 0 for test in protocols},
        simulation={test.name: ValidationRollup() for test in protocols},
    )

    def validate(test, verdict) -> None:
        rollup = result.simulation[test.name]
        outcome = validate_partition(verdict.partition, sim_config, protocol=test.name)
        rollup.simulated += 1
        if outcome.status == STATUS_TRUNCATED:
            rollup.truncated += 1
        elif outcome.status == STATUS_RULE_ERROR:
            rollup.rule_failures += 1
        rollup.mutual_exclusion_violations += outcome.mutual_exclusion_violations
        rollup.processor_overlaps += outcome.processor_overlaps
        rollup.spin_exclusivity_violations += outcome.spin_exclusivity_violations
        rollup.deadline_misses += outcome.deadline_misses
        rollup.jobs_finished += outcome.jobs_finished
        rollup.events += outcome.events
        for task_id, observed in sorted(outcome.observed_response_times.items()):
            rollup.ratio.add(observed / verdict.task_analyses[task_id].wcrt)

    if telemetry:
        with _telemetry_session() as tel:
            _evaluate_samples(
                unit, protocols, result,
                on_accepted=validate, batch_size=batch_size,
            )
            result.telemetry = tel.to_dict()
    else:
        _evaluate_samples(
            unit, protocols, result,
            on_accepted=validate, batch_size=batch_size,
        )
    result.elapsed_seconds = time.perf_counter() - started
    return result


#: A unit runner: turns one work unit + protocol suite into a result.  Must
#: be pickleable (top-level function or ``functools.partial`` of one) so the
#: process pool can ship it to workers.
UnitRunner = Callable[[WorkUnit, Sequence[SchedulabilityTest]], UnitResult]


def plan_runner(
    plan: CampaignPlan,
    telemetry: bool = False,
    batch_size: Optional[int] = None,
) -> UnitRunner:
    """The unit runner a plan's mode calls for (pickleable).

    ``telemetry=True`` makes every unit run inside its own telemetry
    session and carry its snapshot home in :attr:`UnitResult.telemetry`
    (a plain dict, so it pickles across the process-pool boundary).
    ``batch_size`` selects the arena-batched evaluation strategy per unit
    (see :func:`_evaluate_samples`); like ``workers``, it changes how the
    campaign executes, never what it records.
    """
    if plan.mode == MODE_SIMULATE:
        return functools.partial(
            execute_simulation_unit,
            sim_config=plan.sim_config,
            telemetry=telemetry,
            batch_size=batch_size,
        )
    if telemetry or batch_size is not None:
        return functools.partial(
            execute_unit, telemetry=telemetry, batch_size=batch_size
        )
    return execute_unit


def _error_result(
    unit: WorkUnit, kind: str, message: str, trace: Optional[str] = None
) -> UnitResult:
    """Build the typed error :class:`UnitResult` of a failed unit."""
    return UnitResult(
        unit_id=unit.unit_id,
        scenario_id=unit.scenario.scenario_id,
        point_index=unit.point_index,
        utilization=unit.utilization,
        outcome=OUTCOME_ERROR,
        error_kind=kind,
        error_message=message,
        traceback=trace,
    )


def _run_unit_contained(
    unit: WorkUnit,
    protocols: Sequence[SchedulabilityTest],
    runner: UnitRunner,
    deadline: Optional[float] = None,
    allow_exit: bool = True,
) -> UnitResult:
    """Execute one unit, converting any exception into a typed error result.

    This is the crash-containment boundary: whatever the unit runner
    raises — a real bug, an injected :class:`~.faultinject.FaultInjected`,
    or a :class:`UnitDeadlineExceeded` from the per-unit deadline — comes
    back as an ``error`` :class:`UnitResult` carrying the error kind, the
    message, and a truncated traceback, so the rest of the chunk (and the
    worker) survives.  ``allow_exit`` is forwarded to the fault-injection
    hook (the in-process path must not let a ``kill`` fault exit the
    campaign process itself).
    """
    started = time.perf_counter()
    try:
        with _deadline_guard(deadline, unit.unit_id):
            plan = faultinject.active_plan()
            if plan is not None:
                plan.fire(unit.unit_id, allow_exit=allow_exit)
            return runner(unit, protocols)
    except Exception as error:  # noqa: BLE001 - containment boundary
        if isinstance(error, UnitDeadlineExceeded):
            kind = ERROR_KIND_TIMEOUT
        else:
            kind = type(error).__name__
        trace = traceback_module.format_exc()
        if len(trace) > _TRACEBACK_LIMIT:
            trace = "…" + trace[-_TRACEBACK_LIMIT:]
        result = _error_result(unit, kind, str(error), trace)
        result.elapsed_seconds = time.perf_counter() - started
        return result


def _execute_chunk(
    units: Sequence[WorkUnit],
    protocols: Sequence[SchedulabilityTest],
    runner: UnitRunner = execute_unit,
    deadline: Optional[float] = None,
) -> List[UnitResult]:
    """Worker entry point: execute a chunk of units in one process call.

    Each unit is individually contained, so one failing unit yields one
    error result without forfeiting the rest of its chunk.
    """
    return [
        _run_unit_contained(unit, protocols, runner, deadline, allow_exit=True)
        for unit in units
    ]


def _chunk(units: List[WorkUnit], size: int) -> List[List[WorkUnit]]:
    return [units[i : i + size] for i in range(0, len(units), size)]


def _emit(events: Optional[EventSink], event: Event) -> None:
    """Emit one event, downgrading I/O failures to a logged warning.

    Observability must never fail a campaign — but a sink that stopped
    persisting is itself worth observing, so instead of silently
    swallowing the ``OSError`` we surface it once per failure through
    :mod:`repro.obs.log`.
    """
    if events is None:
        return
    try:
        events.emit(event)
    except OSError as error:
        get_logger("campaign.executor").warning(
            "event emission failed (%s: %s); continuing without it",
            event.TYPE,
            error,
        )


def _emit_unit_finished(events: Optional[EventSink], result: UnitResult) -> None:
    """Emit the per-unit events of one finished unit (best-effort).

    Emits :class:`~repro.obs.events.UnitFinished` always, and — when the
    unit ran with telemetry — the full
    :class:`~repro.obs.events.UnitTelemetry` snapshot plus the derived
    :class:`~repro.obs.events.SolveStats` /
    :class:`~repro.obs.events.SimTruncated` digests.  Event I/O failures
    are logged and swallowed: observability must never fail a campaign.
    """
    if events is None:
        return
    try:
        events.emit(
            UnitFinished(
                unit_id=result.unit_id,
                scenario_id=result.scenario_id,
                point_index=result.point_index,
                utilization=result.utilization,
                elapsed_seconds=round(result.elapsed_seconds, 6),
                evaluated=result.evaluated,
                generation_failures=result.generation_failures,
            )
        )
        if not result.telemetry:
            return
        events.emit(
            UnitTelemetry(unit_id=result.unit_id, telemetry=result.telemetry)
        )
        counters = result.telemetry.get("counters", {})
        events.emit(
            SolveStats(
                unit_id=result.unit_id,
                scalar_calls=counters.get("solver.scalar.calls", 0),
                batched_calls=counters.get("solver.batched.calls", 0),
                converged=(
                    counters.get("solver.scalar.converged", 0)
                    + counters.get("solver.batched.converged", 0)
                ),
                diverged=(
                    counters.get("solver.scalar.diverged", 0)
                    + counters.get("solver.batched.diverged", 0)
                ),
                no_convergence=(
                    counters.get("solver.scalar.no_convergence", 0)
                    + counters.get("solver.batched.no_convergence", 0)
                ),
                iterations=counters.get("solver.scalar.iterations", 0),
            )
        )
        if counters.get("sim.truncated"):
            events.emit(
                SimTruncated(
                    unit_id=result.unit_id,
                    truncated=counters.get("sim.truncated", 0),
                    simulated=counters.get("sim.runs", 0),
                    events=counters.get("sim.events", 0),
                )
            )
    except OSError as error:
        get_logger("campaign.executor").warning(
            "unit-finished event emission failed for %s (%s); continuing",
            result.unit_id,
            error,
        )


def execute_units(
    units: Sequence[WorkUnit],
    protocols: Sequence[SchedulabilityTest],
    *,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    progress: Optional[UnitProgress] = None,
    chunk_size: Optional[int] = None,
    max_units: Optional[int] = None,
    runner: UnitRunner = execute_unit,
    events: Optional[EventSink] = None,
    retry: Optional[RetryPolicy] = None,
    unit_deadline: Optional[float] = None,
) -> List[UnitResult]:
    """Execute ``units``, returning their *successful* results in input order.

    When a ``store`` is given, units that are already checkpointed are
    restored instead of re-executed, and every newly completed unit is
    appended to the store immediately (resume safety).  ``max_units`` caps
    the number of *newly executed* units — useful for smoke tests and for
    demonstrating interrupted runs.  ``runner`` selects how one unit is
    executed (analysis only, or analysis + validation simulation); it must
    be pickleable for ``workers > 1``.  An optional ``events`` sink
    receives :class:`~repro.obs.events.UnitStarted` on dispatch and the
    per-unit finish events (out-of-band; emission failures never fail the
    run, and restored units emit nothing).

    Failures are contained, retried per ``retry`` (default
    :class:`RetryPolicy`), and finally quarantined: the error record goes
    to the store's ``quarantine.jsonl`` and the unit is *absent* from the
    returned list — the campaign completes the rest.  ``unit_deadline``
    bounds each unit's wall-clock seconds (POSIX only; overruns become
    ``timeout`` errors).  A crashed worker pool is respawned with capped
    exponential backoff; see the module docstring for the blame protocol.
    """
    _require_unique_names(protocols)
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
    if max_units is not None and max_units < 0:
        raise ValueError(f"max_units must be non-negative, got {max_units}")
    policy = retry or RetryPolicy()
    log = get_logger("campaign.executor")
    units = list(units)
    total = len(units)
    completed: Dict[str, UnitResult] = {}
    if store is not None:
        records = store.load_records()
        for unit in units:
            record = records.get(unit.unit_id)
            if record is not None:
                completed[unit.unit_id] = UnitResult.from_record(record)
    done = len(completed)
    if progress is not None and done:
        progress(done, total, None)

    pending = [unit for unit in units if unit.unit_id not in completed]
    if max_units is not None:
        pending = pending[:max_units]
    unit_by_id = {unit.unit_id: unit for unit in pending}
    attempts: Dict[str, int] = {}

    def started(units_batch: Sequence[WorkUnit]) -> None:
        for unit in units_batch:
            _emit(events, UnitStarted(unit_id=unit.unit_id))

    def finish(result: UnitResult) -> None:
        nonlocal done
        if store is not None:
            store.append(result.to_record())
        _emit_unit_finished(events, result)
        completed[result.unit_id] = result
        done += 1
        if progress is not None:
            progress(done, total, result)

    def quarantine(result: UnitResult) -> None:
        nonlocal done
        if store is not None:
            store.append_quarantine(result.to_record())
        _emit(
            events,
            UnitQuarantined(
                unit_id=result.unit_id,
                error_kind=result.error_kind or "",
                attempts=result.attempts,
                error_message=result.error_message or "",
            ),
        )
        log.warning(
            "unit %s quarantined after %d attempt(s): %s: %s",
            result.unit_id,
            result.attempts,
            result.error_kind,
            result.error_message,
        )
        done += 1
        if progress is not None:
            progress(done, total, result)

    def handle_result(result: UnitResult) -> Optional[WorkUnit]:
        """Fold one contained result; returns a unit to requeue for retry."""
        if result.outcome == OUTCOME_OK:
            finish(result)
            return None
        count = attempts.get(result.unit_id, 0) + 1
        attempts[result.unit_id] = count
        result.attempts = count
        if count < policy.max_attempts:
            _emit(
                events,
                UnitRetried(
                    unit_id=result.unit_id,
                    attempt=count,
                    error_kind=result.error_kind or "",
                ),
            )
            log.warning(
                "unit %s failed (attempt %d/%d, %s); retrying",
                result.unit_id,
                count,
                policy.max_attempts,
                result.error_kind,
            )
            return unit_by_id[result.unit_id]
        quarantine(result)
        return None

    if workers <= 1 or len(pending) <= 1:
        run_queue: Deque[WorkUnit] = deque(pending)
        while run_queue:
            unit = run_queue.popleft()
            started([unit])
            result = _run_unit_contained(
                unit, protocols, runner, unit_deadline, allow_exit=False
            )
            requeue = handle_result(result)
            if requeue is not None:
                run_queue.appendleft(requeue)
    else:
        # A chunk is checkpointed only when it returns as a whole, so the
        # auto size stays small: a killed run re-executes at most
        # workers * size units of finished-but-unreported compute.
        # Pass --chunk-size to trade that window for dispatch overhead.
        size = chunk_size or max(1, min(4, math.ceil(len(pending) / (workers * 4))))
        queue: Deque[List[WorkUnit]] = deque(_chunk(pending, size))
        futures: Dict[object, List[WorkUnit]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        crashes = 0

        def submit_ready() -> None:
            """Submit queued chunks, respecting post-crash isolation.

            After ``max_pool_respawns`` consecutive crashes the executor
            isolates: one single-unit chunk in flight at a time, so the
            next crash blames exactly one unit.
            """
            nonlocal pool
            isolating = crashes >= policy.max_pool_respawns
            while queue:
                if isolating and futures:
                    return
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(workers, max(1, len(queue)))
                    )
                chunk = queue[0]
                if isolating and len(chunk) > 1:
                    queue.popleft()
                    for unit in reversed(chunk):
                        queue.appendleft([unit])
                    chunk = queue[0]
                started(chunk)
                future = pool.submit(
                    _execute_chunk, chunk, protocols, runner, unit_deadline
                )
                queue.popleft()
                futures[future] = chunk

        def process_future(future) -> None:
            for result in future.result():
                requeue = handle_result(result)
                if requeue is not None:
                    queue.appendleft([requeue])

        def on_pool_crash() -> None:
            """Recover from a dead pool: fold survivors, requeue, respawn."""
            nonlocal pool, crashes
            crashes += 1
            inflight: List[List[WorkUnit]] = []
            for future, chunk in list(futures.items()):
                if (
                    future.done()
                    and not future.cancelled()
                    and future.exception() is None
                ):
                    process_future(future)
                else:
                    inflight.append(chunk)
            futures.clear()
            if len(inflight) == 1 and len(inflight[0]) == 1:
                # Exactly one unit was in flight — the crash is its doing,
                # definitely: consume one of its attempts.
                unit = inflight[0][0]
                requeue = handle_result(
                    _error_result(
                        unit,
                        ERROR_KIND_WORKER_CRASH,
                        "worker process died while executing this unit",
                    )
                )
                if requeue is not None:
                    queue.appendleft([requeue])
            else:
                # Ambiguous blame: requeue the in-flight chunks, bisecting
                # multi-unit ones so a repeatedly fatal chunk narrows
                # toward its poison unit crash by crash.
                for chunk in reversed(inflight):
                    if len(chunk) > 1:
                        mid = (len(chunk) + 1) // 2
                        queue.appendleft(chunk[mid:])
                        queue.appendleft(chunk[:mid])
                    else:
                        queue.appendleft(chunk)
            if pool is not None:
                pool.shutdown(wait=False)
                pool = None
            backoff = policy.backoff_seconds(crashes)
            inflight_units = sum(len(chunk) for chunk in inflight)
            _emit(
                events,
                PoolCrashed(
                    respawn=crashes,
                    backoff_seconds=round(backoff, 6),
                    inflight_units=inflight_units,
                ),
            )
            log.warning(
                "worker pool crashed (consecutive crash %d, %d unit(s) "
                "requeued); respawning after %.2fs backoff",
                crashes,
                inflight_units,
                backoff,
            )
            if backoff:
                time.sleep(backoff)

        def submit_safe() -> None:
            try:
                submit_ready()
            except BrokenProcessPool:
                # The pool broke between a completed wait and our submit.
                on_pool_crash()

        try:
            while queue or futures:
                if not futures:
                    submit_safe()
                    if not futures:
                        continue
                finished, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                crashed = False
                for future in finished:
                    error = future.exception()
                    if isinstance(error, BrokenProcessPool):
                        crashed = True
                        break
                    if error is not None:
                        raise error
                    del futures[future]
                    process_future(future)
                    crashes = 0
                if crashed:
                    on_pool_crash()
                submit_safe()
        finally:
            # Cancel by hand instead of shutdown(cancel_futures=True): the
            # drain below needs the futures set either way.
            for future in futures:
                future.cancel()
            if pool is not None:
                pool.shutdown(wait=True)
            # In-flight chunks cannot be cancelled and run to completion
            # during the shutdown above — checkpoint what they produced
            # (e.g. on KeyboardInterrupt) instead of discarding compute
            # that resume would have to redo.  No progress callbacks here:
            # this may run during exception unwind.  Error results are not
            # drained: retry accounting is gone, and quarantining on the
            # way out would turn a transient failure terminal.
            for future in futures:
                if future.cancelled() or not future.done() or future.exception():
                    continue
                for result in future.result():
                    if result.outcome != OUTCOME_OK:
                        continue
                    if result.unit_id not in completed:
                        if store is not None:
                            store.append(result.to_record())
                        _emit_unit_finished(events, result)
                        completed[result.unit_id] = result

    return [completed[unit.unit_id] for unit in units if unit.unit_id in completed]


def execute_plan(
    plan: CampaignPlan,
    *,
    protocols: Optional[Sequence[SchedulabilityTest]] = None,
    workers: int = 1,
    store: Optional[CampaignStore] = None,
    progress: Optional[UnitProgress] = None,
    chunk_size: Optional[int] = None,
    max_units: Optional[int] = None,
    telemetry: bool = False,
    events: Optional[EventSink] = None,
    retry: Optional[RetryPolicy] = None,
    unit_deadline: Optional[float] = None,
) -> List[UnitResult]:
    """Execute every unit of a planned campaign (see :func:`execute_units`).

    The unit runner follows the plan's mode: simulate-mode plans run every
    unit through :func:`execute_simulation_unit` with the plan's
    :class:`~repro.sim.validation.SimulationConfig`.  ``telemetry`` turns
    on per-unit telemetry aggregation and ``events`` receives the unit
    lifecycle events — both strictly out-of-band (``results.jsonl`` bytes
    are identical either way).  ``retry`` and ``unit_deadline`` configure
    the fault handling of :func:`execute_units`.
    """
    if protocols is None:
        protocols = build_protocols(
            plan.protocol_names, plan.config.max_path_signatures
        )
    return execute_units(
        plan.units,
        protocols,
        workers=workers,
        store=store,
        progress=progress,
        chunk_size=chunk_size,
        max_units=max_units,
        runner=plan_runner(plan, telemetry=telemetry),
        events=events,
        retry=retry,
        unit_deadline=unit_deadline,
    )


# --------------------------------------------------------------------------- #
# Curve assembly
# --------------------------------------------------------------------------- #
def assemble_sweep(scenario, protocol_names, results):
    """Build a :class:`~repro.experiments.runner.SweepResult` from unit results.

    ``results`` must cover a single scenario; points are ordered by their
    index regardless of completion order.
    """
    from ..experiments.metrics import SweepCurve
    from ..experiments.runner import SweepResult

    sweep = SweepResult(scenario=scenario)
    for name in protocol_names:
        sweep.curves[name] = SweepCurve(protocol=name)
    for result in sorted(results, key=lambda r: r.point_index):
        for name in protocol_names:
            sweep.curves[name].add_point(
                result.utilization,
                result.accepted[name],
                result.evaluated,
                generation_failures=result.generation_failures,
            )
    return sweep


def assemble_campaign(
    plan: CampaignPlan,
    results: Sequence[UnitResult],
    *,
    allow_partial: bool = False,
):
    """Group unit results by scenario into one sweep result per scenario.

    With ``allow_partial=False`` every planned unit must be present; with
    ``allow_partial=True`` scenarios with missing points are skipped (the
    curves of a partial scenario would silently cover fewer points, which is
    worse than omitting it).
    """
    by_scenario: Dict[str, List[UnitResult]] = {}
    for result in results:
        by_scenario.setdefault(result.scenario_id, []).append(result)

    expected: Dict[str, int] = {}
    for unit in plan.units:
        scenario_id = unit.scenario.scenario_id
        expected[scenario_id] = expected.get(scenario_id, 0) + 1

    sweeps = []
    for scenario in plan.scenarios:
        scenario_id = scenario.scenario_id
        have = by_scenario.get(scenario_id, [])
        if len(have) < expected.get(scenario_id, 0):
            if allow_partial:
                continue
            raise ValueError(
                f"scenario {scenario_id} is incomplete "
                f"({len(have)}/{expected[scenario_id]} units); resume the "
                "campaign or pass allow_partial=True"
            )
        sweeps.append(assemble_sweep(scenario, plan.protocol_names, have))
    return sweeps
