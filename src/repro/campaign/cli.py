"""Command-line interface of the campaign engine.

::

    python -m repro.campaign run    --store DIR [selection/config options]
    python -m repro.campaign resume --store DIR [--workers N]
    python -m repro.campaign status --store DIR
    python -m repro.campaign merge  --into DIR SHARD_DIR [SHARD_DIR ...]
    python -m repro.campaign report --store DIR [--out DIR]
    python -m repro.campaign export --store DIR [--out DIR]

``run`` plans a campaign, writes the manifest, and executes it; re-running
against an existing store with the same configuration simply resumes it,
while a mismatched configuration is refused.  ``run --mode simulate``
additionally pushes every analysis-accepted task set through the DPCP-p
runtime simulator (bound-tightness / invariant validation; see
``docs/validation.md``).  ``run --shard I/N`` executes the deterministic
I-th slice of the work-unit grid into its own store (one directory per
shard, possibly one host per shard); ``merge`` recombines any set of
partial shard stores into one store the other commands consume unchanged.
``resume`` needs no configuration flags at all — everything is recovered
from the manifest.  ``report`` renders the full deliverable bundle
(``REPORT.md``, ``report.html``, per-scenario CSVs) from the store through
the cached reporting aggregator — zero analysis re-runs.  Exit codes are
watch-friendly: 0 = complete report, 3 = incomplete campaign or
quarantined units (partial report written; poll/resume and re-run),
2 = error.  Fault handling — per-unit retry/quarantine, pool respawn,
deadlines — is documented in ``docs/robustness.md``.  See EXPERIMENTS.md
for a walk-through.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional, Sequence, Tuple

from ..analysis.dpcp_p import DEFAULT_MAX_PATH_SIGNATURES
from ..experiments.runner import SweepConfig
from ..obs.events import CampaignFinished, CampaignStarted
from ..obs.log import LOG_LEVELS, configure_logging, get_logger
from ..obs.sink import EventSink, events_path, iter_event_records
from ..sim.validation import SimulationConfig
from . import faultinject
from .executor import RetryPolicy, build_protocols, execute_units, plan_runner
from .merge import merge_stores
from .progress import ProgressPrinter
from .planner import (
    CAMPAIGN_MODES,
    KNOWN_PROTOCOLS,
    MODE_ANALYZE,
    MODE_SIMULATE,
    SIMULATABLE_PROTOCOLS,
    CampaignPlan,
    campaign_manifest,
    grid_scenarios,
    manifest_shard,
    plan_campaign,
    plan_from_manifest,
    select_scenarios,
    shard_units,
)
from .store import CampaignStore, StoreError


def _parse_vertices(text: str) -> Tuple[int, int]:
    try:
        low, high = (int(part) for part in text.split(",", 1))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected LO,HI (e.g. 10,100), got {text!r}"
        )
    if not 0 < low <= high:
        raise argparse.ArgumentTypeError(f"invalid vertex range {text!r}")
    return low, high


def _parse_protocols(text: str) -> List[str]:
    names = [name.strip() for name in text.split(",") if name.strip()]
    if not names:
        # An empty list would select nothing and render degenerate
        # (header-only) deliverables with a success exit code.
        raise argparse.ArgumentTypeError(
            f"expected at least one protocol, got {text!r}; "
            f"known: {', '.join(KNOWN_PROTOCOLS)}"
        )
    for name in names:
        if name not in KNOWN_PROTOCOLS:
            raise argparse.ArgumentTypeError(
                f"unknown protocol {name!r}; known: {', '.join(KNOWN_PROTOCOLS)}"
            )
    if len(set(names)) != len(names):
        raise argparse.ArgumentTypeError(f"duplicate protocol names in {text!r}")
    return names


def _parse_shard(text: str) -> Tuple[int, int]:
    try:
        index, count = (int(part) for part in text.split("/", 1))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected I/N (e.g. 0/4), got {text!r}"
        )
    if count < 1 or not 0 <= index < count:
        raise argparse.ArgumentTypeError(
            f"invalid shard spec {text!r}: need 0 <= I < N (shards are 0-based)"
        )
    return index, count


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Parallel, resumable schedulability-experiment campaigns.",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the repro.* loggers (stderr)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit log records as JSON lines instead of plain text",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_store(sub):
        sub.add_argument("--store", required=True, help="campaign store directory")

    def add_execution(sub):
        sub.add_argument(
            "--workers",
            type=int,
            default=1,
            help="worker processes (1 = in-process execution)",
        )
        sub.add_argument(
            "--chunk-size",
            type=int,
            default=None,
            help="work units per dispatch to a worker (default: auto)",
        )
        sub.add_argument(
            "--max-units",
            type=int,
            default=None,
            help="stop after executing this many new units (smoke testing / "
            "interrupt simulation)",
        )
        sub.add_argument(
            "--batch-size",
            type=int,
            default=None,
            metavar="N",
            help="samples per arena-batched solve within a unit (0 = the "
            "whole unit at once, 1 or omitted = the per-sample reference "
            "loop); results are identical across every value",
        )
        sub.add_argument(
            "--quiet", action="store_true", help="suppress progress output"
        )
        sub.add_argument(
            "--no-telemetry",
            action="store_true",
            help="disable the out-of-band telemetry/event stream "
            "(events.jsonl); result bytes are identical either way",
        )
        sub.add_argument(
            "--max-attempts",
            type=int,
            default=RetryPolicy.max_attempts,
            metavar="N",
            help="executions per unit before it is quarantined to "
            "quarantine.jsonl (failures never abort the campaign)",
        )
        sub.add_argument(
            "--unit-deadline",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-unit wall-clock deadline; overruns become 'timeout' "
            "errors (POSIX only)",
        )
        sub.add_argument(
            "--fault-plan",
            default=None,
            metavar="PATH",
            help="fault-injection plan JSON for chaos testing (exported as "
            f"{faultinject.ENV_VAR} to this run and its workers)",
        )

    run = commands.add_parser("run", help="plan and execute a campaign")
    add_store(run)
    run.add_argument(
        "--mode",
        choices=CAMPAIGN_MODES,
        default=MODE_ANALYZE,
        help="'analyze' evaluates the schedulability tests only; 'simulate' "
        "additionally runs every accepted task set through the DPCP-p "
        "runtime simulator and records bound-tightness/invariant evidence",
    )
    sim_defaults = SimulationConfig()
    run.add_argument(
        "--sim-hyperperiods",
        type=int,
        default=sim_defaults.hyperperiods,
        metavar="N",
        help="simulate mode: capped hyperperiods of jobs to release per run",
    )
    run.add_argument(
        "--sim-max-events",
        type=int,
        default=sim_defaults.max_events,
        metavar="N",
        help="simulate mode: event budget per simulation run (0 = unlimited); "
        "exhaustion truncates the run instead of hanging",
    )
    run.add_argument(
        "--sim-wall-clock",
        type=float,
        default=sim_defaults.wall_clock_seconds,
        metavar="SECONDS",
        help="simulate mode: wall-clock budget per simulation run (default: "
        "off — a wall-clock cut is not reproducible across machines)",
    )
    run.add_argument(
        "--grid",
        choices=("full", "fig2"),
        default="full",
        help="scenario grid: the 216-scenario full grid or the four Fig. 2 "
        "scenarios",
    )
    run.add_argument(
        "--filter",
        dest="filter_expression",
        default=None,
        metavar="EXPR",
        help="scenario filter, e.g. 'm=16,pr=0.5' (keys: m, nr, U, pr, N, L)",
    )
    run.add_argument(
        "--limit", type=int, default=None, help="keep only the first N scenarios"
    )
    defaults = SweepConfig()
    run.add_argument(
        "--samples",
        type=int,
        default=defaults.samples_per_point,
        help="task sets per utilization point",
    )
    run.add_argument(
        "--step",
        type=float,
        default=defaults.utilization_step_fraction,
        help="utilization step as a fraction of the platform size",
    )
    run.add_argument(
        "--seed", type=int, default=defaults.seed, help="campaign seed"
    )
    run.add_argument(
        "--vertices",
        type=_parse_vertices,
        default=(10, 100),
        metavar="LO,HI",
        help="DAG vertex-count range (downscale for quick runs, see "
        "EXPERIMENTS.md)",
    )
    run.add_argument(
        "--protocols",
        type=_parse_protocols,
        default=None,
        metavar="A,B,...",
        help=f"protocols to evaluate (default: {','.join(KNOWN_PROTOCOLS)}; "
        f"simulate mode defaults to {','.join(SIMULATABLE_PROTOCOLS)})",
    )
    run.add_argument(
        "--max-path-signatures",
        type=int,
        default=DEFAULT_MAX_PATH_SIGNATURES,
        help="cap on enumerated path signatures for the EP analysis",
    )
    run.add_argument(
        "--shard",
        type=_parse_shard,
        default=None,
        metavar="I/N",
        help="execute only the deterministic I-th of N slices of the "
        "work-unit grid (one store directory per shard; recombine with "
        "'merge')",
    )
    add_execution(run)

    resume = commands.add_parser(
        "resume", help="continue an interrupted campaign from its store"
    )
    add_store(resume)
    add_execution(resume)

    status = commands.add_parser("status", help="progress report of a store")
    add_store(status)

    merge = commands.add_parser(
        "merge",
        help="merge partial shard stores of one campaign into a single store",
    )
    merge.add_argument(
        "sources",
        nargs="+",
        metavar="SHARD_DIR",
        help="partial store directories to merge (shards of one campaign)",
    )
    merge.add_argument(
        "--into",
        required=True,
        metavar="DIR",
        help="destination store directory (fresh, or the same campaign)",
    )

    profile = commands.add_parser(
        "profile",
        help="compute-profile of a store: time by phase/protocol/scenario, "
        "slowest units, solver-iteration histogram (from events.jsonl)",
    )
    add_store(profile)
    profile.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="number of slowest work units to list",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit the raw profile as JSON instead of tables",
    )

    report = commands.add_parser(
        "report",
        help="render the full report bundle (Markdown, HTML, CSVs) from a store",
    )
    add_store(report)
    report.add_argument(
        "--out", default=None, help="output directory (default: <store>/report)"
    )
    report.add_argument(
        "--strict",
        action="store_true",
        help="fail instead of reporting only the complete scenarios",
    )
    report.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk aggregation cache",
    )
    report.add_argument(
        "--protocols",
        type=_parse_protocols,
        default=None,
        metavar="A,B,...",
        help="restrict/order the reported protocols (default: the campaign's)",
    )

    export = commands.add_parser(
        "export", help="render CSV series and tables from a store"
    )
    add_store(export)
    export.add_argument(
        "--out", default=None, help="output directory (default: <store>/export)"
    )
    export.add_argument(
        "--strict",
        action="store_true",
        help="fail instead of skipping scenarios with incomplete sweeps",
    )
    return parser


def _execute(
    plan: CampaignPlan,
    store: CampaignStore,
    args: argparse.Namespace,
    manifest: Optional[dict] = None,
) -> int:
    protocols = build_protocols(
        plan.protocol_names, plan.config.max_path_signatures
    )
    # A sharded store executes only its deterministic slice of the grid;
    # the shard spec lives in the manifest, so resume needs no flags.
    shard = manifest_shard(manifest or {})
    units = shard_units(plan.units, *shard) if shard else plan.units
    if getattr(args, "fault_plan", None):
        # Chaos testing: the environment crosses the process-pool boundary,
        # so every worker sees the same plan (docs/robustness.md).
        os.environ[faultinject.ENV_VAR] = args.fault_plan
    retry = RetryPolicy(max_attempts=args.max_attempts)
    printer = None if args.quiet else ProgressPrinter()
    telemetry = not getattr(args, "no_telemetry", False)
    sink = EventSink(store.directory) if telemetry else None
    started_at = time.monotonic()
    if sink is not None:
        try:
            sink.emit(
                CampaignStarted(
                    config_hash=(manifest or {}).get("config_hash", ""),
                    mode=plan.mode,
                    total_units=len(units),
                    workers=args.workers,
                    protocols=tuple(plan.protocol_names),
                )
            )
        except OSError as error:
            # An unwritable store directory must not fail the campaign;
            # results checkpointing will surface real storage problems.
            get_logger("campaign.cli").warning(
                "event stream unavailable (%s); continuing without telemetry",
                error,
            )
            sink = None
    try:
        results = execute_units(
            units,
            protocols,
            workers=args.workers,
            store=store,
            progress=printer,
            chunk_size=args.chunk_size,
            max_units=args.max_units,
            runner=plan_runner(
                plan,
                telemetry=telemetry,
                batch_size=getattr(args, "batch_size", None),
            ),
            events=sink,
            retry=retry,
            unit_deadline=args.unit_deadline,
        )
        if sink is not None:
            try:
                sink.emit(
                    CampaignFinished(
                        completed=len(results),
                        total=len(units),
                        elapsed_seconds=round(time.monotonic() - started_at, 6),
                    )
                )
            except OSError as error:
                get_logger("campaign.cli").warning(
                    "campaign-finished event emission failed (%s)", error
                )
    finally:
        if printer is not None:
            printer.finish()
        if sink is not None:
            sink.close()
    total = len(units)
    failures = sum(result.generation_failures for result in results)
    shard_label = f" (shard {shard[0]}/{shard[1]})" if shard else ""
    print(
        f"{len(results)}/{total} units complete{shard_label} "
        f"({failures} failed task-set draws) in store {store.directory}"
    )
    unresolved = store.unresolved_quarantine()
    if unresolved:
        kinds = sorted({
            str(record.get("error_kind")) for record in unresolved.values()
        })
        print(
            f"{len(unresolved)} unit(s) quarantined ({', '.join(kinds)}) — "
            f"see {store.quarantine_path}; resume retries them"
        )
    if len(results) < total:
        print("campaign incomplete — continue with: "
              f"python -m repro.campaign resume --store {store.directory}")
        return 3
    return 3 if unresolved else 0


# --------------------------------------------------------------------------- #
# Commands
# --------------------------------------------------------------------------- #
def _cmd_run(args: argparse.Namespace) -> int:
    scenarios = grid_scenarios(args.grid, num_vertices_range=args.vertices)
    scenarios = select_scenarios(scenarios, args.filter_expression)
    if args.limit is not None:
        if args.limit < 1:
            raise ValueError(f"--limit must be at least 1, got {args.limit}")
        scenarios = scenarios[: args.limit]
    if not scenarios:
        print("no scenarios match the selection", file=sys.stderr)
        return 2
    config = SweepConfig(
        samples_per_point=args.samples,
        utilization_step_fraction=args.step,
        max_path_signatures=args.max_path_signatures,
        seed=args.seed,
    )
    sim_config = None
    if args.mode == MODE_SIMULATE:
        sim_config = SimulationConfig(
            hyperperiods=args.sim_hyperperiods,
            max_events=args.sim_max_events if args.sim_max_events else None,
            wall_clock_seconds=args.sim_wall_clock,
        )
    plan = plan_campaign(
        scenarios, config, args.protocols, mode=args.mode, sim_config=sim_config
    )
    store = CampaignStore(args.store)
    manifest = campaign_manifest(plan, workers=args.workers, shard=args.shard)
    resuming = store.exists()
    manifest = store.initialize(manifest)
    log = get_logger("campaign.cli")
    if resuming:
        log.info("store %s already holds this campaign — resuming", args.store)
    log.info(
        "campaign: %d scenarios, %d work units, %d protocols, mode=%s, "
        "workers=%d%s",
        len(scenarios),
        len(plan.units),
        len(plan.protocol_names),
        plan.mode,
        args.workers,
        f", shard {args.shard[0]}/{args.shard[1]}" if args.shard else "",
    )
    return _execute(plan, store, args, manifest=manifest)


def _cmd_resume(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store)
    manifest = store.read_manifest()
    plan = plan_from_manifest(manifest)
    shard = manifest_shard(manifest)
    units = shard_units(plan.units, *shard) if shard else plan.units
    pending = len(store.pending_ids([unit.unit_id for unit in units]))
    get_logger("campaign.cli").info(
        "resuming campaign in %s: %d/%d units already complete",
        args.store,
        len(units) - pending,
        len(units),
    )
    return _execute(plan, store, args, manifest=manifest)


def _cmd_merge(args: argparse.Namespace) -> int:
    report = merge_stores(args.sources, args.into)
    duplicate_note = (
        f", {report.duplicates} duplicate(s) verified equal"
        if report.duplicates
        else ""
    )
    print(
        f"merged {len(report.sources)} store(s) into {report.destination}: "
        f"{report.units}/{report.total_units} units "
        f"({report.written} newly written{duplicate_note})"
    )
    if report.healed:
        print(f"{report.healed} quarantined unit(s) healed by a completed record")
    if report.quarantined:
        print(
            f"{report.quarantined} unit(s) still quarantined — see "
            f"{CampaignStore(report.destination).quarantine_path}"
        )
    if not report.complete:
        print(
            f"merged store incomplete — run the missing shards or continue "
            f"with: python -m repro.campaign resume --store {report.destination}"
        )
        return 3
    return 3 if report.quarantined else 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store)
    manifest = store.read_manifest()
    plan = plan_from_manifest(manifest)
    shard = manifest_shard(manifest)
    units = shard_units(plan.units, *shard) if shard else plan.units
    unit_ids = [unit.unit_id for unit in units]
    records = store.load_records()
    done = sum(1 for unit_id in unit_ids if unit_id in records)
    total = len(units)
    failures = sum(record.get("generation_failures", 0) for record in records.values())
    elapsed = sum(record.get("elapsed_seconds", 0.0) for record in records.values())
    print(f"store:          {store.directory}")
    print(f"config hash:    {manifest['config_hash'][:16]}…")
    print(f"mode:           {manifest['mode']}")
    if shard:
        print(f"shard:          {shard[0]}/{shard[1]} "
              f"({total} of {len(plan.units)} planned units)")
    print(f"protocols:      {', '.join(manifest['protocols'])}")
    print(f"scenarios:      {len(plan.scenarios)}")
    print(f"units:          {done}/{total} complete "
          f"({100.0 * done / total if total else 100.0:.1f}%)")
    print(f"failed draws:   {failures}")
    unresolved = store.unresolved_quarantine()
    if unresolved:
        kinds: dict = {}
        for record in unresolved.values():
            kind = str(record.get("error_kind"))
            kinds[kind] = kinds.get(kind, 0) + 1
        breakdown = ", ".join(
            f"{count}× {kind}" for kind, count in sorted(kinds.items())
        )
        print(f"quarantined:    {len(unresolved)} unit(s) ({breakdown}) — "
              "resume retries them")
    if done:
        mean = elapsed / done
        print(f"unit time:      {mean:.2f}s mean, {elapsed:.1f}s total compute")
        if done < total:
            left = total - done
            serial = mean * left
            print(f"serial ETA:     {serial:.1f}s ({left} units left)")
            # The manifest records the launch's worker count (informational,
            # outside the config hash); quote the ETA the user will actually
            # see at that parallelism, not just the serial-compute figure.
            workers = int(manifest.get("workers") or 1)
            if workers > 1:
                print(
                    f"parallel ETA:   {serial / workers:.1f}s "
                    f"at {workers} workers (manifest)"
                )
    events_file = events_path(store.directory)
    event_count = 0
    unit_events = 0
    recovery = {"pool_crashed": 0, "unit_retried": 0, "unit_quarantined": 0}
    last_seq = None
    for record, _ in iter_event_records(events_file):
        event_count += 1
        event_type = record.get("type")
        if event_type == "unit_finished":
            unit_events += 1
        if event_type in recovery:
            recovery[event_type] += 1
        seq = record.get("seq")
        if isinstance(seq, int):
            last_seq = seq if last_seq is None else max(last_seq, seq)
    if event_count:
        print(
            f"events:         {event_count} in events.jsonl "
            f"({unit_events} unit completions, last seq "
            f"{last_seq if last_seq is not None else 'n/a'})"
        )
        if any(recovery.values()):
            print(
                f"recovery:       {recovery['pool_crashed']} pool crash(es), "
                f"{recovery['unit_retried']} unit retry(ies), "
                f"{recovery['unit_quarantined']} quarantine(s)"
            )
        print(f"profile:        python -m repro.campaign profile "
              f"--store {store.directory}")
    incomplete = []
    for scenario in plan.scenarios:
        scenario_units = [
            unit.unit_id
            for unit in units
            if unit.scenario.scenario_id == scenario.scenario_id
        ]
        missing = sum(1 for unit_id in scenario_units if unit_id not in records)
        if missing:
            incomplete.append((scenario.scenario_id, missing, len(scenario_units)))
    if incomplete:
        print(f"incomplete scenarios ({len(incomplete)}):")
        for scenario_id, missing, count in incomplete[:10]:
            print(f"  {scenario_id}: {count - missing}/{count}")
        if len(incomplete) > 10:
            print(f"  … and {len(incomplete) - 10} more")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from ..obs.profile import load_profile, render_profile

    if args.top < 1:
        raise ValueError(f"--top must be at least 1, got {args.top}")
    profile = load_profile(args.store)
    if args.json:
        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_profile(profile, top=args.top))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from ..report.aggregate import aggregate_store
    from ..report.bundle import write_report_bundle

    aggregate = aggregate_store(args.store, use_cache=not args.no_cache)
    if args.protocols:
        # Validate against the campaign up front: otherwise a protocol the
        # campaign never ran would pass silently while no scenario is
        # complete and flip to an error mid-campaign — useless for a watch
        # loop polling on the 0/3 exit codes.
        unknown = [p for p in args.protocols if p not in aggregate.protocols]
        if unknown:
            raise ValueError(
                f"protocol(s) {', '.join(unknown)} were not part of this "
                f"campaign (campaign protocols: "
                f"{', '.join(aggregate.protocols)})"
            )
    stats = aggregate.cache_stats
    if stats.hit:
        cache_line = (
            f"aggregation cache: hit ({stats.units_from_cache} units cached, "
            f"{stats.units_folded} folded from the store)"
        )
    else:
        cache_line = (
            f"aggregation cache: miss [{stats.miss_reason}] "
            f"({stats.units_folded} units folded from the store)"
        )
    print(cache_line)
    incomplete = aggregate.incomplete_reports()
    if incomplete and args.strict:
        raise ValueError(
            f"campaign incomplete ({aggregate.completed_units}/"
            f"{aggregate.total_units} units, {len(incomplete)} scenario(s) "
            "unfinished); resume it or drop --strict"
        )
    out_dir = args.out or os.path.join(args.store, "report")
    bundle = write_report_bundle(aggregate, out_dir, protocols=args.protocols)
    print(
        f"report: {len(bundle.series_csvs)} scenario series + REPORT.md + "
        f"report.html in {out_dir}"
    )
    if aggregate.mode == MODE_SIMULATE:
        totals = aggregate.validation_totals().values()
        simulated = sum(rollup.simulated for rollup in totals)
        violations = sum(rollup.violations for rollup in totals)
        failures = sum(rollup.rule_failures for rollup in totals)
        truncated = sum(rollup.truncated for rollup in totals)
        maxima = [
            rollup.ratio.maximum
            for rollup in totals
            if rollup.ratio.maximum is not None
        ]
        worst = f"{max(maxima):.3f}" if maxima else "n/a"
        print(
            f"validation: {simulated} simulated runs, worst observed/bound "
            f"{worst}, {violations} soundness violation(s), {failures} rule "
            f"failure(s), {truncated} truncated"
        )
    if incomplete:
        print(
            f"campaign incomplete — {len(incomplete)} scenario(s) omitted; "
            f"continue with: python -m repro.campaign resume --store {args.store}"
        )
        return 3
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    import os

    from ..experiments.figures import load_sweep_results, write_series_csv
    from ..experiments.runner import pairwise_statistics
    from ..experiments.tables import (
        render_dominance_table,
        render_outperformance_table,
    )

    results = load_sweep_results(args.store, allow_partial=not args.strict)
    if not results:
        print("no completed scenario sweeps to export yet", file=sys.stderr)
        return 2
    out_dir = args.out or os.path.join(args.store, "export")
    os.makedirs(out_dir, exist_ok=True)
    for result in results:
        path = os.path.join(out_dir, f"{result.scenario.scenario_id}.csv")
        write_series_csv(result, path)
    written = [f"{len(results)} series CSVs"]
    if len(results[0].protocols) >= 2:
        stats = pairwise_statistics(results)
        tables_path = os.path.join(out_dir, "tables.txt")
        with open(tables_path, "w") as handle:
            handle.write(render_dominance_table(stats) + "\n\n")
            handle.write(render_outperformance_table(stats) + "\n")
        written.append("tables.txt")
    skipped = None
    manifest = CampaignStore(args.store).read_manifest()
    if len(results) < len(manifest["scenarios"]):
        skipped = len(manifest["scenarios"]) - len(results)
    print(f"exported {' + '.join(written)} to {out_dir}")
    if skipped:
        print(f"skipped {skipped} incomplete scenario(s) — resume the campaign "
              "to complete them")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_lines=args.log_json)
    handlers = {
        "run": _cmd_run,
        "resume": _cmd_resume,
        "status": _cmd_status,
        "merge": _cmd_merge,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "export": _cmd_export,
    }
    try:
        return handlers[args.command](args)
    except StoreError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted — completed units are checkpointed; continue with "
              "'python -m repro.campaign resume'", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
