"""On-disk result store: JSONL checkpoints plus a campaign manifest.

Layout of a store directory::

    <store>/
        manifest.json   # campaign description + config hash
        results.jsonl   # one JSON record per completed work unit (append-only)

The store is append-only and crash-tolerant: every completed unit is written
and flushed as one line, and a trailing partial line (from a killed process)
is ignored on load.  Re-opening a store with a different configuration hash
raises :class:`ConfigMismatchError` so results from mismatched campaigns are
never mixed.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Dict, Iterable, Iterator, Set, Tuple

from .planner import FORMAT_VERSION, config_hash


class StoreError(RuntimeError):
    """Base error for campaign-store problems."""


class ConfigMismatchError(StoreError):
    """The store on disk was produced by a different campaign configuration."""


class CampaignStore:
    """Append-only result store for one campaign directory."""

    MANIFEST_NAME = "manifest.json"
    RESULTS_NAME = "results.jsonl"

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)

    @property
    def manifest_path(self) -> str:
        """Path of the manifest file."""
        return os.path.join(self.directory, self.MANIFEST_NAME)

    @property
    def results_path(self) -> str:
        """Path of the JSONL results file."""
        return os.path.join(self.directory, self.RESULTS_NAME)

    def exists(self) -> bool:
        """Whether the directory already holds a campaign manifest."""
        return os.path.isfile(self.manifest_path)

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #
    def initialize(self, manifest: dict) -> dict:
        """Create the store for ``manifest`` or re-open a matching one.

        Returns the manifest that is now on disk.  Raises
        :class:`ConfigMismatchError` when the directory already holds a
        campaign with a different configuration hash.
        """
        if self.exists():
            existing = self.read_manifest()
            self._check_hash(existing, manifest["config_hash"])
            return existing
        os.makedirs(self.directory, exist_ok=True)
        temporary = self.manifest_path + ".tmp"
        with open(temporary, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, self.manifest_path)
        return manifest

    def read_manifest(self) -> dict:
        """Load and validate the manifest from disk."""
        if not self.exists():
            raise StoreError(
                f"{self.directory!r} holds no campaign (missing "
                f"{self.MANIFEST_NAME}); run 'campaign run' first"
            )
        with open(self.manifest_path) as handle:
            manifest = json.load(handle)
        if not isinstance(manifest, dict):
            raise StoreError(
                f"{self.manifest_path!r} is not a campaign manifest"
            )
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreError(
                f"store {self.directory!r} uses manifest format {version!r}, "
                f"but this version of the code reads format {FORMAT_VERSION}; "
                "re-run the campaign into a fresh --store directory"
            )
        try:
            recomputed = config_hash(manifest)
        except (KeyError, TypeError) as error:
            raise StoreError(
                f"{self.manifest_path!r} is not a campaign manifest "
                f"(missing or malformed field: {error})"
            ) from error
        if manifest.get("config_hash") != recomputed:
            raise ConfigMismatchError(
                f"manifest in {self.directory!r} is corrupt: stored config "
                f"hash {manifest.get('config_hash')!r} does not match its "
                f"own contents ({recomputed!r})"
            )
        return manifest

    def _check_hash(self, manifest: dict, expected_hash: str) -> None:
        if manifest["config_hash"] != expected_hash:
            raise ConfigMismatchError(
                f"store {self.directory!r} was produced by a different "
                f"campaign configuration (stored hash "
                f"{manifest['config_hash'][:12]}…, requested "
                f"{expected_hash[:12]}…); use a fresh --store directory or "
                "rerun with the original configuration"
            )

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def append(self, record: dict) -> None:
        """Append one completed-unit record (flushed immediately)."""
        if "unit_id" not in record:
            raise StoreError("result record lacks a unit_id")
        record = dict(record)
        record.setdefault("completed_at", _utcnow_iso())
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.results_path, "a+b") as handle:
            # Heal a torn trailing line left by a killed writer: without the
            # newline the new record would merge into the partial line and
            # every reader would silently skip both.
            handle.seek(0, os.SEEK_END)
            if handle.tell():
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def results_size(self) -> int:
        """Current byte size of the results file (0 when it does not exist)."""
        try:
            return os.path.getsize(self.results_path)
        except OSError:
            return 0

    def iter_records(self, start_offset: int = 0) -> Iterator[Tuple[dict, int]]:
        """Stream completed-unit records from byte offset ``start_offset``.

        Yields ``(record, end_offset)`` pairs where ``end_offset`` is the byte
        position just past the record's line — the resume point for the next
        incremental read (the store is append-only, so everything before a
        yielded offset is immutable).  Only *complete* lines (terminated by a
        newline) are consumed: a torn trailing line from a killed writer is
        neither yielded nor skipped past, so a re-read from the same offset
        sees whatever the line became — :meth:`append` newline-terminates a
        torn tail before writing, turning it into a malformed complete line.
        Malformed complete lines are skipped (matching :meth:`load_records`),
        and duplicate ``unit_id`` filtering is left to the caller, who knows
        which units it already folded.
        """
        if not os.path.isfile(self.results_path):
            return
        with open(self.results_path, "rb") as handle:
            handle.seek(start_offset)
            offset = start_offset
            for raw_line in handle:
                if not raw_line.endswith(b"\n"):
                    # Torn final write of an interrupted run: the unit will
                    # simply be re-executed on resume; do not advance past it.
                    return
                offset += len(raw_line)
                line = raw_line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and record.get("unit_id"):
                    yield record, offset

    def load_records(self) -> Dict[str, dict]:
        """All completed-unit records, keyed by ``unit_id``.

        A trailing partial line (killed writer) is ignored; for duplicate
        unit ids the first record wins, so resumed runs never overwrite
        earlier checkpoints.
        """
        records: Dict[str, dict] = {}
        for record, _ in self.iter_records():
            unit_id = record["unit_id"]
            if unit_id not in records:
                records[unit_id] = record
        return records

    def completed_ids(self) -> Set[str]:
        """Identifiers of the units already checkpointed in this store."""
        return set(self.load_records())

    def pending_ids(self, unit_ids: Iterable[str]) -> Set[str]:
        """Subset of ``unit_ids`` that has no checkpoint yet."""
        return set(unit_ids) - self.completed_ids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({self.directory!r})"


def _utcnow_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")
