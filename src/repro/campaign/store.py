"""On-disk result store: JSONL checkpoints plus a campaign manifest.

Layout of a store directory::

    <store>/
        manifest.json     # campaign description + config hash (+ shard spec)
        results.jsonl     # one JSON record per completed work unit (append-only)
        quarantine.jsonl  # typed error records of quarantined units (optional)

The store is append-only and crash-tolerant: every completed unit is written
and flushed as one line, and a trailing partial line (from a killed process)
is ignored on load.  The manifest is written atomically (tmp + fsync +
``os.replace``), so a crash mid-write can never leave an unparseable
manifest — at worst a stale ``manifest.json.tmp`` lingers, which
initialisation removes.  Re-opening a store with a different configuration
hash raises :class:`ConfigMismatchError` so results from mismatched
campaigns are never mixed; re-opening a *shard* store under a different
shard spec is refused the same way (each shard owns its own directory, and
``campaign merge`` is the one path that combines them).
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from .planner import MODE_ANALYZE, config_hash, manifest_format_version


class StoreError(RuntimeError):
    """Base error for campaign-store problems."""


class ConfigMismatchError(StoreError):
    """The store on disk was produced by a different campaign configuration."""


def write_json_atomic(path: str, payload: dict) -> None:
    """Write ``payload`` to ``path`` atomically (tmp + fsync + replace).

    The temporary sibling is flushed and fsynced before the atomic
    ``os.replace``, so a crash at any instant leaves either the old file,
    the new file, or a stale ``.tmp`` — never a torn target.
    """
    temporary = path + ".tmp"
    with open(temporary, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


class CampaignStore:
    """Append-only result store for one campaign directory."""

    MANIFEST_NAME = "manifest.json"
    RESULTS_NAME = "results.jsonl"
    QUARANTINE_NAME = "quarantine.jsonl"

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)

    @property
    def manifest_path(self) -> str:
        """Path of the manifest file."""
        return os.path.join(self.directory, self.MANIFEST_NAME)

    @property
    def results_path(self) -> str:
        """Path of the JSONL results file."""
        return os.path.join(self.directory, self.RESULTS_NAME)

    @property
    def quarantine_path(self) -> str:
        """Path of the JSONL quarantine file (error records of failed units)."""
        return os.path.join(self.directory, self.QUARANTINE_NAME)

    def exists(self) -> bool:
        """Whether the directory already holds a campaign manifest."""
        return os.path.isfile(self.manifest_path)

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #
    def initialize(self, manifest: dict) -> dict:
        """Create the store for ``manifest`` or re-open a matching one.

        Returns the manifest that is now on disk.  Raises
        :class:`ConfigMismatchError` when the directory already holds a
        campaign with a different configuration hash, or a shard store
        with a different shard spec (shards never share a directory —
        combine them with ``campaign merge`` instead).  A stale
        ``manifest.json.tmp`` left by a crash between the temporary write
        and its atomic replace is removed.
        """
        os.makedirs(self.directory, exist_ok=True)
        stale = self.manifest_path + ".tmp"
        if os.path.exists(stale):
            # Leftover of a writer killed before its os.replace: the real
            # manifest (if any) is intact, the tmp is garbage.
            os.unlink(stale)
        if self.exists():
            existing = self.read_manifest()
            self._check_hash(existing, manifest["config_hash"])
            self._check_shard(existing, manifest.get("shard"))
            return existing
        write_json_atomic(self.manifest_path, manifest)
        return manifest

    def read_manifest(self) -> dict:
        """Load and validate the manifest from disk."""
        if not self.exists():
            raise StoreError(
                f"{self.directory!r} holds no campaign (missing "
                f"{self.MANIFEST_NAME}); run 'campaign run' first"
            )
        with open(self.manifest_path) as handle:
            manifest = json.load(handle)
        if not isinstance(manifest, dict):
            raise StoreError(
                f"{self.manifest_path!r} is not a campaign manifest"
            )
        # Each mode versions independently (simulate provenance can change
        # without invalidating analyze stores — see ``planner``): the store
        # is checked against the version in force for *its* mode.
        expected = manifest_format_version(manifest.get("mode", MODE_ANALYZE))
        version = manifest.get("format_version")
        if version != expected:
            raise StoreError(
                f"store {self.directory!r} uses manifest format {version!r}, "
                f"but this version of the code reads format {expected} for "
                f"{manifest.get('mode', MODE_ANALYZE)}-mode campaigns; "
                "re-run the campaign into a fresh --store directory"
            )
        try:
            recomputed = config_hash(manifest)
        except (KeyError, TypeError) as error:
            raise StoreError(
                f"{self.manifest_path!r} is not a campaign manifest "
                f"(missing or malformed field: {error})"
            ) from error
        if manifest.get("config_hash") != recomputed:
            raise ConfigMismatchError(
                f"manifest in {self.directory!r} is corrupt: stored config "
                f"hash {manifest.get('config_hash')!r} does not match its "
                f"own contents ({recomputed!r})"
            )
        return manifest

    def _check_hash(self, manifest: dict, expected_hash: str) -> None:
        if manifest["config_hash"] != expected_hash:
            raise ConfigMismatchError(
                f"store {self.directory!r} was produced by a different "
                f"campaign configuration (stored hash "
                f"{manifest['config_hash'][:12]}…, requested "
                f"{expected_hash[:12]}…); use a fresh --store directory or "
                "rerun with the original configuration"
            )

    def _check_shard(self, manifest: dict, expected_shard) -> None:
        """Refuse re-opening a shard store under a different shard spec."""
        stored = manifest.get("shard")
        if stored != expected_shard:
            def spec(value):
                if not value:
                    return "unsharded"
                return f"shard {value['index']}/{value['count']}"
            raise ConfigMismatchError(
                f"store {self.directory!r} holds {spec(stored)} of this "
                f"campaign but {spec(expected_shard)} was requested; each "
                "shard needs its own --store directory (combine them with "
                "'campaign merge')"
            )

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def _append_line(self, path: str, record: dict) -> None:
        """Append one record as a flushed, fsynced JSONL line to ``path``."""
        if "unit_id" not in record:
            raise StoreError("result record lacks a unit_id")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(path, "a+b") as handle:
            # Heal a torn trailing line left by a killed writer: without the
            # newline the new record would merge into the partial line and
            # every reader would silently skip both.
            handle.seek(0, os.SEEK_END)
            if handle.tell():
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, record: dict) -> None:
        """Append one completed-unit record (flushed immediately)."""
        record = dict(record)
        record.setdefault("completed_at", _utcnow_iso())
        self._append_line(self.results_path, record)

    def append_quarantine(self, record: dict) -> None:
        """Append one quarantined-unit error record (flushed immediately).

        Quarantine records live in ``quarantine.jsonl`` — a *sibling* of
        the results file — so ``results.jsonl`` keeps holding successful
        records only and its bytes stay comparable across faulty and
        fault-free runs of the same campaign.
        """
        record = dict(record)
        record.setdefault("quarantined_at", _utcnow_iso())
        self._append_line(self.quarantine_path, record)

    def results_size(self) -> int:
        """Current byte size of the results file (0 when it does not exist)."""
        try:
            return os.path.getsize(self.results_path)
        except OSError:
            return 0

    def iter_records(
        self, start_offset: int = 0, path: Optional[str] = None
    ) -> Iterator[Tuple[dict, int]]:
        """Stream completed-unit records from byte offset ``start_offset``.

        Yields ``(record, end_offset)`` pairs where ``end_offset`` is the byte
        position just past the record's line — the resume point for the next
        incremental read (the store is append-only, so everything before a
        yielded offset is immutable).  Only *complete* lines (terminated by a
        newline) are consumed: a torn trailing line from a killed writer is
        neither yielded nor skipped past, so a re-read from the same offset
        sees whatever the line became — :meth:`append` newline-terminates a
        torn tail before writing, turning it into a malformed complete line.
        Malformed complete lines are skipped (matching :meth:`load_records`),
        and duplicate ``unit_id`` filtering is left to the caller, who knows
        which units it already folded.  ``path`` overrides the file read
        (the quarantine iterator reuses this machinery).
        """
        if path is None:
            path = self.results_path
        if not os.path.isfile(path):
            return
        with open(path, "rb") as handle:
            handle.seek(start_offset)
            offset = start_offset
            for raw_line in handle:
                if not raw_line.endswith(b"\n"):
                    # Torn final write of an interrupted run: the unit will
                    # simply be re-executed on resume; do not advance past it.
                    return
                offset += len(raw_line)
                line = raw_line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and record.get("unit_id"):
                    yield record, offset

    def load_records(self) -> Dict[str, dict]:
        """All completed-unit records, keyed by ``unit_id``.

        A trailing partial line (killed writer) is ignored; for duplicate
        unit ids the first record wins, so resumed runs never overwrite
        earlier checkpoints.
        """
        records: Dict[str, dict] = {}
        for record, _ in self.iter_records():
            unit_id = record["unit_id"]
            if unit_id not in records:
                records[unit_id] = record
        return records

    def load_quarantine(self) -> Dict[str, dict]:
        """All quarantined-unit error records, keyed by ``unit_id``.

        The *last* record wins per unit (a later run's quarantine verdict
        supersedes an earlier one — the opposite of :meth:`load_records`,
        where the first checkpoint is immutable truth).  Torn trailing
        lines and malformed complete lines are tolerated exactly like the
        results file.  Callers deciding whether a unit is still *failed*
        should additionally drop ids present in :meth:`load_records`: a
        unit that completed on a retry or another shard is healed, and its
        stale quarantine record is merely history.
        """
        records: Dict[str, dict] = {}
        for record, _ in self.iter_records(path=self.quarantine_path):
            records[record["unit_id"]] = record
        return records

    def unresolved_quarantine(self) -> Dict[str, dict]:
        """Quarantine records of units with no successful checkpoint."""
        completed = self.completed_ids()
        return {
            unit_id: record
            for unit_id, record in self.load_quarantine().items()
            if unit_id not in completed
        }

    def completed_ids(self) -> Set[str]:
        """Identifiers of the units already checkpointed in this store."""
        return set(self.load_records())

    def pending_ids(self, unit_ids: Iterable[str]) -> Set[str]:
        """Subset of ``unit_ids`` that has no checkpoint yet."""
        return set(unit_ids) - self.completed_ids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({self.directory!r})"


def _utcnow_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")
