"""On-disk result store: JSONL checkpoints plus a campaign manifest.

Layout of a store directory::

    <store>/
        manifest.json   # campaign description + config hash
        results.jsonl   # one JSON record per completed work unit (append-only)

The store is append-only and crash-tolerant: every completed unit is written
and flushed as one line, and a trailing partial line (from a killed process)
is ignored on load.  Re-opening a store with a different configuration hash
raises :class:`ConfigMismatchError` so results from mismatched campaigns are
never mixed.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Dict, Iterable, Optional, Set

from .planner import FORMAT_VERSION, config_hash


class StoreError(RuntimeError):
    """Base error for campaign-store problems."""


class ConfigMismatchError(StoreError):
    """The store on disk was produced by a different campaign configuration."""


class CampaignStore:
    """Append-only result store for one campaign directory."""

    MANIFEST_NAME = "manifest.json"
    RESULTS_NAME = "results.jsonl"

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)

    @property
    def manifest_path(self) -> str:
        """Path of the manifest file."""
        return os.path.join(self.directory, self.MANIFEST_NAME)

    @property
    def results_path(self) -> str:
        """Path of the JSONL results file."""
        return os.path.join(self.directory, self.RESULTS_NAME)

    def exists(self) -> bool:
        """Whether the directory already holds a campaign manifest."""
        return os.path.isfile(self.manifest_path)

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #
    def initialize(self, manifest: dict) -> dict:
        """Create the store for ``manifest`` or re-open a matching one.

        Returns the manifest that is now on disk.  Raises
        :class:`ConfigMismatchError` when the directory already holds a
        campaign with a different configuration hash.
        """
        if self.exists():
            existing = self.read_manifest()
            self._check_hash(existing, manifest["config_hash"])
            return existing
        os.makedirs(self.directory, exist_ok=True)
        temporary = self.manifest_path + ".tmp"
        with open(temporary, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, self.manifest_path)
        return manifest

    def read_manifest(self) -> dict:
        """Load and validate the manifest from disk."""
        if not self.exists():
            raise StoreError(
                f"{self.directory!r} holds no campaign (missing "
                f"{self.MANIFEST_NAME}); run 'campaign run' first"
            )
        with open(self.manifest_path) as handle:
            manifest = json.load(handle)
        if not isinstance(manifest, dict):
            raise StoreError(
                f"{self.manifest_path!r} is not a campaign manifest"
            )
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreError(
                f"store {self.directory!r} uses manifest format {version!r}, "
                f"but this version of the code reads format {FORMAT_VERSION}; "
                "re-run the campaign into a fresh --store directory"
            )
        try:
            recomputed = config_hash(manifest)
        except (KeyError, TypeError) as error:
            raise StoreError(
                f"{self.manifest_path!r} is not a campaign manifest "
                f"(missing or malformed field: {error})"
            ) from error
        if manifest.get("config_hash") != recomputed:
            raise ConfigMismatchError(
                f"manifest in {self.directory!r} is corrupt: stored config "
                f"hash {manifest.get('config_hash')!r} does not match its "
                f"own contents ({recomputed!r})"
            )
        return manifest

    def _check_hash(self, manifest: dict, expected_hash: str) -> None:
        if manifest["config_hash"] != expected_hash:
            raise ConfigMismatchError(
                f"store {self.directory!r} was produced by a different "
                f"campaign configuration (stored hash "
                f"{manifest['config_hash'][:12]}…, requested "
                f"{expected_hash[:12]}…); use a fresh --store directory or "
                "rerun with the original configuration"
            )

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def append(self, record: dict) -> None:
        """Append one completed-unit record (flushed immediately)."""
        if "unit_id" not in record:
            raise StoreError("result record lacks a unit_id")
        record = dict(record)
        record.setdefault("completed_at", _utcnow_iso())
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.results_path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def load_records(self) -> Dict[str, dict]:
        """All completed-unit records, keyed by ``unit_id``.

        A trailing partial line (killed writer) is ignored; for duplicate
        unit ids the first record wins, so resumed runs never overwrite
        earlier checkpoints.
        """
        records: Dict[str, dict] = {}
        if not os.path.isfile(self.results_path):
            return records
        with open(self.results_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Torn final write of an interrupted run: the unit will
                    # simply be re-executed on resume.
                    continue
                unit_id = record.get("unit_id")
                if unit_id and unit_id not in records:
                    records[unit_id] = record
        return records

    def completed_ids(self) -> Set[str]:
        """Identifiers of the units already checkpointed in this store."""
        return set(self.load_records())

    def pending_ids(self, unit_ids: Iterable[str]) -> Set[str]:
        """Subset of ``unit_ids`` that has no checkpoint yet."""
        return set(unit_ids) - self.completed_ids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CampaignStore({self.directory!r})"


def _utcnow_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")
