"""Campaign-execution engine: parallel, resumable scenario-grid sweeps.

The campaign subsystem decomposes an experiment campaign into independent
``(scenario, utilization point)`` work units with deterministic per-unit
seeds, executes them serially or across a process pool, and checkpoints
every completed unit into an on-disk store so that interrupted campaigns
resume where they left off.  See DESIGN.md ("Campaign engine") for the
architecture and EXPERIMENTS.md for the command-line workflow.
"""

from .executor import (
    RetryPolicy,
    UnitResult,
    assemble_campaign,
    assemble_sweep,
    build_protocols,
    execute_plan,
    execute_simulation_unit,
    execute_unit,
    execute_units,
    plan_runner,
)
from .merge import MergeConflictError, MergeError, MergeReport, merge_stores
from .planner import (
    CAMPAIGN_MODES,
    MODE_ANALYZE,
    MODE_SIMULATE,
    SIMULATABLE_PROTOCOLS,
    CampaignPlan,
    WorkUnit,
    campaign_manifest,
    config_hash,
    manifest_shard,
    parse_filter,
    plan_campaign,
    plan_from_manifest,
    plan_scenario_units,
    select_scenarios,
    shard_units,
)
from .store import CampaignStore, ConfigMismatchError, StoreError

__all__ = [
    "RetryPolicy",
    "UnitResult",
    "assemble_campaign",
    "assemble_sweep",
    "build_protocols",
    "execute_plan",
    "execute_simulation_unit",
    "execute_unit",
    "execute_units",
    "plan_runner",
    "MergeConflictError",
    "MergeError",
    "MergeReport",
    "merge_stores",
    "CAMPAIGN_MODES",
    "MODE_ANALYZE",
    "MODE_SIMULATE",
    "SIMULATABLE_PROTOCOLS",
    "CampaignPlan",
    "WorkUnit",
    "campaign_manifest",
    "config_hash",
    "manifest_shard",
    "parse_filter",
    "plan_campaign",
    "plan_from_manifest",
    "plan_scenario_units",
    "select_scenarios",
    "shard_units",
    "CampaignStore",
    "ConfigMismatchError",
    "StoreError",
]
