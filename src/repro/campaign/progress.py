"""Progress tracking and rendering, shared by the CLI and the service.

The campaign CLI used to own one monolithic progress printer whose line
format assumed a live TTY: every label was padded *and truncated* to a
fixed 42-column field so the carriage-return redraw would cleanly
overwrite the previous line.  On non-TTY streams (CI logs, pipes) — and
in the serving layer, which has no terminal at all — that sizing is pure
loss: CI logs got unit ids silently cut off, and the daemon could not
reuse the ETA arithmetic without dragging a terminal assumption along.

This module splits the two concerns:

* :class:`ProgressTracker` — the headless core: completion counts,
  elapsed/ETA/rate arithmetic, and a plain single-line rendering with
  **no** terminal sizing.  The service daemon feeds its numbers straight
  into ``ProgressEvent``/``JobStatus`` messages.
* :class:`ProgressPrinter` — the CLI front-end: interactive streams get
  the in-place redraw with the classic fixed-width label field;
  non-interactive streams get periodic plain lines with the *full* label
  (the regression test in ``tests/campaign/test_campaign_cli.py`` pins
  this).
"""

from __future__ import annotations

import math
import sys
import time
from typing import Optional

#: Label field width of the interactive (TTY) progress line.  Only the
#: interactive redraw pads/truncates to it — a plain log line never should.
TTY_LABEL_WIDTH = 42


class ProgressTracker:
    """Headless progress state: counts, elapsed, ETA, throughput.

    The tracker distinguishes *executed* units (new compute, which drives
    the ETA) from *restored* ones (replayed from a store on resume, which
    must not make the remaining work look faster than it is).
    """

    def __init__(self, total: int = 0, clock=time.monotonic) -> None:
        self._clock = clock
        self.started = clock()
        self.total = int(total)
        self.done = 0
        self.executed = 0
        self.restored = 0

    def update(self, done: int, total: int, restored: bool = False) -> None:
        """Fold one progress callback: ``done`` of ``total`` units finished.

        ``restored=True`` marks a unit replayed from the store (the
        executor's progress callback passes ``result=None`` for those).
        """
        self.done = int(done)
        self.total = int(total)
        if restored:
            self.restored = done
        else:
            self.executed += 1

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the tracker was created."""
        return self._clock() - self.started

    @property
    def remaining(self) -> int:
        """Units not yet finished."""
        return max(0, self.total - self.done)

    @property
    def percent(self) -> float:
        """Completion percentage (100.0 for an empty total)."""
        return 100.0 * self.done / self.total if self.total else 100.0

    def eta_seconds(self) -> Optional[float]:
        """Estimated seconds to completion, or ``None`` when unknowable.

        The estimate extrapolates the mean wall-clock cost of the units
        *executed this run* — restored units carry no timing signal.
        Returns ``0.0`` when nothing remains and ``None`` before the first
        executed unit.
        """
        if not self.remaining:
            return 0.0
        if not self.executed:
            return None
        return self.elapsed / self.executed * self.remaining

    def rate(self) -> float:
        """Executed units per second this run (0.0 before any timing)."""
        elapsed = self.elapsed
        return self.executed / elapsed if elapsed > 0 else 0.0

    def line(self, label: str = "") -> str:
        """One plain progress line with no terminal sizing applied.

        ``label`` (typically a unit id) is appended verbatim — never
        padded, never truncated — so logs keep full identifiers.
        """
        eta = self.eta_seconds()
        if eta is None:
            eta_text = "?"
        elif not self.remaining:
            eta_text = "done"
        else:
            eta_text = f"{eta:.1f}s"
        parts = [
            f"[{self.done}/{self.total}]",
            f"{self.percent:5.1f}%",
            f"elapsed {self.elapsed:7.1f}s",
            f"eta {eta_text}",
            f"{self.rate():6.2f} units/s",
        ]
        if label:
            parts.append(label)
        return "  ".join(parts)


class ProgressPrinter:
    """Progress/ETA/throughput reporter writing to stderr.

    On an interactive terminal the single status line is redrawn in place
    (carriage return, no newline) with the label padded and truncated to
    :data:`TTY_LABEL_WIDTH` columns so redraws overwrite cleanly.  On a
    non-TTY stream — CI logs, files, pipes — redrawing would interleave
    control characters into the log, so the printer falls back to periodic
    plain lines instead (one full line every :data:`PLAIN_INTERVAL`
    seconds plus a final one), rendered by
    :meth:`ProgressTracker.line` with the full, untruncated label.
    """

    #: Minimum seconds between plain progress lines on non-TTY streams.
    PLAIN_INTERVAL = 5.0

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.tracker = ProgressTracker()
        isatty = getattr(self.stream, "isatty", None)
        self.interactive = bool(isatty()) if callable(isatty) else False
        self._last_plain = -math.inf

    def __call__(self, done: int, total: int, result) -> None:
        """Executor progress callback: fold one update and maybe print."""
        self.tracker.update(done, total, restored=result is None)
        label = result.unit_id if result is not None else "(restored from store)"
        if self.interactive:
            eta = self.tracker.eta_seconds()
            if eta is None:
                eta_text = "      ?"
            elif not self.tracker.remaining:
                eta_text = "   done"
            else:
                eta_text = f"{eta:7.1f}s"
            line = (
                f"[{done}/{total}] {self.tracker.percent:5.1f}%  "
                f"elapsed {self.tracker.elapsed:7.1f}s  eta {eta_text}  "
                f"{self.tracker.rate():6.2f} units/s  "
                f"{label:<{TTY_LABEL_WIDTH}.{TTY_LABEL_WIDTH}s}"
            )
            self.stream.write("\r" + line)
        else:
            now = time.monotonic()
            if (
                self.tracker.remaining
                and now - self._last_plain < self.PLAIN_INTERVAL
            ):
                return
            self._last_plain = now
            self.stream.write(self.tracker.line(label) + "\n")
        self.stream.flush()

    def finish(self) -> None:
        """Terminate the interactive status line (no-op on plain streams)."""
        if self.interactive:
            self.stream.write("\n")
            self.stream.flush()
