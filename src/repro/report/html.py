"""Self-contained HTML report: the Fig.-2 curve grid plus summary tables.

The page embeds its stylesheet and every chart (inline SVG from
:mod:`repro.report.svg`) directly, so ``report.html`` is a single file with
no scripts and no external assets — it renders offline, attaches to CI runs
as one artifact, and never pulls a plotting dependency into the repo.
"""

from __future__ import annotations

import math
from html import escape
from typing import List, Optional, Sequence

from ..campaign.planner import MODE_SIMULATE
from ..experiments.metrics import PairwiseStatistics, ValidationRollup
from .aggregate import StoreAggregate
from .series import resolve_protocols
from .svg import render_svg_chart, render_tightness_panel

_STYLE = """\
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; font-size: 0.9em; }
th { background: #f0f0f0; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.grid { display: flex; flex-wrap: wrap; gap: 12px; }
.grid figure { margin: 0; border: 1px solid #ddd; padding: 4px; }
.grid figcaption { font-size: 0.75em; text-align: center; color: #555; }
.note { color: #777; font-size: 0.85em; }
"""


def _ratio_cell(value: float) -> str:
    """One ``<td>`` for an acceptance ratio (``n/a`` for NaN)."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return '<td class="num">n/a</td>'
    return f'<td class="num">{value:.3f}</td>'


def _pairwise_table(stats: PairwiseStatistics, matrix: str, title: str) -> str:
    """Render one dominance/outperformance matrix as an HTML table."""
    data = getattr(stats, matrix)
    protocols = stats.protocols
    total = stats.scenario_count
    rows = [f"<h2>{escape(title)} ({total} scenarios)</h2>", "<table>"]
    rows.append(
        "<tr><th></th>"
        + "".join(f"<th>{escape(p)}</th>" for p in protocols)
        + "</tr>"
    )
    for a in protocols:
        cells = [f"<th>{escape(a)}</th>"]
        for b in protocols:
            if a == b:
                cells.append("<td>N/A</td>")
            else:
                count = data[a][b]
                percent = 100.0 * count / total if total else 0.0
                cells.append(f'<td class="num">{count} ({percent:.1f}%)</td>')
        rows.append("<tr>" + "".join(cells) + "</tr>")
    rows.append("</table>")
    return "\n".join(rows)


def _tightness_section(aggregate: StoreAggregate) -> List[str]:
    """The simulate-mode bound-tightness section (table + SVG panel)."""
    totals = aggregate.validation_totals()
    parts = ["<h2>Bound tightness (observed / analytical WCRT)</h2>"]
    if not totals:
        parts.append(
            '<p class="note">No scenario has completed yet — no validation '
            "evidence.</p>"
        )
        return parts

    def cells(rollup: ValidationRollup) -> str:
        ratio = rollup.ratio
        maximum = "n/a" if ratio.maximum is None else f"{ratio.maximum:.3f}"
        return (
            f'<td class="num">{rollup.simulated}</td>'
            f'<td class="num">{ratio.count}</td>'
            + _ratio_cell(ratio.mean)
            + f'<td class="num">{maximum}</td>'
            f'<td class="num">{rollup.deadline_misses}</td>'
            f'<td class="num">'
            f"{rollup.mutual_exclusion_violations + rollup.processor_overlaps + rollup.spin_exclusivity_violations}</td>"
            f'<td class="num">{ratio.overflows}</td>'
            f'<td class="num">{rollup.truncated}</td>'
        )

    parts.append("<table>")
    parts.append(
        "<tr><th>Scenario</th><th>Protocol</th><th>Simulated</th>"
        "<th>Task ratios</th><th>Mean</th><th>Max</th><th>Misses</th>"
        "<th>Invariant viol.</th><th>Bound viol.</th><th>Truncated</th></tr>"
    )
    for report in aggregate.complete_reports():
        if not report.validation:
            continue
        for protocol in aggregate.protocols:
            rollup = report.validation.get(protocol)
            if rollup is None:
                continue
            parts.append(
                f"<tr><td>{escape(report.scenario.scenario_id)}</td>"
                f"<td>{escape(protocol)}</td>{cells(rollup)}</tr>"
            )
    for protocol in aggregate.protocols:
        if protocol in totals:
            parts.append(
                f"<tr><th>all</th><th>{escape(protocol)}</th>"
                f"{cells(totals[protocol])}</tr>"
            )
    parts.append("</table>")
    panel_stats = {
        protocol: totals[protocol].ratio
        for protocol in aggregate.protocols
        if protocol in totals
    }
    parts.append(f"<figure>{render_tightness_panel(panel_stats)}</figure>")
    return parts


def render_html_report(
    aggregate: StoreAggregate,
    protocols: Optional[Sequence[str]] = None,
    *,
    chart_width: int = 360,
    chart_height: int = 240,
) -> str:
    """Render a full store aggregate as one self-contained HTML page.

    Covers the campaign summary, per-protocol weighted acceptance, the
    Sec.-VII dominance/outperformance tables, and an acceptance-ratio chart
    for every complete scenario (the Fig.-2 grid, at whatever grid size the
    store holds).  ``protocols`` restricts and orders the reported curves.
    """
    selected = list(protocols) if protocols is not None else aggregate.protocols
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>Campaign report</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        "<h1>Campaign report</h1>",
    ]

    # Summary.
    manifest = aggregate.manifest
    complete = aggregate.complete_reports()
    parts.append("<table>")
    summary_rows = [
        ("Config hash", manifest.get("config_hash", "")[:16] + "…"),
        ("Mode", aggregate.mode),
        ("Protocols", ", ".join(aggregate.protocols)),
        (
            "Scenarios",
            f"{len(complete)}/{len(aggregate.scenarios)} complete",
        ),
        (
            "Work units",
            f"{aggregate.completed_units}/{aggregate.total_units} stored",
        ),
        ("Evaluated task sets", f"{aggregate.evaluated_samples}"),
        ("Failed task-set draws", f"{aggregate.generation_failures}"),
        ("Analysis compute", f"{aggregate.elapsed_seconds:.1f}s"),
    ]
    for label, value in summary_rows:
        parts.append(
            f"<tr><th>{escape(label)}</th><td>{escape(str(value))}</td></tr>"
        )
    parts.append("</table>")
    if not aggregate.complete:
        parts.append(
            '<p class="note">Campaign incomplete — incomplete scenarios are '
            "omitted below; resume the campaign to fill them in.</p>"
        )

    # Weighted acceptance rollup.
    weighted = aggregate.weighted_acceptance()
    if weighted:
        parts.append("<h2>Weighted acceptance (complete scenarios)</h2>")
        parts.append("<table><tr>")
        parts.extend(f"<th>{escape(p)}</th>" for p in selected)
        parts.append("</tr><tr>")
        parts.extend(_ratio_cell(weighted.get(p, math.nan)) for p in selected)
        parts.append("</tr></table>")

    # Bound tightness (simulate-mode validation campaigns).
    if aggregate.mode == MODE_SIMULATE:
        parts.extend(_tightness_section(aggregate))

    # Pairwise dominance / outperformance (Tables 2 and 3).
    stats = aggregate.pairwise()
    if stats is not None:
        parts.append(_pairwise_table(stats, "dominance", "Dominance"))
        parts.append(_pairwise_table(stats, "outperformance", "Outperformance"))

    # Compute profile (deterministic telemetry counters; see markdown.py
    # for why wall-clock timings are excluded from report artefacts).
    profile = aggregate.compute_profile()
    if profile is not None and profile.telemetry:
        parts.append("<h2>Compute profile</h2>")
        parts.append(
            '<p class="note">Deterministic telemetry counters merged over '
            f"{profile.units_with_telemetry} work-unit snapshots "
            "(events.jsonl); wall-clock timings live in "
            "<code>python -m repro.campaign profile</code>.</p>"
        )
        counters = profile.deterministic_counters()
        if counters:
            parts.append("<table><tr><th>Counter</th><th>Value</th></tr>")
            for name in sorted(counters):
                parts.append(
                    f"<tr><td><code>{escape(name)}</code></td>"
                    f'<td class="num">{counters[name]}</td></tr>'
                )
            parts.append("</table>")
        histogram = profile.solver_histogram()
        if histogram:
            parts.append(
                "<table><tr><th>Solver iterations</th>"
                "<th>Fixed points</th></tr>"
            )
            for label, count in histogram:
                parts.append(
                    f"<tr><td>{escape(label)}</td>"
                    f'<td class="num">{count}</td></tr>'
                )
            parts.append("</table>")

    # The curve grid.
    parts.append(f"<h2>Acceptance-ratio curves ({len(complete)} scenarios)</h2>")
    parts.append('<div class="grid">')
    for report in complete:
        chart_protocols = resolve_protocols(report.sweep, protocols)
        chart = render_svg_chart(
            report.sweep,
            chart_protocols,
            width=chart_width,
            height=chart_height,
        )
        failures = (
            report.sweep.curves[chart_protocols[0]].total_generation_failures
            if chart_protocols
            else 0
        )
        caption = f"{report.scenario.scenario_id} — {failures} failed draws"
        parts.append(
            f"<figure>{chart}<figcaption>{escape(caption)}</figcaption></figure>"
        )
    parts.append("</div>")

    incomplete = aggregate.incomplete_reports()
    if incomplete:
        parts.append(f"<h2>Incomplete scenarios ({len(incomplete)})</h2><ul>")
        for report in incomplete:
            parts.append(
                f"<li>{escape(report.scenario.scenario_id)}: "
                f"{report.points_done}/{report.points_total} points</li>"
            )
        parts.append("</ul>")

    parts.append("</body></html>")
    return "\n".join(parts)
