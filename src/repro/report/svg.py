"""Inline-SVG rendering of acceptance-ratio curves (zero dependencies).

One sweep becomes one ``<svg>`` element: a polyline per protocol over the
normalized-utilization axis, with axis ticks, a legend, and — like every
other renderer — *gaps* where a utilization point realised no task set
(NaN acceptance ratio splits the polyline instead of interpolating across
the hole).  The markup is self-contained (no scripts, no external assets)
so it can be embedded verbatim into the HTML report bundle.

:func:`render_tightness_panel` renders the simulate-mode companion chart —
the observed/bound ratio histogram per protocol — with the same
zero-dependency, deterministic-markup constraints.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence
from xml.sax.saxutils import escape

from ..experiments.metrics import TIGHTNESS_BINS, TightnessStats
from ..experiments.runner import SweepResult
from .series import resolve_protocols, series_rows

#: Line colors per protocol slot (cycled when more protocols are plotted).
#: Chosen for mutual contrast on a white background.
CURVE_COLORS = (
    "#1f77b4",  # blue
    "#d62728",  # red
    "#2ca02c",  # green
    "#9467bd",  # purple
    "#ff7f0e",  # orange
    "#8c564b",  # brown
    "#17becf",  # cyan
    "#7f7f7f",  # grey
)

#: Dash patterns cycled alongside the colors so curves stay tellable apart
#: even when printed in greyscale.
CURVE_DASHES = ("", "6,3", "2,2", "8,3,2,3", "4,4", "1,3", "10,4", "3,6")


def _fmt(value: float) -> str:
    """Compact fixed-point coordinate formatting (SVG user units)."""
    return f"{value:.2f}".rstrip("0").rstrip(".")


def curve_segments(
    xs: Sequence[float], ys: Sequence[float]
) -> List[List[tuple]]:
    """Split a sampled curve into contiguous non-NaN segments.

    Each returned segment is a list of ``(x, y)`` pairs; NaN ``y`` values
    terminate the current segment, so plotting one polyline per segment
    leaves a visible gap instead of bridging unrealised points.
    """
    segments: List[List[tuple]] = []
    current: List[tuple] = []
    for x, y in zip(xs, ys):
        if math.isnan(y):
            if current:
                segments.append(current)
                current = []
            continue
        current.append((x, y))
    if current:
        segments.append(current)
    return segments


def render_svg_chart(
    result: SweepResult,
    protocols: Optional[Sequence[str]] = None,
    *,
    width: int = 360,
    height: int = 240,
    title: Optional[str] = None,
) -> str:
    """Render one sweep as a self-contained ``<svg>`` acceptance-ratio chart.

    ``protocols`` selects and orders the plotted curves (default: the
    paper's figure order restricted to the sweep); ``title`` defaults to the
    scenario id.  The x axis is the normalized utilization ``U/m`` in
    ``[0, 1]``, the y axis the acceptance ratio in ``[0, 1]``.
    """
    protocols = resolve_protocols(result, protocols)
    rows = series_rows(result, protocols)
    title = title if title is not None else result.scenario.scenario_id

    margin_left, margin_right = 42.0, 10.0
    margin_top, margin_bottom = 22.0, 30.0 + 14.0 * ((len(protocols) + 2) // 3)
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    def x_pos(u: float) -> float:
        return margin_left + u * plot_w

    def y_pos(ratio: float) -> float:
        return margin_top + (1.0 - ratio) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" class="curve-chart">',
        f'<title>{escape(title)}</title>',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>',
        f'<text x="{_fmt(margin_left)}" y="14" font-size="11" '
        f'font-family="sans-serif">{escape(title)}</text>',
    ]

    # Axes, gridlines, and tick labels.
    for tick in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = y_pos(tick)
        parts.append(
            f'<line x1="{_fmt(margin_left)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(margin_left + plot_w)}" y2="{_fmt(y)}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(margin_left - 6)}" y="{_fmt(y + 3)}" font-size="9" '
            f'text-anchor="end" font-family="sans-serif">{tick:g}</text>'
        )
        x = x_pos(tick)
        parts.append(
            f'<text x="{_fmt(x)}" y="{_fmt(margin_top + plot_h + 12)}" '
            f'font-size="9" text-anchor="middle" font-family="sans-serif">{tick:g}</text>'
        )
    parts.append(
        f'<rect x="{_fmt(margin_left)}" y="{_fmt(margin_top)}" '
        f'width="{_fmt(plot_w)}" height="{_fmt(plot_h)}" fill="none" '
        f'stroke="#333333" stroke-width="1"/>'
    )

    # One polyline per contiguous non-NaN segment of each protocol's curve.
    xs = [row["normalized_utilization"] for row in rows]
    for index, protocol in enumerate(protocols):
        color = CURVE_COLORS[index % len(CURVE_COLORS)]
        dash = CURVE_DASHES[index % len(CURVE_DASHES)]
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        ys = [row[protocol] for row in rows]
        for segment in curve_segments(xs, ys):
            if len(segment) == 1:
                x, y = segment[0]
                parts.append(
                    f'<circle cx="{_fmt(x_pos(x))}" cy="{_fmt(y_pos(y))}" '
                    f'r="2" fill="{color}"/>'
                )
                continue
            coords = " ".join(
                f"{_fmt(x_pos(x))},{_fmt(y_pos(y))}" for x, y in segment
            )
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" '
                f'stroke-width="1.5"{dash_attr}/>'
            )

    # Legend: up to three entries per row under the plot.
    legend_top = margin_top + plot_h + 24.0
    for index, protocol in enumerate(protocols):
        color = CURVE_COLORS[index % len(CURVE_COLORS)]
        dash = CURVE_DASHES[index % len(CURVE_DASHES)]
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        column, line = index % 3, index // 3
        x = margin_left + column * (plot_w / 3.0)
        y = legend_top + 14.0 * line
        parts.append(
            f'<line x1="{_fmt(x)}" y1="{_fmt(y - 3)}" x2="{_fmt(x + 18)}" '
            f'y2="{_fmt(y - 3)}" stroke="{color}" stroke-width="1.5"{dash_attr}/>'
        )
        parts.append(
            f'<text x="{_fmt(x + 22)}" y="{_fmt(y)}" font-size="9" '
            f'font-family="sans-serif">{escape(protocol)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def render_tightness_panel(
    stats: Dict[str, TightnessStats],
    *,
    width: int = 520,
    height: int = 260,
    title: str = "Observed / bound ratio distribution",
) -> str:
    """Render observed/bound ratio histograms as one ``<svg>`` bar panel.

    ``stats`` maps protocol name → folded :class:`TightnessStats` (report
    order is preserved).  Each of the ``TIGHTNESS_BINS`` ratio bins shows
    one bar per protocol, normalised to each protocol's own total count so
    protocols with different acceptance volumes stay comparable; empty
    distributions render as an explanatory note instead of an empty frame.
    """
    protocols = [name for name, s in stats.items() if s.count]
    margin_left, margin_right, margin_top = 42.0, 10.0, 22.0
    margin_bottom = 30.0 + 14.0 * ((len(protocols) + 2) // 3)
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" class="tightness-panel">',
        f"<title>{escape(title)}</title>",
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>',
        f'<text x="{_fmt(margin_left)}" y="14" font-size="11" '
        f'font-family="sans-serif">{escape(title)}</text>',
    ]
    if not protocols:
        parts.append(
            f'<text x="{_fmt(width / 2)}" y="{_fmt(height / 2)}" font-size="10" '
            f'text-anchor="middle" font-family="sans-serif">no simulated '
            f"task sets yet</text>"
        )
        parts.append("</svg>")
        return "\n".join(parts)

    peak = max(
        max(count / s.count for count in s.histogram)
        for s in (stats[name] for name in protocols)
    )
    peak = peak or 1.0

    # Horizontal gridlines with fraction labels.
    for tick in (0.0, 0.5, 1.0):
        y = margin_top + (1.0 - tick) * plot_h
        parts.append(
            f'<line x1="{_fmt(margin_left)}" y1="{_fmt(y)}" '
            f'x2="{_fmt(margin_left + plot_w)}" y2="{_fmt(y)}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{_fmt(margin_left - 6)}" y="{_fmt(y + 3)}" font-size="9" '
            f'text-anchor="end" font-family="sans-serif">{tick * peak:.2f}</text>'
        )

    bin_w = plot_w / TIGHTNESS_BINS
    bar_w = (bin_w * 0.8) / len(protocols)
    for bin_index in range(TIGHTNESS_BINS):
        x0 = margin_left + bin_index * bin_w
        parts.append(
            f'<text x="{_fmt(x0 + bin_w / 2)}" y="{_fmt(margin_top + plot_h + 12)}" '
            f'font-size="8" text-anchor="middle" font-family="sans-serif">'
            f"{(bin_index + 1) / TIGHTNESS_BINS:.1f}</text>"
        )
        for slot, name in enumerate(protocols):
            s = stats[name]
            fraction = (s.histogram[bin_index] / s.count) / peak
            bar_h = fraction * plot_h
            if bar_h <= 0:
                continue
            color = CURVE_COLORS[slot % len(CURVE_COLORS)]
            x = x0 + bin_w * 0.1 + slot * bar_w
            parts.append(
                f'<rect x="{_fmt(x)}" y="{_fmt(margin_top + plot_h - bar_h)}" '
                f'width="{_fmt(bar_w)}" height="{_fmt(bar_h)}" fill="{color}" '
                f'fill-opacity="0.85"/>'
            )
    parts.append(
        f'<rect x="{_fmt(margin_left)}" y="{_fmt(margin_top)}" '
        f'width="{_fmt(plot_w)}" height="{_fmt(plot_h)}" fill="none" '
        f'stroke="#333333" stroke-width="1"/>'
    )

    # Legend (color swatch + name + max ratio marker text).
    legend_top = margin_top + plot_h + 24.0
    for slot, name in enumerate(protocols):
        color = CURVE_COLORS[slot % len(CURVE_COLORS)]
        column, line = slot % 3, slot // 3
        x = margin_left + column * (plot_w / 3.0)
        y = legend_top + 14.0 * line
        maximum = stats[name].maximum
        label = f"{name} (max {maximum:.3f})" if maximum is not None else name
        parts.append(
            f'<rect x="{_fmt(x)}" y="{_fmt(y - 8)}" width="10" height="8" '
            f'fill="{color}" fill-opacity="0.85"/>'
        )
        parts.append(
            f'<text x="{_fmt(x + 14)}" y="{_fmt(y)}" font-size="9" '
            f'font-family="sans-serif">{escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
