"""Per-sweep series assembly — the one place acceptance rows are built.

Both the single-sweep figure helpers (:mod:`repro.experiments.figures`) and
the grid reporting renderers in this package turn a
:class:`~repro.experiments.runner.SweepResult` into per-utilization-point
rows through :func:`series_rows` / :func:`series_csv`, so the CSV emitted
for one scenario is byte-identical no matter which path produced it.

Rows carry NaN acceptance ratios for points where every task-set draw
failed (see ``SweepCurve.generation_failures``); the renderers turn those
into ``n/a`` table cells, ASCII-plot gaps, empty CSV cells, and broken SVG
polylines — never a fabricated ratio.
"""

from __future__ import annotations

import csv
import io
import math
from typing import List, Optional, Sequence

from ..experiments.figures import FIGURE_PROTOCOLS
from ..experiments.runner import SweepResult

#: Default protocol order of series assembly: the paper's plot order.  The
#: canonical tuple lives in ``experiments.figures`` (that layer cannot
#: import the campaign registry the order mirrors); this alias keeps one
#: definition flowing through both the single-sweep and the grid path.
DEFAULT_PROTOCOL_ORDER = FIGURE_PROTOCOLS


def resolve_protocols(
    result: SweepResult,
    protocols: Optional[Sequence[str]] = None,
    default_order: Sequence[str] = DEFAULT_PROTOCOL_ORDER,
) -> List[str]:
    """Validate and resolve the protocol selection for one sweep.

    With ``protocols=None`` the sweep's curves are returned in
    ``default_order`` (possibly empty for a sweep with no curves).  A
    caller-supplied list must be free of duplicates and fully covered by the
    sweep; otherwise a :class:`ValueError` names the offending protocols
    instead of letting an ``IndexError``/``KeyError`` escape from deep inside
    a renderer.
    """
    if protocols is None:
        return [p for p in default_order if p in result.curves]
    resolved = list(protocols)
    duplicates = sorted({p for p in resolved if resolved.count(p) > 1})
    if duplicates:
        raise ValueError(f"duplicate protocol name(s): {', '.join(duplicates)}")
    missing = [p for p in resolved if p not in result.curves]
    if missing:
        available = ", ".join(result.curves) or "none"
        raise ValueError(
            f"sweep of scenario {result.scenario.scenario_id} has no curve "
            f"for protocol(s) {', '.join(missing)} (available: {available})"
        )
    return resolved


def series_rows(
    result: SweepResult, protocols: Optional[Sequence[str]] = None
) -> List[dict]:
    """Per-utilization-point acceptance ratios of one sweep (one dict each).

    Each row maps ``utilization``, ``normalized_utilization``,
    ``generation_failures``, and one key per protocol to that protocol's
    acceptance ratio (NaN where no task set was realised).  All curves of a
    sweep are built from the same task-set draws (the runner/campaign
    assembler guarantees it), so the shared ``generation_failures`` column is
    read from the first selected protocol's curve.  An empty selection — a
    sweep with no curves and no explicit ``protocols`` — yields ``[]``.
    """
    return _assemble_rows(result, resolve_protocols(result, protocols))


def _assemble_rows(result: SweepResult, protocols: List[str]) -> List[dict]:
    """Row assembly over an already-resolved protocol list."""
    if not protocols:
        return []
    rows: List[dict] = []
    reference = result.curves[protocols[0]]
    failures = reference.generation_failures
    ratios = {p: result.curves[p].acceptance_ratios for p in protocols}
    m = result.scenario.platform_size
    for index, utilization in enumerate(reference.utilizations):
        row = {
            "utilization": utilization,
            "normalized_utilization": utilization / m,
            "generation_failures": failures[index] if index < len(failures) else 0,
        }
        for protocol in protocols:
            row[protocol] = ratios[protocol][index]
        rows.append(row)
    return rows


def series_csv(
    result: SweepResult, protocols: Optional[Sequence[str]] = None
) -> str:
    """CSV text of one sweep's acceptance-ratio series.

    NaN ratios become empty cells.  This is the single CSV writer behind
    ``repro.experiments.series_to_csv`` and the report bundle's per-scenario
    files, so the two are byte-identical for the same sweep.
    """
    protocols = resolve_protocols(result, protocols)
    rows = _assemble_rows(result, protocols)
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer,
        fieldnames=[
            "utilization",
            "normalized_utilization",
            *protocols,
            "generation_failures",
        ],
        lineterminator="\n",
    )
    writer.writeheader()
    for row in rows:
        row = dict(row)
        for protocol in protocols:
            if math.isnan(row[protocol]):
                row[protocol] = ""
        writer.writerow(row)
    return buffer.getvalue()
