"""Report bundle writer: one directory with every deliverable of a store.

``write_report_bundle`` turns a :class:`~repro.report.aggregate.StoreAggregate`
into::

    <out>/
        REPORT.md            # summary + per-scenario series (Markdown)
        report.html          # self-contained HTML with inline-SVG curve grid
        series/<id>.csv      # one acceptance-ratio CSV per complete scenario

The CSVs go through :func:`repro.report.series.series_csv` — the same
writer the single-sweep helper ``repro.experiments.series_to_csv`` uses —
so a scenario's CSV is byte-identical whichever path produced it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .aggregate import StoreAggregate
from .html import render_html_report
from .markdown import render_markdown_report
from .series import resolve_protocols, series_csv

#: File/directory names inside a report bundle.
REPORT_MD_NAME = "REPORT.md"
REPORT_HTML_NAME = "report.html"
SERIES_DIR_NAME = "series"


@dataclass
class ReportBundle:
    """Paths of the files one :func:`write_report_bundle` call produced."""

    directory: str
    report_md: str
    report_html: str
    series_csvs: List[str] = field(default_factory=list)

    @property
    def paths(self) -> List[str]:
        """Every written file (Markdown, HTML, then the CSVs)."""
        return [self.report_md, self.report_html, *self.series_csvs]


def write_report_bundle(
    aggregate: StoreAggregate,
    out_dir: str,
    protocols: Optional[Sequence[str]] = None,
) -> ReportBundle:
    """Write the full report bundle for ``aggregate`` into ``out_dir``.

    ``protocols`` restricts and orders the reported curves (default: every
    protocol of the campaign).  Only complete scenarios receive a CSV; the
    Markdown/HTML reports list the incomplete ones explicitly.

    Every document is rendered *before* any file is touched and then written
    atomically (tmp + rename), so a render error — e.g. a protocol the
    campaign never ran — cannot truncate or tear a previously good bundle.
    """
    series_dir = os.path.join(out_dir, SERIES_DIR_NAME)
    bundle = ReportBundle(
        directory=out_dir,
        report_md=os.path.join(out_dir, REPORT_MD_NAME),
        report_html=os.path.join(out_dir, REPORT_HTML_NAME),
    )
    documents = [
        (bundle.report_md, render_markdown_report(aggregate, protocols=protocols)),
        (bundle.report_html, render_html_report(aggregate, protocols=protocols)),
    ]
    for report in aggregate.complete_reports():
        path = os.path.join(series_dir, f"{report.scenario.scenario_id}.csv")
        selected = resolve_protocols(report.sweep, protocols)
        documents.append((path, series_csv(report.sweep, selected)))
        bundle.series_csvs.append(path)

    os.makedirs(series_dir, exist_ok=True)
    for path, content in documents:
        temporary = path + ".tmp"
        with open(temporary, "w", newline="") as handle:
            handle.write(content)
        os.replace(temporary, path)
    return bundle
