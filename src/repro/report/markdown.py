"""Markdown report (``REPORT.md``): summary tables plus per-scenario series.

The Markdown output is deterministic for a given store — scenario sections
follow plan order, no timestamps or absolute paths appear — so a
fixed-seed campaign pins it byte-for-byte in a golden-file test.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..experiments.figures import render_ascii_plot, render_series_table
from ..experiments.tables import render_dominance_table, render_outperformance_table
from .aggregate import StoreAggregate
from .series import resolve_protocols


def _markdown_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A GitHub-flavoured Markdown table from pre-formatted cells."""
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _ratio(value: float) -> str:
    """Format an acceptance ratio for a Markdown cell (``n/a`` for NaN)."""
    return "n/a" if math.isnan(value) else f"{value:.3f}"


def render_markdown_report(
    aggregate: StoreAggregate, protocols: Optional[Sequence[str]] = None
) -> str:
    """Render a full store aggregate as one ``REPORT.md`` document.

    Sections: campaign summary, weighted acceptance, the Sec.-VII
    dominance/outperformance tables (as fenced text, matching the CLI
    export), and one series table + ASCII plot per complete scenario.
    ``protocols`` restricts and orders the reported curves.
    """
    manifest = aggregate.manifest
    complete = aggregate.complete_reports()
    incomplete = aggregate.incomplete_reports()

    parts: List[str] = ["# Campaign report", ""]
    parts.append(
        _markdown_table(
            ("", ""),
            [
                ("Config hash", f"`{manifest.get('config_hash', '')[:16]}…`"),
                ("Protocols", ", ".join(aggregate.protocols)),
                ("Scenarios", f"{len(complete)}/{len(aggregate.scenarios)} complete"),
                (
                    "Work units",
                    f"{aggregate.completed_units}/{aggregate.total_units} stored",
                ),
                ("Evaluated task sets", str(aggregate.evaluated_samples)),
                ("Failed task-set draws", str(aggregate.generation_failures)),
            ],
        )
    )
    parts.append("")
    if incomplete:
        parts.append(
            "**Campaign incomplete** — the scenarios below cover only the "
            "completed sweeps; resume the campaign to fill in the rest."
        )
        parts.append("")

    weighted = aggregate.weighted_acceptance()
    if weighted:
        selected = list(protocols) if protocols is not None else aggregate.protocols
        parts.append("## Weighted acceptance (complete scenarios)")
        parts.append("")
        parts.append(
            _markdown_table(
                selected,
                [[_ratio(weighted.get(p, math.nan)) for p in selected]],
            )
        )
        parts.append("")

    stats = aggregate.pairwise()
    if stats is not None:
        parts.append("## Pairwise statistics")
        parts.append("")
        parts.append("```text")
        parts.append(render_dominance_table(stats, protocols=stats.protocols))
        parts.append("```")
        parts.append("")
        parts.append("```text")
        parts.append(render_outperformance_table(stats, protocols=stats.protocols))
        parts.append("```")
        parts.append("")

    parts.append(f"## Acceptance-ratio series ({len(complete)} scenarios)")
    parts.append("")
    for report in complete:
        scenario_id = report.scenario.scenario_id
        chart_protocols = resolve_protocols(report.sweep, protocols)
        parts.append(f"### {scenario_id}")
        parts.append("")
        parts.append("```text")
        parts.append(
            render_series_table(report.sweep, chart_protocols, title=scenario_id)
        )
        parts.append("```")
        parts.append("")
        parts.append("```text")
        parts.append(render_ascii_plot(report.sweep, chart_protocols))
        parts.append("```")
        parts.append("")

    if incomplete:
        parts.append(f"## Incomplete scenarios ({len(incomplete)})")
        parts.append("")
        for report in incomplete:
            parts.append(
                f"- `{report.scenario.scenario_id}`: "
                f"{report.points_done}/{report.points_total} points"
            )
        parts.append("")

    return "\n".join(parts).rstrip() + "\n"
