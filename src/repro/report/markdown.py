"""Markdown report (``REPORT.md``): summary tables plus per-scenario series.

The Markdown output is deterministic for a given store — scenario sections
follow plan order, no timestamps or absolute paths appear — so a
fixed-seed campaign pins it byte-for-byte in a golden-file test.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..campaign.planner import MODE_SIMULATE
from ..experiments.figures import render_ascii_plot, render_series_table
from ..experiments.metrics import ValidationRollup
from ..experiments.tables import render_dominance_table, render_outperformance_table
from .aggregate import StoreAggregate
from .series import resolve_protocols


def _markdown_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A GitHub-flavoured Markdown table from pre-formatted cells."""
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _ratio(value: float) -> str:
    """Format an acceptance ratio for a Markdown cell (``n/a`` for NaN)."""
    return "n/a" if math.isnan(value) else f"{value:.3f}"


def _tightness_row(label: str, protocol: str, rollup: ValidationRollup) -> List[str]:
    """One bound-tightness table row from a validation rollup."""
    ratio = rollup.ratio
    return [
        label,
        protocol,
        str(rollup.simulated),
        str(ratio.count),
        _ratio(ratio.mean),
        "n/a" if ratio.maximum is None else f"{ratio.maximum:.3f}",
        str(rollup.deadline_misses),
        str(
            rollup.mutual_exclusion_violations
            + rollup.processor_overlaps
            + rollup.spin_exclusivity_violations
        ),
        str(ratio.overflows),
        str(rollup.truncated),
    ]


def render_tightness_section(aggregate: StoreAggregate) -> List[str]:
    """The bound-tightness section of a simulate-mode report (Markdown).

    One row per (complete scenario, protocol) plus per-protocol campaign
    totals: how many accepted task sets were simulated, the observed/bound
    ratio distribution (task-level mean and max), and the soundness
    counters — deadline misses, runtime invariant violations, and ratio
    overflows (observed > bound), all of which must be zero for the
    analysis to be sound.
    """
    totals = aggregate.validation_totals()
    parts: List[str] = ["## Bound tightness (observed / analytical WCRT)", ""]
    if not totals:
        parts.append("No scenario has completed yet — no validation evidence.")
        parts.append("")
        return parts
    header = (
        "Scenario",
        "Protocol",
        "Simulated",
        "Task ratios",
        "Mean",
        "Max",
        "Misses",
        "Invariant viol.",
        "Bound viol.",
        "Truncated",
    )
    rows: List[List[str]] = []
    for report in aggregate.complete_reports():
        if not report.validation:
            continue
        for protocol in aggregate.protocols:
            rollup = report.validation.get(protocol)
            if rollup is None:
                continue
            rows.append(
                _tightness_row(
                    f"`{report.scenario.scenario_id}`", protocol, rollup
                )
            )
    for protocol in aggregate.protocols:
        if protocol in totals:
            rows.append(_tightness_row("**all**", protocol, totals[protocol]))
    parts.append(_markdown_table(header, rows))
    parts.append("")
    violations = sum(rollup.violations for rollup in totals.values())
    failures = sum(rollup.rule_failures for rollup in totals.values())
    simulated = sum(rollup.simulated for rollup in totals.values())
    if violations == 0 and failures == 0:
        parts.append(
            f"Soundness: **no violations** over {simulated} simulated "
            "runs — zero deadline misses, zero mutual-exclusion violations, "
            "zero processor overlaps, zero spin-exclusivity violations, "
            "zero observed>bound overflows."
        )
    else:
        parts.append(
            f"Soundness: **{violations} violation(s) and {failures} "
            f"simulator rule failure(s)** over {simulated} simulated runs — "
            "see the table above; this indicates an analysis or simulator "
            "bug and must be investigated."
        )
    parts.append("")
    return parts


def render_profile_section(aggregate: StoreAggregate) -> List[str]:
    """The compute-profile section of a report (Markdown).

    Only the **deterministic** part of the telemetry appears here —
    integer counters and the bucketed solver-iteration histogram, which a
    fixed-seed campaign reproduces byte-for-byte at any worker count.
    Wall-clock timings (machine-dependent) stay in ``python -m
    repro.campaign profile``.  Empty when the store has no event stream
    (telemetry disabled, or a pre-observability store).
    """
    profile = aggregate.compute_profile()
    parts: List[str] = []
    if profile is None or not profile.telemetry:
        return parts
    parts.append("## Compute profile")
    parts.append("")
    parts.append(
        f"Deterministic telemetry counters merged over "
        f"{profile.units_with_telemetry} work-unit snapshots from the "
        "out-of-band event stream (`events.jsonl`).  Wall-clock timings "
        "are machine-dependent and deliberately omitted — see `python -m "
        "repro.campaign profile`."
    )
    parts.append("")
    counters = profile.deterministic_counters()
    if counters:
        parts.append(
            _markdown_table(
                ("Counter", "Value"),
                [[f"`{name}`", str(counters[name])] for name in sorted(counters)],
            )
        )
        parts.append("")
    histogram = profile.solver_histogram()
    if histogram:
        parts.append(
            _markdown_table(
                ("Solver iterations", "Fixed points"),
                [[label, str(count)] for label, count in histogram],
            )
        )
        parts.append("")
    return parts


def render_markdown_report(
    aggregate: StoreAggregate, protocols: Optional[Sequence[str]] = None
) -> str:
    """Render a full store aggregate as one ``REPORT.md`` document.

    Sections: campaign summary, weighted acceptance, the Sec.-VII
    dominance/outperformance tables (as fenced text, matching the CLI
    export), and one series table + ASCII plot per complete scenario.
    ``protocols`` restricts and orders the reported curves.
    """
    manifest = aggregate.manifest
    complete = aggregate.complete_reports()
    incomplete = aggregate.incomplete_reports()

    parts: List[str] = ["# Campaign report", ""]
    summary_rows = [
        ("Config hash", f"`{manifest.get('config_hash', '')[:16]}…`"),
        ("Mode", aggregate.mode),
        ("Protocols", ", ".join(aggregate.protocols)),
        ("Scenarios", f"{len(complete)}/{len(aggregate.scenarios)} complete"),
        (
            "Work units",
            f"{aggregate.completed_units}/{aggregate.total_units} stored",
        ),
        ("Evaluated task sets", str(aggregate.evaluated_samples)),
        ("Failed task-set draws", str(aggregate.generation_failures)),
    ]
    if aggregate.quarantined:
        # Conditional on purpose: fault-free reports keep their exact
        # historical bytes (golden-file pinned).
        summary_rows.append(("Quarantined units", str(len(aggregate.quarantined))))
    parts.append(_markdown_table(("", ""), summary_rows))
    parts.append("")
    if incomplete:
        parts.append(
            "**Campaign incomplete** — the scenarios below cover only the "
            "completed sweeps; resume the campaign to fill in the rest."
        )
        parts.append("")

    weighted = aggregate.weighted_acceptance()
    if weighted:
        selected = list(protocols) if protocols is not None else aggregate.protocols
        parts.append("## Weighted acceptance (complete scenarios)")
        parts.append("")
        parts.append(
            _markdown_table(
                selected,
                [[_ratio(weighted.get(p, math.nan)) for p in selected]],
            )
        )
        parts.append("")

    if aggregate.mode == MODE_SIMULATE:
        parts.extend(render_tightness_section(aggregate))

    stats = aggregate.pairwise()
    if stats is not None:
        parts.append("## Pairwise statistics")
        parts.append("")
        parts.append("```text")
        parts.append(render_dominance_table(stats, protocols=stats.protocols))
        parts.append("```")
        parts.append("")
        parts.append("```text")
        parts.append(render_outperformance_table(stats, protocols=stats.protocols))
        parts.append("```")
        parts.append("")

    parts.extend(render_profile_section(aggregate))

    parts.append(f"## Acceptance-ratio series ({len(complete)} scenarios)")
    parts.append("")
    for report in complete:
        scenario_id = report.scenario.scenario_id
        chart_protocols = resolve_protocols(report.sweep, protocols)
        parts.append(f"### {scenario_id}")
        parts.append("")
        parts.append("```text")
        parts.append(
            render_series_table(report.sweep, chart_protocols, title=scenario_id)
        )
        parts.append("```")
        parts.append("")
        parts.append("```text")
        parts.append(render_ascii_plot(report.sweep, chart_protocols))
        parts.append("```")
        parts.append("")

    if incomplete:
        parts.append(f"## Incomplete scenarios ({len(incomplete)})")
        parts.append("")
        for report in incomplete:
            parts.append(
                f"- `{report.scenario.scenario_id}`: "
                f"{report.points_done}/{report.points_total} points"
            )
        parts.append("")

    if aggregate.quarantined:
        parts.append(f"## Quarantined units ({len(aggregate.quarantined)})")
        parts.append("")
        parts.append(
            "These units exhausted their execution attempts and hold no "
            "successful checkpoint; their error records live in "
            "`quarantine.jsonl`.  Resuming the campaign retries them."
        )
        parts.append("")
        parts.append(
            _markdown_table(
                ("Unit", "Error kind", "Attempts", "Message"),
                [
                    [
                        f"`{unit_id}`",
                        str(record.get("error_kind", "?")),
                        str(record.get("attempts", "?")),
                        str(record.get("error_message", "")),
                    ]
                    for unit_id, record in sorted(
                        aggregate.quarantined.items()
                    )
                ],
            )
        )
        parts.append("")

    return "\n".join(parts).rstrip() + "\n"
