"""Reporting subsystem: from an on-disk campaign store to the paper's
figures and tables without re-running a single analysis.

The pipeline is ``store → aggregate → render``:

* :mod:`repro.report.aggregate` streams a store's ``results.jsonl``, folds
  the work-unit records into per-scenario sweep curves and cross-scenario
  rollups, and caches the folded state on disk keyed by the manifest hash
  (re-reporting an unchanged store is a cache read; a grown store costs
  only its appended tail);
* :mod:`repro.report.series` assembles per-sweep acceptance rows — the one
  code path shared with the single-sweep helpers in
  :mod:`repro.experiments.figures`;
* :mod:`repro.report.svg`, :mod:`repro.report.html`, and
  :mod:`repro.report.markdown` render the Fig.-2 curve grid and the
  Sec.-VII summary tables with zero plotting dependencies;
* :mod:`repro.report.bundle` writes the whole deliverable set
  (``REPORT.md``, ``report.html``, per-scenario CSVs) into one directory.

The CLI front-end is ``python -m repro.campaign report --store DIR``.
"""

from .aggregate import (
    CACHE_NAME,
    CacheStats,
    ScenarioReport,
    StoreAggregate,
    StoreAggregator,
    aggregate_store,
)
from .bundle import ReportBundle, write_report_bundle
from .html import render_html_report
from .markdown import render_markdown_report
from .series import (
    DEFAULT_PROTOCOL_ORDER,
    resolve_protocols,
    series_csv,
    series_rows,
)
from .svg import curve_segments, render_svg_chart

__all__ = [
    "CACHE_NAME",
    "CacheStats",
    "ScenarioReport",
    "StoreAggregate",
    "StoreAggregator",
    "aggregate_store",
    "ReportBundle",
    "write_report_bundle",
    "render_html_report",
    "render_markdown_report",
    "DEFAULT_PROTOCOL_ORDER",
    "resolve_protocols",
    "series_csv",
    "series_rows",
    "curve_segments",
    "render_svg_chart",
]
