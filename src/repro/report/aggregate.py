"""Streaming store aggregation: fold unit records into curves and rollups.

The aggregator is the single path from an on-disk campaign store to every
reporting artefact.  It streams ``results.jsonl`` (never re-running any
analysis), folds each work-unit record into per-scenario point slots, and
derives from those slots the per-scenario
:class:`~repro.experiments.runner.SweepResult` curves plus the
cross-scenario rollups of the paper's Sec. VII: weighted acceptance,
pairwise dominance/outperformance, and generation-failure accounting.

Because the store is append-only, aggregation caches cleanly: the folded
point slots plus the byte offset they cover are persisted next to the store
(``report_cache.json``), keyed by the manifest's ``config_hash`` (and the
store/cache format versions).  Re-reporting over an unchanged store costs
one cache read; over a grown store it costs exactly the appended tail —
O(changed work units), not O(store).  See DESIGN.md ("Reporting") for the
invalidation rules.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..campaign.executor import UnitResult, assemble_sweep
from ..campaign.planner import (
    MODE_ANALYZE,
    MODE_SIMULATE,
    CampaignPlan,
    plan_from_manifest,
)
from ..campaign.store import CampaignStore
from ..experiments.metrics import (
    PairwiseStatistics,
    ValidationRollup,
    weighted_acceptance,
)
from ..experiments.runner import SweepResult, pairwise_statistics
from ..experiments.scenarios import Scenario
from ..obs.telemetry import active as _active_telemetry

#: Version of the aggregation-cache layout.  Bumped on incompatible changes
#: so stale caches are rebuilt instead of misread.
#: Version 2: reduced point slots gained the optional ``simulation`` block
#: (simulate-mode validation evidence), which version-1 caches dropped.
CACHE_FORMAT_VERSION = 2

#: File name of the aggregation cache inside a store directory.
CACHE_NAME = "report_cache.json"


@dataclass
class CacheStats:
    """Counters describing how one aggregation used the on-disk cache."""

    #: Whether a valid cache was found and reused ("warm start").
    hit: bool = False
    #: Units restored from the cache instead of re-parsed from the store.
    units_from_cache: int = 0
    #: Units newly folded from the store's JSONL tail in this aggregation.
    units_folded: int = 0
    #: Why a cache was not reused (``"disabled"``, ``"cold"``, or the
    #: invalidation reason); ``None`` on a hit.
    miss_reason: Optional[str] = None


@dataclass
class ScenarioReport:
    """Aggregated view of one scenario inside a store."""

    scenario: Scenario
    sweep: SweepResult
    points_done: int
    points_total: int
    #: Per-protocol validation evidence folded over the scenario's stored
    #: units (simulate-mode stores only; ``None`` in analyze mode).
    validation: Optional[Dict[str, ValidationRollup]] = None

    @property
    def complete(self) -> bool:
        """Whether every planned utilization point of the scenario is stored."""
        return self.points_done >= self.points_total


@dataclass
class StoreAggregate:
    """Everything one report needs, derived from a single store pass."""

    store_directory: str
    manifest: dict
    plan: CampaignPlan
    scenarios: List[ScenarioReport]
    cache_stats: CacheStats
    #: Totals folded over every stored unit (complete or not).
    generation_failures: int = 0
    evaluated_samples: int = 0
    elapsed_seconds: float = 0.0
    #: Unresolved quarantine records by unit id (units that exhausted their
    #: execution attempts and have no successful checkpoint; see
    #: ``docs/robustness.md``).  Empty for fault-free stores.
    quarantined: Dict[str, dict] = field(default_factory=dict)

    @property
    def protocols(self) -> List[str]:
        """Protocol names of the campaign (manifest order)."""
        return list(self.plan.protocol_names)

    @property
    def mode(self) -> str:
        """Campaign mode (``analyze`` or ``simulate``)."""
        return self.manifest.get("mode", MODE_ANALYZE)

    def validation_totals(self) -> Dict[str, ValidationRollup]:
        """Campaign-wide validation rollup per protocol (simulate mode).

        Folded over the *complete* scenarios in plan order — matching every
        other campaign-wide rollup — so the totals correspond exactly to
        the per-scenario rows of the bound-tightness table.  Empty for
        analyze-mode stores or while no scenario has completed.
        """
        totals: Dict[str, ValidationRollup] = {}
        if self.mode != MODE_SIMULATE:
            return totals
        for report in self.complete_reports():
            if not report.validation:
                continue
            for name in self.protocols:
                rollup = report.validation.get(name)
                if rollup is None:
                    continue
                totals.setdefault(name, ValidationRollup()).merge(rollup)
        return totals

    @property
    def completed_units(self) -> int:
        """Number of work units present in the store."""
        return sum(report.points_done for report in self.scenarios)

    @property
    def total_units(self) -> int:
        """Number of work units the campaign plans."""
        return len(self.plan.units)

    @property
    def complete(self) -> bool:
        """Whether every planned unit of the campaign is stored."""
        return self.completed_units >= self.total_units

    def complete_reports(self) -> List[ScenarioReport]:
        """Scenario reports whose sweep covers every planned point."""
        return [report for report in self.scenarios if report.complete]

    def incomplete_reports(self) -> List[ScenarioReport]:
        """Scenario reports still missing utilization points."""
        return [report for report in self.scenarios if not report.complete]

    def complete_results(self) -> List[SweepResult]:
        """Sweep results of the complete scenarios (plan order)."""
        return [report.sweep for report in self.complete_reports()]

    def weighted_acceptance(self) -> Dict[str, float]:
        """Overall acceptance ratio per protocol over the complete scenarios.

        NaN (never a fabricated 0.0) when a protocol realised no samples;
        empty when no scenario completed yet.
        """
        curves = [
            report.sweep.curves[name]
            for report in self.complete_reports()
            for name in self.protocols
        ]
        if not curves:
            return {}
        totals = weighted_acceptance(curves)
        return {name: totals.get(name, math.nan) for name in self.protocols}

    def compute_profile(self):
        """The store's :class:`~repro.obs.profile.ComputeProfile`, or ``None``.

        ``None`` when the store recorded no events (telemetry disabled, or
        a pre-observability store) — report renderers then omit the
        "Compute profile" section.  Imported lazily: the profile module
        depends on the campaign store and must not be pulled in by plain
        aggregation.
        """
        from ..obs.profile import load_profile

        profile = load_profile(self.store_directory)
        if not profile.event_counts:
            return None
        return profile

    def pairwise(self) -> Optional[PairwiseStatistics]:
        """Dominance/outperformance over the complete scenarios.

        ``None`` when fewer than two protocols were evaluated or no scenario
        completed (the pairwise comparison would be meaningless).
        """
        results = self.complete_results()
        if not results or len(self.protocols) < 2:
            return None
        return pairwise_statistics(results, protocols=self.protocols)


def _reduce_record(record: dict) -> dict:
    """Strip a store record down to the fields aggregation needs.

    The optional ``simulation`` block is round-tripped through
    :class:`~repro.experiments.metrics.ValidationRollup` so a malformed
    cached slot raises here (invalidating the cache) instead of crashing
    assembly later.
    """
    reduced = {
        "utilization": float(record["utilization"]),
        "accepted": {k: int(v) for k, v in record["accepted"].items()},
        "evaluated": int(record["evaluated"]),
        "generation_failures": int(record.get("generation_failures", 0)),
        "elapsed_seconds": float(record.get("elapsed_seconds", 0.0)),
    }
    if record.get("simulation") is not None:
        reduced["simulation"] = {
            str(name): ValidationRollup.from_dict(data).to_dict()
            for name, data in record["simulation"].items()
        }
    return reduced


def _unit_result(scenario_id: str, point_index: int, data: dict) -> UnitResult:
    """Rebuild a :class:`UnitResult` from one cached/folded point slot."""
    return UnitResult(
        unit_id=f"{scenario_id}:p{point_index:02d}",
        scenario_id=scenario_id,
        point_index=point_index,
        utilization=data["utilization"],
        accepted=dict(data["accepted"]),
        evaluated=data["evaluated"],
        generation_failures=data["generation_failures"],
        elapsed_seconds=data["elapsed_seconds"],
    )


class StoreAggregator:
    """Incremental aggregation of one campaign store.

    Instantiate with the store directory and call :meth:`aggregate`.  With
    ``use_cache=True`` (the default) the folded state is read from and
    written back to ``<store>/report_cache.json``; with ``use_cache=False``
    the store is re-streamed from byte 0 and nothing is written.
    """

    def __init__(self, store_directory: str, use_cache: bool = True) -> None:
        self.store = CampaignStore(store_directory)
        self.use_cache = use_cache

    @property
    def cache_path(self) -> str:
        """Path of the on-disk aggregation cache."""
        return os.path.join(self.store.directory, CACHE_NAME)

    # ------------------------------------------------------------------ #
    # Cache I/O
    # ------------------------------------------------------------------ #
    def _load_cache(self, manifest: dict) -> "tuple[Optional[dict], Optional[str]]":
        """Load the cache if it is valid for ``manifest``.

        Returns ``(cache, None)`` on success or ``(None, reason)`` when the
        cache is absent or must be discarded.
        """
        if not os.path.isfile(self.cache_path):
            return None, "cold"
        try:
            with open(self.cache_path) as handle:
                cache = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None, "unreadable cache file"
        if not isinstance(cache, dict):
            return None, "malformed cache file"
        if cache.get("cache_format_version") != CACHE_FORMAT_VERSION:
            return None, "cache format version changed"
        if cache.get("store_format_version") != manifest.get("format_version"):
            return None, "store format version changed"
        if cache.get("config_hash") != manifest.get("config_hash"):
            return None, "campaign configuration changed"
        offset = cache.get("results_offset")
        if not isinstance(offset, int) or offset < 0:
            return None, "malformed cache offset"
        if offset > self.store.results_size():
            # The append-only contract was broken (results.jsonl shrank);
            # everything folded so far is suspect.
            return None, "results file shrank below the cached offset"
        points = cache.get("points")
        if not isinstance(points, dict):
            return None, "malformed cache points"
        # Deep-validate (and type-normalize) every cached slot now: a
        # corrupt entry must invalidate the cache here — rule 5 of the
        # DESIGN.md invalidation rules — not crash assembly later.
        try:
            cache["points"] = {
                str(scenario_id): {
                    str(int(index)): _reduce_record(slot)
                    for index, slot in slots.items()
                }
                for scenario_id, slots in points.items()
            }
        except (AttributeError, KeyError, TypeError, ValueError):
            return None, "malformed cache points"
        return cache, None

    def _write_cache(
        self, manifest: dict, offset: int, points: Dict[str, Dict[str, dict]]
    ) -> None:
        """Atomically persist the folded state next to the store."""
        payload = {
            "cache_format_version": CACHE_FORMAT_VERSION,
            "store_format_version": manifest["format_version"],
            "config_hash": manifest["config_hash"],
            "results_offset": offset,
            "points": points,
        }
        temporary = self.cache_path + ".tmp"
        with open(temporary, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
            handle.write("\n")
        os.replace(temporary, self.cache_path)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def aggregate(self) -> StoreAggregate:
        """Fold the store into a :class:`StoreAggregate` (one streaming pass)."""
        manifest = self.store.read_manifest()
        plan = plan_from_manifest(manifest)

        stats = CacheStats()
        points: Dict[str, Dict[str, dict]] = {}
        offset = 0
        if not self.use_cache:
            stats.miss_reason = "disabled"
        else:
            cache, reason = self._load_cache(manifest)
            if cache is None:
                stats.miss_reason = reason
            else:
                stats.hit = True
                points = cache["points"]
                offset = cache["results_offset"]
                stats.units_from_cache = sum(len(p) for p in points.values())

        # Fold the (possibly empty) un-cached tail of the results file.
        # First record wins per point, matching CampaignStore.load_records.
        for record, end_offset in self.store.iter_records(start_offset=offset):
            offset = end_offset
            scenario_id = record.get("scenario_id")
            point_index = record.get("point_index")
            if scenario_id is None or point_index is None:
                continue
            slots = points.setdefault(scenario_id, {})
            key = str(int(point_index))
            if key in slots:
                continue
            slots[key] = _reduce_record(record)
            stats.units_folded += 1

        if self.use_cache and (stats.units_folded or not stats.hit):
            try:
                self._write_cache(manifest, offset, points)
            except OSError:
                # A read-only store (archive mount, foreign ownership) must
                # not fail the report — the aggregate in hand is complete;
                # only the next invocation's warm start is lost.
                pass

        tel = _active_telemetry()
        if tel is not None:
            tel.count("aggregate.cache.hits" if stats.hit else "aggregate.cache.misses")
            tel.count("aggregate.units_from_cache", stats.units_from_cache)
            tel.count("aggregate.units_folded", stats.units_folded)

        aggregate = self._assemble(manifest, plan, points, stats)
        # Quarantine accounting rides along uncached: the file is tiny
        # (failures are exceptional) and a record can be healed by a later
        # successful run, so re-deriving it each pass is both cheap and
        # the only correct option.
        aggregate.quarantined = self.store.unresolved_quarantine()
        return aggregate

    def _assemble(
        self,
        manifest: dict,
        plan: CampaignPlan,
        points: Dict[str, Dict[str, dict]],
        stats: CacheStats,
    ) -> StoreAggregate:
        """Turn folded point slots into scenario reports and rollups."""
        expected: Dict[str, int] = {}
        for unit in plan.units:
            scenario_id = unit.scenario.scenario_id
            expected[scenario_id] = expected.get(scenario_id, 0) + 1

        aggregate = StoreAggregate(
            store_directory=self.store.directory,
            manifest=manifest,
            plan=plan,
            scenarios=[],
            cache_stats=stats,
        )
        simulate_mode = manifest.get("mode", MODE_ANALYZE) == MODE_SIMULATE
        for scenario in plan.scenarios:
            slots = points.get(scenario.scenario_id, {})
            unit_results = [
                _unit_result(scenario.scenario_id, int(index), data)
                for index, data in slots.items()
            ]
            sweep = assemble_sweep(scenario, plan.protocol_names, unit_results)
            validation = None
            if simulate_mode:
                # Fold in point order so float sums are byte-deterministic
                # regardless of completion/caching order.
                validation = {
                    name: ValidationRollup() for name in plan.protocol_names
                }
                for index in sorted(slots, key=int):
                    simulation = slots[index].get("simulation") or {}
                    for name, data in simulation.items():
                        if name in validation:
                            validation[name].merge(ValidationRollup.from_dict(data))
            aggregate.scenarios.append(
                ScenarioReport(
                    scenario=scenario,
                    sweep=sweep,
                    points_done=len(unit_results),
                    points_total=expected.get(scenario.scenario_id, 0),
                    validation=validation,
                )
            )
            for result in unit_results:
                aggregate.generation_failures += result.generation_failures
                aggregate.evaluated_samples += result.evaluated
                aggregate.elapsed_seconds += result.elapsed_seconds
        return aggregate


def aggregate_store(store_directory: str, use_cache: bool = True) -> StoreAggregate:
    """Aggregate one campaign store (see :class:`StoreAggregator`)."""
    return StoreAggregator(store_directory, use_cache=use_cache).aggregate()
