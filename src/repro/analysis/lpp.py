"""LPP baseline: local suspension-based semaphores under federated scheduling
(after Jiang et al. [11]).

Requests execute locally on the requesting task's cluster and blocked
vertices *suspend* (the processor is handed to other ready vertices of the
same task).  Requests are served in priority order with the usual
one-lower-priority-holder property.  The analysis follows the key-path
structure used by the prior local-execution work:

* every request of the key path can be blocked by at most one lower-priority
  critical section on the same resource;
* while a request is pending, higher-priority requests to the same resource
  may be served first; the per-request waiting window is bounded by a
  DPCP-style fixed point over the resource's higher-priority demand —
  crucially *without* DPCP-p's per-processor supply cap (the min(ε, ζ) of
  Lemma 3), which is precisely the analytical advantage the paper attributes
  to the distributed framework;
* requests of the task's own off-path vertices may be served before the path
  request, at most once each;
* blocking is suspension-based, so it adds to the path delay but does not
  occupy the cluster; the off-path workload is divided by the cluster size
  as usual.

As with the SPIN baseline this is a re-implementation at the level of detail
the paper evaluates; see DESIGN.md for the fidelity notes.
"""

from __future__ import annotations

import math
from typing import Dict

from ..model.platform import Platform
from ..model.task import DAGTask, TaskSet
from .federated import federated_topup_analysis
from .interfaces import SchedulabilityResult, SchedulabilityTest
from .rta import ceil_div_jobs, least_fixed_point


def lowest_priority_blocking(taskset: TaskSet, task: DAGTask, resource_id: int) -> float:
    """Longest critical section of a lower-priority task on ``resource_id``."""
    longest = 0.0
    for other in taskset:
        if other.priority >= task.priority or other.task_id == task.task_id:
            continue
        if other.request_count(resource_id) == 0:
            continue
        longest = max(longest, other.cs_length(resource_id))
    return longest


def higher_priority_request_workload(
    taskset: TaskSet,
    task: DAGTask,
    resource_id: int,
    interval: float,
    response_times: Dict[int, float],
) -> float:
    """Request workload of higher-priority tasks on ``resource_id`` within ``interval``."""
    total = 0.0
    for other in taskset:
        if other.task_id == task.task_id or other.priority <= task.priority:
            continue
        count = other.request_count(resource_id)
        if count == 0:
            continue
        carried = response_times.get(other.task_id, other.deadline)
        released = ceil_div_jobs(interval, other.period, carried)
        total += released * count * other.cs_length(resource_id)
    return total


def request_waiting_time(
    taskset: TaskSet,
    task: DAGTask,
    resource_id: int,
    response_times: Dict[int, float],
    divergence_bound: float,
) -> float:
    """Per-request waiting window under a priority-ordered local semaphore.

    The window covers the lower-priority holder, the task's own concurrent
    requests that may be served first, the higher-priority requests arriving
    within the window, and the request's own critical section.
    """
    own_cs = task.cs_length(resource_id)
    lower = lowest_priority_blocking(taskset, task, resource_id)
    own_concurrent = max(0, task.request_count(resource_id) - 1) * own_cs
    constant = own_cs + lower + own_concurrent

    def recurrence(window: float) -> float:
        return constant + higher_priority_request_workload(
            taskset, task, resource_id, window, response_times
        )

    solution = least_fixed_point(recurrence, constant, divergence_bound)
    return solution if solution is not None else math.inf


def lpp_wcrt(
    taskset: TaskSet,
    task: DAGTask,
    cluster_size: int,
    response_times: Dict[int, float],
) -> float:
    """WCRT bound of a task under local suspension-based semaphores."""
    if cluster_size < 1:
        return math.inf
    lstar = task.critical_path_length
    base = lstar + (task.wcet - lstar) / cluster_size

    # Per-request waiting windows do not depend on the task's response time,
    # so they are computed once.
    blocking = 0.0
    for rid in task.used_resources():
        count = task.request_count(rid)
        if count == 0:
            continue
        window = request_waiting_time(
            taskset, task, rid, response_times, task.deadline
        )
        if math.isinf(window):
            return math.inf
        # The window already includes the request's own critical section,
        # which is part of the path length; count only the waiting part.
        blocking += count * max(0.0, window - task.cs_length(rid))

    wcrt = base + blocking
    return wcrt if wcrt <= task.deadline + 1e-9 else wcrt


class LppTest(SchedulabilityTest):
    """Schedulability test for local suspension-based semaphores (LPP)."""

    name = "LPP"

    def test(self, taskset: TaskSet, platform: Platform) -> SchedulabilityResult:
        """Iteratively size clusters and bound every task's WCRT under LPP."""
        return federated_topup_analysis(taskset, platform, lpp_wcrt, self.name)
