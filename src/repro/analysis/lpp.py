"""LPP baseline: local suspension-based semaphores under federated scheduling
(after Jiang et al. [11]).

Requests execute locally on the requesting task's cluster and blocked
vertices *suspend* (the processor is handed to other ready vertices of the
same task).  Requests are served in priority order with the usual
one-lower-priority-holder property.  The analysis follows the key-path
structure used by the prior local-execution work:

* every request of the key path can be blocked by at most one lower-priority
  critical section on the same resource;
* while a request is pending, higher-priority requests to the same resource
  may be served first; the per-request waiting window is bounded by a
  DPCP-style fixed point over the resource's higher-priority demand —
  crucially *without* DPCP-p's per-processor supply cap (the min(ε, ζ) of
  Lemma 3), which is precisely the analytical advantage the paper attributes
  to the distributed framework;
* requests of the task's own off-path vertices may be served before the path
  request, at most once each;
* blocking is suspension-based, so it adds to the path delay but does not
  occupy the cluster; the off-path workload is divided by the cluster size
  as usual.

As with the SPIN baseline this is a re-implementation at the level of detail
the paper evaluates; see DESIGN.md for the fidelity notes.

Two interchangeable engines compute the bound:

* ``engine="kernel"`` (default) — :class:`LppKernel`, which compiles the
  static blocking constants and sparse higher-priority ``(task, weight)``
  columns once per task set on top of the shared
  :class:`~repro.analysis.engine.tables.CompiledTaskset`, and caches each
  task's request-window blocking across federated top-up retries (the
  windows do not depend on the cluster size);
* ``engine="reference"`` — the straight-line functions below, kept as the
  property-tested oracle (see ``tests/analysis/test_baseline_engine_equivalence.py``).
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, List, Optional, Tuple

from ..model.platform import Platform
from ..model.task import DAGTask, TaskSet
from .engine.solver import (
    DEFAULT_ENGINE,
    ENGINE_KERNEL,
    ETA_GUARD,
    NO_CONVERGENCE,
    check_engine,
    solve_scalar,
    warn_no_convergence,
)
from .engine.tables import CompiledTaskset, compile_taskset
from .federated import federated_topup_analysis
from .interfaces import SchedulabilityResult, SchedulabilityTest
from .rta import ceil_div_jobs, least_fixed_point

_ceil = math.ceil


# --------------------------------------------------------------------------- #
# Reference (straight-line) implementation — the property-tested oracle
# --------------------------------------------------------------------------- #
def lowest_priority_blocking(taskset: TaskSet, task: DAGTask, resource_id: int) -> float:
    """Longest critical section of a lower-priority task on ``resource_id``."""
    longest = 0.0
    for other in taskset:
        if other.priority >= task.priority or other.task_id == task.task_id:
            continue
        if other.request_count(resource_id) == 0:
            continue
        longest = max(longest, other.cs_length(resource_id))
    return longest


def higher_priority_request_workload(
    taskset: TaskSet,
    task: DAGTask,
    resource_id: int,
    interval: float,
    response_times: Dict[int, float],
) -> float:
    """Request workload of higher-priority tasks on ``resource_id`` within ``interval``."""
    total = 0.0
    for other in taskset:
        if other.task_id == task.task_id or other.priority <= task.priority:
            continue
        count = other.request_count(resource_id)
        if count == 0:
            continue
        carried = response_times.get(other.task_id, other.deadline)
        released = ceil_div_jobs(interval, other.period, carried)
        total += released * count * other.cs_length(resource_id)
    return total


def request_waiting_time(
    taskset: TaskSet,
    task: DAGTask,
    resource_id: int,
    response_times: Dict[int, float],
    divergence_bound: float,
) -> float:
    """Per-request waiting window under a priority-ordered local semaphore.

    The window covers the lower-priority holder, the task's own concurrent
    requests that may be served first, the higher-priority requests arriving
    within the window, and the request's own critical section.
    """
    own_cs = task.cs_length(resource_id)
    lower = lowest_priority_blocking(taskset, task, resource_id)
    own_concurrent = max(0, task.request_count(resource_id) - 1) * own_cs
    constant = own_cs + lower + own_concurrent

    def recurrence(window: float) -> float:
        return constant + higher_priority_request_workload(
            taskset, task, resource_id, window, response_times
        )

    solution = least_fixed_point(recurrence, constant, divergence_bound)
    return solution if solution is not None else math.inf


def lpp_wcrt(
    taskset: TaskSet,
    task: DAGTask,
    cluster_size: int,
    response_times: Dict[int, float],
) -> float:
    """WCRT bound of a task under local suspension-based semaphores."""
    if cluster_size < 1:
        return math.inf
    lstar = task.critical_path_length
    base = lstar + (task.wcet - lstar) / cluster_size

    # Per-request waiting windows do not depend on the task's response time,
    # so they are computed once.
    blocking = 0.0
    for rid in task.used_resources():
        count = task.request_count(rid)
        if count == 0:
            continue
        window = request_waiting_time(
            taskset, task, rid, response_times, task.deadline
        )
        if math.isinf(window):
            return math.inf
        # The window already includes the request's own critical section,
        # which is part of the path length; count only the waiting part.
        blocking += count * max(0.0, window - task.cs_length(rid))

    # The schedulability comparison against the deadline is the top-up
    # loop's job (federated_topup_analysis); the bound is returned as-is.
    return base + blocking


# --------------------------------------------------------------------------- #
# Compiled kernel engine
# --------------------------------------------------------------------------- #
class _LppLane:
    """Per-task compiled LPP coefficients (cluster-size independent)."""

    __slots__ = ("counts", "lengths", "constants", "hpcols", "hp_involved",
                 "crit_len", "wcet")

    def __init__(self, tables: CompiledTaskset, task: DAGTask) -> None:
        static = tables.table(task)
        i = tables.index[task.task_id]
        prios = tables.prios_list
        prio_i = prios[i]
        self.counts: List[float] = static.N
        self.lengths: List[float] = static.L
        # Per used resource: the window's constant part (own CS + longest
        # lower-priority CS + own concurrent requests) and the sparse
        # higher-priority workload column [(j, N_{j,q} L_{j,q})].
        self.constants: List[float] = []
        self.hpcols: List[List[Tuple[int, float]]] = []
        involved = set()
        for g, rid in enumerate(static.used):
            own_cs = static.L[g]
            lower = 0.0
            col: List[Tuple[int, float]] = []
            for j, count, cs in tables.users(rid):
                if j == i:
                    continue
                if prios[j] < prio_i and cs > lower:
                    lower = cs
                elif prios[j] > prio_i:
                    col.append((j, count * cs))
                    involved.add(j)
            own_concurrent = max(0.0, static.N[g] - 1.0) * own_cs
            self.constants.append(own_cs + lower + own_concurrent)
            self.hpcols.append(col)
        #: Task indices whose carried-in response times the windows read —
        #: the cache key of the blocking term (see :meth:`LppKernel.wcrt`).
        self.hp_involved: Tuple[int, ...] = tuple(sorted(involved))
        self.crit_len = static.crit_len
        self.wcet = static.wcet


class LppKernel:
    """Compiled LPP analysis over the shared :class:`CompiledTaskset`.

    Matches :func:`lpp_wcrt` bound-for-bound (property-tested to 1e-9).  The
    request-window blocking term depends only on the carried-in response
    times of the higher-priority users of the task's resources — not on the
    cluster size — so it is cached per task and reused verbatim when the
    federated top-up loop re-analyses the same task with a grown cluster.
    """

    CACHE_KEY = "lpp"

    def __init__(self, taskset: TaskSet, tables: CompiledTaskset) -> None:
        self.tables = tables
        # Weak: this kernel lives in tables.protocol_cache, which the
        # weak-keyed compile_taskset memo reaches from the task set — a
        # strong back-reference would make the memo entry immortal.
        self._owner = weakref.ref(taskset)
        self._lanes: Dict[int, _LppLane] = {}
        self._blocking_cache: Dict[int, Tuple[Tuple[float, ...], float]] = {}

    @classmethod
    def of(cls, taskset: TaskSet) -> "LppKernel":
        """The shared kernel of ``taskset`` (compiled once, cached on its tables)."""
        tables = compile_taskset(taskset)
        kernel = tables.protocol_cache.get(cls.CACHE_KEY)
        if kernel is None:
            kernel = cls(taskset, tables)
            tables.protocol_cache[cls.CACHE_KEY] = kernel
        return kernel

    def _lane(self, task: DAGTask) -> _LppLane:
        lane = self._lanes.get(task.task_id)
        if lane is None:
            lane = _LppLane(self.tables, task)
            self._lanes[task.task_id] = lane
        return lane

    def _blocking(self, lane: _LppLane, task: DAGTask) -> float:
        """Σ_q N_{i,q} · (W_q − L_{i,q}) over the solved request windows."""
        carried = self.tables.carried_list
        periods = self.tables.periods_list
        key = tuple(carried[j] for j in lane.hp_involved)
        cached = self._blocking_cache.get(task.task_id)
        if cached is not None and cached[0] == key:
            return cached[1]

        blocking = 0.0
        for count, own_cs, constant, col in zip(
            lane.counts, lane.lengths, lane.constants, lane.hpcols
        ):
            if not col:
                # No higher-priority contender: the window is its constant
                # part (provided it fits the deadline at all).
                window: Optional[float] = (
                    constant if constant <= task.deadline else None
                )
                status = None
            else:
                def recurrence(window: float) -> float:
                    demand = 0.0
                    for j, w in col:
                        e = _ceil((window + carried[j]) / periods[j] - ETA_GUARD)
                        if e > 0:
                            demand += e * w
                    return constant + demand

                window, status = solve_scalar(recurrence, constant, task.deadline)
                if window is None and status == NO_CONVERGENCE:
                    warn_no_convergence(1, task.deadline)
            if window is None:
                blocking = math.inf
                break
            blocking += count * max(0.0, window - own_cs)

        self._blocking_cache[task.task_id] = (key, blocking)
        return blocking

    def wcrt(
        self,
        taskset: TaskSet,
        task: DAGTask,
        cluster_size: int,
        response_times: Dict[int, float],
    ) -> float:
        """Drop-in replacement for :func:`lpp_wcrt` over compiled tables."""
        if taskset is not self._owner():
            raise ValueError(
                "LppKernel was compiled for a different task set; "
                "use LppKernel.of(taskset)"
            )
        if cluster_size < 1:
            return math.inf
        self.tables.sync_response_times(response_times)
        lane = self._lane(task)
        blocking = self._blocking(lane, task)
        if math.isinf(blocking):
            return math.inf
        base = lane.crit_len + (lane.wcet - lane.crit_len) / cluster_size
        return base + blocking


class LppTest(SchedulabilityTest):
    """Schedulability test for local suspension-based semaphores (LPP).

    Parameters
    ----------
    engine:
        ``"kernel"`` (compiled coefficients, default) or ``"reference"``
        (the straight-line oracle the kernel is validated against).
    """

    name = "LPP"

    def __init__(self, engine: str = DEFAULT_ENGINE) -> None:
        check_engine(engine)
        self.engine = engine

    def test(self, taskset: TaskSet, platform: Platform) -> SchedulabilityResult:
        """Iteratively size clusters and bound every task's WCRT under LPP."""
        if self.engine == ENGINE_KERNEL:
            wcrt_function = LppKernel.of(taskset).wcrt
        else:
            wcrt_function = lpp_wcrt
        return federated_topup_analysis(taskset, platform, wcrt_function, self.name)
