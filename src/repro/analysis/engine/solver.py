"""Least-fixed-point solvers shared by every analysis in the library.

The paper's WCRT bounds (Theorem 1, Lemma 2) and the baselines' blocking
windows are least fixed points of monotone recurrences ``x = f(x)``.  Two
execution strategies cover every call site:

* :func:`solve_scalar` — one recurrence at a time, with the status semantics
  (:data:`CONVERGED` / :data:`DIVERGED` / :data:`NO_CONVERGENCE`) that
  :mod:`repro.analysis.rta` exposes to the straight-line analyses and that
  the compiled kernels use directly;
* :func:`solve_batched` — a batch of independent fixed points iterated
  elementwise with NumPy, retiring entries as they converge or diverge.
  This is what makes wide-DAG EP analyses (thousands of path signatures)
  cheap.

Before PR 3 these two implementations lived apart — the scalar one in
``rta.py``, the batched one inside the DPCP-p kernel — with the convergence
rules (defensive non-decrease clamp, divergence bound, absolute tolerance,
iteration cap) duplicated between them.  They are now defined once, here.
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Optional, Tuple

import numpy as np

from ...obs import telemetry as _obs_telemetry
from ...obs.telemetry import active as _active_telemetry

#: Default absolute convergence tolerance, in microseconds.
DEFAULT_TOLERANCE = 1e-6

#: Default iteration cap; the recurrences used here converge in far fewer steps.
DEFAULT_MAX_ITERATIONS = 10_000

#: Guard subtracted inside the η ceiling so that exact multiples of the
#: period are not rounded up by floating-point noise.  Shared by
#: :func:`repro.analysis.rta.ceil_div_jobs`, the compiled tables'
#: η evaluation, and every inline η loop in the protocol kernels.
ETA_GUARD = 1e-12

#: Status values returned by :func:`solve_scalar`.
CONVERGED = "converged"
DIVERGED = "diverged"
NO_CONVERGENCE = "no-convergence"

#: Analysis engines selectable on every schedulability test: the compiled
#: kernel (default) or the straight-line reference oracle it is validated
#: against.
ENGINE_KERNEL = "kernel"
ENGINE_REFERENCE = "reference"
DEFAULT_ENGINE = ENGINE_KERNEL


def check_engine(engine: str) -> None:
    """Reject engine names other than ``"kernel"`` / ``"reference"``."""
    if engine not in (ENGINE_KERNEL, ENGINE_REFERENCE):
        raise ValueError(f"unknown analysis engine {engine!r}")


class FixedPointDiverged(RuntimeError):
    """Raised internally when a recurrence exceeds its divergence bound."""


class FixedPointNoConvergence(RuntimeWarning):
    """A fixed-point search hit its iteration cap without converging.

    Unlike divergence past the bound (a definitive "no relevant fixed point"
    answer), hitting the iteration cap means the search was inconclusive; the
    analyses still treat the task as unbounded, but the situation is surfaced
    as a warning so slowly-converging systems are not silently conflated with
    genuinely diverging ones.
    """


def warn_no_convergence(
    count: int,
    bound: float,
    stacklevel: int = 3,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> None:
    """Emit the :class:`FixedPointNoConvergence` warning for ``count`` entries."""
    warnings.warn(
        f"{count} fixed-point iteration(s) hit the cap of "
        f"{max_iterations} iterations without converging "
        f"(bound {bound}); treating as unbounded",
        FixedPointNoConvergence,
        stacklevel=stacklevel,
    )


def solve_scalar(
    recurrence: Callable[[float], float],
    start: float,
    divergence_bound: float,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[Optional[float], str]:
    """Iterate ``x_{k+1} = recurrence(x_k)`` from ``start`` until convergence.

    Returns ``(value, status)`` where ``status`` is :data:`CONVERGED` (and
    ``value`` is the least fixed point), :data:`DIVERGED` (an iterate — or the
    start value — exceeded ``divergence_bound``, or the recurrence produced
    NaN), or :data:`NO_CONVERGENCE` (``max_iterations`` exhausted without
    meeting the tolerance).  ``value`` is ``None`` for both failure statuses.

    When a :mod:`repro.obs.telemetry` session is active, each call adds its
    outcome and iteration count to the ``solver.scalar.*`` counters and the
    ``solver.iterations`` histogram; with no session the cost is one global
    read per call.
    """
    value, status, iterations = _solve_scalar(
        recurrence, start, divergence_bound, tolerance, max_iterations
    )
    # This runs O(100) times per schedulability test, so the recording cost
    # must stay near the ≤2% overhead budget's noise floor: one read of the
    # session hook (the active bundle's preloaded ``list.append``) and one
    # GC-invisible encoded int, tallied lazily by ScalarSolveStats.fold_into.
    append = _obs_telemetry._SOLVE_APPEND
    if append is not None:
        if status is CONVERGED:
            append(iterations << 2)
        elif status is DIVERGED:
            append(iterations << 2 | 1)
        else:
            append(iterations << 2 | 2)
    return value, status


def _solve_scalar(
    recurrence: Callable[[float], float],
    start: float,
    divergence_bound: float,
    tolerance: float,
    max_iterations: int,
) -> Tuple[Optional[float], str, int]:
    """:func:`solve_scalar` core; additionally returns the iteration count."""
    if math.isinf(start) or math.isnan(start):
        return None, DIVERGED, 0
    current = float(start)
    if current > divergence_bound:
        return None, DIVERGED, 0
    for iteration in range(1, max_iterations + 1):
        nxt = float(recurrence(current))
        if math.isnan(nxt):
            return None, DIVERGED, iteration
        if nxt < current - tolerance:
            # A monotone recurrence should never decrease; clamp defensively
            # so that rounding noise cannot cause oscillation.
            nxt = current
        if nxt > divergence_bound:
            return None, DIVERGED, iteration
        if abs(nxt - current) <= tolerance:
            return nxt, CONVERGED, iteration
        current = nxt
    return None, NO_CONVERGENCE, max_iterations


def solve_batched(
    start: np.ndarray,
    step: Callable[[np.ndarray, np.ndarray], np.ndarray],
    bound,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> np.ndarray:
    """Solve a batch of independent monotone fixed points elementwise.

    ``step(values, indices)`` must return the recurrence applied to the
    still-active entries (``indices`` into the original batch).  ``bound``
    is either one divergence bound shared by the whole batch or an array of
    per-entry bounds (the cross-taskset arena mixes tasks with different
    deadlines in one wave).  Entries that diverge past their bound (or
    start beyond it, or produce NaN) resolve to ``inf`` — the scalar
    solver's reading of a ``None`` fixed point.  Entries still active after
    the iteration cap resolve to ``inf`` as well, with a
    :class:`FixedPointNoConvergence` warning.

    Per entry, the iteration is semantically identical to
    :func:`solve_scalar`: same defensive non-decrease clamp, divergence
    check, and absolute convergence tolerance, applied in the same order.

    When a :mod:`repro.obs.telemetry` session is active, each call adds its
    entry/outcome/round tallies to the ``solver.batched.*`` counters.
    """
    tel = _active_telemetry()
    start = np.asarray(start, dtype=float)
    out = np.full(start.shape, math.inf)
    bound_arr = np.asarray(bound, dtype=float)
    per_entry_bound = bound_arr.ndim > 0
    active = np.isfinite(start) & (start <= bound_arr)
    idx = np.flatnonzero(active)
    if tel is not None:
        tel.count("solver.batched.calls")
        tel.count("solver.batched.entries", int(start.size))
        tel.count("solver.batched.diverged", int(start.size - idx.size))
    if idx.size == 0:
        return out
    cur = start[idx].astype(float)
    bnd = bound_arr[idx] if per_entry_bound else bound_arr
    rounds = 0
    for _ in range(max_iterations):
        rounds += 1
        nxt = np.asarray(step(cur, idx), dtype=float)
        if np.isnan(nxt).any():
            nxt = np.where(np.isnan(nxt), math.inf, nxt)
        # A monotone recurrence should never decrease; clamp defensively
        # so that rounding noise cannot cause oscillation.
        low = nxt < cur - tolerance
        if low.any():
            nxt = np.where(low, cur, nxt)
        diverged = nxt > bnd
        converged = ~diverged & (np.abs(nxt - cur) <= tolerance)
        done = diverged | converged
        if done.any():
            out[idx[converged]] = nxt[converged]
            if tel is not None:
                tel.count("solver.batched.converged", int(converged.sum()))
                tel.count("solver.batched.diverged", int(diverged.sum()))
            keep = ~done
            idx = idx[keep]
            cur = nxt[keep]
            if per_entry_bound:
                bnd = bnd[keep]
            if idx.size == 0:
                if tel is not None:
                    tel.count("solver.batched.rounds", rounds)
                return out
        else:
            cur = nxt
    if tel is not None:
        tel.count("solver.batched.rounds", rounds)
        tel.count("solver.batched.no_convergence", int(idx.size))
    warn_no_convergence(
        idx.size,
        float(bound_arr.max()) if per_entry_bound else float(bound_arr),
        stacklevel=4,
        max_iterations=max_iterations,
    )
    return out
