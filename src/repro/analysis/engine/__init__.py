"""Protocol-agnostic analysis engine: compiled coefficient tables and solvers.

The WCRT analyses of every protocol in this library share the same
computational skeleton: compile, once per task set, the interval-independent
coefficients their recurrences reuse (per-``(task, resource)`` request counts
and critical-section lengths, η parameters, priority masks, sparse
``(task, weight)`` workload columns), then iterate monotone least fixed
points over them.  PR 2 built that machinery inside the DPCP-p kernel; this
package promotes it into a reusable layer:

* :mod:`.tables` — :class:`CompiledTaskset` / :class:`CompiledTask`, the
  protocol-agnostic static arrays plus the sparse column layout, shared
  across all protocols analysing the same task set (and across federated
  top-up retries, where only a cluster size changes);
* :mod:`.solver` — the inline-scalar and batched-NumPy least-fixed-point
  solvers with the converged / diverged / no-convergence status semantics
  that :mod:`repro.analysis.rta` and the DPCP-p kernel previously each
  implemented on their own.

Protocol-specific *lanes* (the DPCP-p kernel's partition-dependent
coefficients, the SPIN/LPP baselines' per-task columns) build on these
tables; see :mod:`repro.analysis.dpcp_p.kernel`, :mod:`repro.analysis.spin`,
and :mod:`repro.analysis.lpp`.
"""

from .solver import (
    CONVERGED,
    DEFAULT_ENGINE,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    DIVERGED,
    ENGINE_KERNEL,
    ENGINE_REFERENCE,
    ETA_GUARD,
    FixedPointDiverged,
    FixedPointNoConvergence,
    NO_CONVERGENCE,
    check_engine,
    solve_batched,
    solve_scalar,
    warn_no_convergence,
)
from .tables import CompiledTask, CompiledTaskset, compile_taskset

__all__ = [
    "CompiledTask",
    "CompiledTaskset",
    "arena_capable",
    "compile_taskset",
    "run_arena",
    "CONVERGED",
    "DIVERGED",
    "NO_CONVERGENCE",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_TOLERANCE",
    "ENGINE_KERNEL",
    "ENGINE_REFERENCE",
    "ETA_GUARD",
    "FixedPointDiverged",
    "FixedPointNoConvergence",
    "check_engine",
    "solve_batched",
    "solve_scalar",
    "warn_no_convergence",
]


def __getattr__(name: str):
    """Lazily re-export the arena batching entry points.

    :mod:`.arena` imports the protocol kernels (SPIN, LPP, DPCP-p), which in
    turn import this package — an eager ``from .arena import …`` here would
    be circular.  PEP 562 lazy attribute access defers the arena import to
    first use, so callers (the campaign executor's batched strategy, the
    service daemon's admission waves) can still spell it
    ``repro.analysis.engine.run_arena``.
    """
    if name in ("arena_capable", "run_arena", "TasksetArena"):
        from . import arena

        return getattr(arena, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
