"""Compiled, protocol-agnostic coefficient tables for one task set.

Every WCRT analysis in this library keeps re-reading the same task-static
data on each fixed-point iteration: per-``(task, resource)`` request counts
:math:`N_{j,q}` and critical-section lengths :math:`L_{j,q}`, the η
parameters (periods and carried-in response-time bounds), priorities, and
the global/local resource classification.  :class:`CompiledTaskset` compiles
all of it **once per task set** into plain lists, NumPy arrays, and sparse
``(task, weight)`` columns, and is shared

* across all protocols analysing the same task set (a campaign work unit
  runs DPCP-p-EP/EN, SPIN, and LPP over one generated task set — they all
  read the same tables through :func:`compile_taskset`),
* across the partition retries of Algorithm 1 and the federated top-up loop
  (only cluster sizes change there, never the task-static data), and
* across the protocol-specific *lanes* built on top (the DPCP-p kernel's
  partition-dependent coefficients, the SPIN/LPP per-task columns), which
  cache themselves in :attr:`CompiledTaskset.protocol_cache`.

The only mutable entry is the carried-in response-time vector used inside
η_j, refreshed via :meth:`CompiledTaskset.sync_response_times` before each
per-task solve (analyses run sequentially, so sharing it is safe).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ...model.resources import ResourceError
from ...model.task import DAGTask, TaskSet
from ...obs.telemetry import active as _active_telemetry


@dataclass
class CompiledTask:
    """Per-task static tables (independent of partitions and protocols)."""

    used: List[int]                     # resources the task uses (sorted)
    N: List[float]                      # request counts N_{i,q} over ``used``
    L: List[float]                      # critical-section lengths L_{i,q}
    ugr: List[int]                      # global resources the task uses (sorted)
    g_N: List[float]
    g_L: List[float]
    lres: List[int]                     # local resources the task uses
    l_N: List[float]
    l_L: List[float]
    en_local_block: float               # EN-style local intra-task blocking
    crit_len: float                     # L*_i
    wcet: float                         # C_i
    noncrit: List[float]                # per-vertex C'_{i,x}
    total_noncrit: float
    g_N_arr: Optional[np.ndarray] = field(repr=False, default=None)
    g_L_arr: Optional[np.ndarray] = field(repr=False, default=None)
    l_N_arr: Optional[np.ndarray] = field(repr=False, default=None)
    l_L_arr: Optional[np.ndarray] = field(repr=False, default=None)
    noncrit_arr: Optional[np.ndarray] = field(repr=False, default=None)

    def ensure_arrays(self) -> None:
        """Materialize the NumPy views (batched solver paths only)."""
        if self.g_N_arr is None:
            self.g_N_arr = np.array(self.g_N)
            self.g_L_arr = np.array(self.g_L)
            self.l_N_arr = np.array(self.l_N)
            self.l_L_arr = np.array(self.l_L)
            self.noncrit_arr = np.array(self.noncrit)


class CompiledTaskset:
    """All task-static coefficient tables of one task set.

    Build via :func:`compile_taskset` (which memoizes one instance per task
    set) rather than directly, so every analysis of the same task set shares
    the same tables.
    """

    def __init__(self, taskset: TaskSet) -> None:
        # Deliberately no reference to the task set itself: instances are
        # memoized in a WeakKeyDictionary keyed by it, and a strong
        # back-reference would make every entry immortal.  Everything the
        # tables need is copied out here (the DAGTask objects do not
        # reference their TaskSet, so holding them is safe).
        tasks = list(taskset)
        self.tasks: List[DAGTask] = tasks
        self.index: Dict[int, int] = {t.task_id: i for i, t in enumerate(tasks)}
        self.periods = np.array([t.period for t in tasks])
        self.deadlines = np.array([t.deadline for t in tasks])
        self.prios = np.array([t.priority for t in tasks])
        self.periods_list: List[float] = [t.period for t in tasks]
        self.prios_list: List[int] = [t.priority for t in tasks]
        self.local_resources: List[int] = taskset.local_resources()
        self._global = frozenset(taskset.global_resources())
        #: Per task: ``rid -> (N_{j,q}, L_{j,q})`` for every declared usage.
        self.usages: List[Dict[int, Tuple[float, float]]] = [
            {
                rid: (float(u.max_requests), u.cs_length)
                for rid, u in t.resource_usages.items()
            }
            for t in tasks
        ]
        self.ceilings: Dict[int, int] = {}
        #: Carried-in response-time bounds R_j used inside η_j — the only
        #: mutable analysis state; refresh via :meth:`sync_response_times`.
        self.carried = self.deadlines.copy()
        self.carried_list: List[float] = self.carried.tolist()
        self._task_tables: Dict[int, CompiledTask] = {}
        self._users: Dict[int, List[Tuple[int, float, float]]] = {}
        self._user_arrays: Dict[int, Tuple[np.ndarray, ...]] = {}
        self._fold_rows: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        #: Protocol-specific lane caches (e.g. ``"spin"`` / ``"lpp"`` /
        #: ``"dpcp_p"``), so each protocol compiles its per-task columns once
        #: per task set no matter how many tests run over it.
        self.protocol_cache: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Carried-in response times
    # ------------------------------------------------------------------ #
    def sync_response_times(self, response_times: Mapping[int, float]) -> None:
        """Refresh the carried-in :math:`R_j` bounds used inside η_j.

        Tasks without a known bound carry their deadline (consistent
        whenever the final verdict is "schedulable").
        """
        carried = self.carried
        carried_list = self.carried_list
        for j, task in enumerate(self.tasks):
            value = response_times.get(task.task_id, task.deadline)
            carried[j] = value
            carried_list[j] = value

    def eta_matrix(self, intervals: np.ndarray) -> np.ndarray:
        """η_j(L) for every task (rows) over every interval (columns)."""
        from .solver import ETA_GUARD

        x = np.maximum(intervals, 0.0)[None, :] + self.carried[:, None]
        x /= self.periods[:, None]
        x -= ETA_GUARD
        np.ceil(x, out=x)
        return np.maximum(x, 0.0, out=x)

    # ------------------------------------------------------------------ #
    # Per-task tables
    # ------------------------------------------------------------------ #
    @property
    def task_tables(self) -> Dict[int, CompiledTask]:
        """Compiled per-task tables built so far (task id → tables)."""
        return self._task_tables

    def table(self, task: DAGTask) -> CompiledTask:
        """The :class:`CompiledTask` tables of ``task`` (compiled lazily)."""
        tables = self._task_tables.get(task.task_id)
        if tables is not None:
            return tables
        is_global = self._global
        usage = self.usages[self.index[task.task_id]]
        used = sorted(rid for rid, (count, _cs) in usage.items() if count > 0)
        ugr = [r for r in used if r in is_global]
        lres = [r for r in used if r not in is_global]
        l_N = [usage[r][0] for r in lres]
        l_L = [usage[r][1] for r in lres]
        noncrit = [
            max(
                0.0,
                v.wcet
                - sum(c * usage[r][1] for r, c in v.requests.items() if c > 0),
            )
            for v in task.vertices
        ]
        tables = CompiledTask(
            used=used,
            N=[usage[r][0] for r in used],
            L=[usage[r][1] for r in used],
            ugr=ugr,
            g_N=[usage[r][0] for r in ugr],
            g_L=[usage[r][1] for r in ugr],
            lres=lres,
            l_N=l_N,
            l_L=l_L,
            en_local_block=sum((c - 1.0) * cs for c, cs in zip(l_N, l_L)),
            crit_len=task.critical_path_length,
            wcet=task.wcet,
            noncrit=noncrit,
            total_noncrit=float(sum(noncrit)),
        )
        self._task_tables[task.task_id] = tables
        return tables

    # ------------------------------------------------------------------ #
    # Sparse per-resource columns
    # ------------------------------------------------------------------ #
    def users(self, resource_id: int) -> List[Tuple[int, float, float]]:
        """Sparse user column of a resource: ``[(task index, N, L), ...]``.

        Covers every task with at least one request to ``resource_id``; the
        protocol lanes slice it into their own ``(task, weight)`` columns
        (other-task workload, higher-priority workload, ...).
        """
        col = self._users.get(resource_id)
        if col is None:
            col = []
            for j, usage in enumerate(self.usages):
                pair = usage.get(resource_id)
                if pair is not None and pair[0] > 0:
                    col.append((j, pair[0], pair[1]))
            self._users[resource_id] = col
        return col

    def user_arrays(
        self, resource_id: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Array view of :meth:`users`: ``(indices, N*L work, L, priorities)``.

        Cached per resource; the partition-dependent kernels use it to fold
        a whole user column into their coefficient matrices with a handful
        of NumPy calls instead of a per-task Python loop.
        """
        arrays = self._user_arrays.get(resource_id)
        if arrays is None:
            col = self.users(resource_id)
            idx = np.array([j for j, _n, _l in col], dtype=np.intp)
            work = np.array([n * l for _j, n, l in col])
            cs = np.array([l for _j, _n, l in col])
            arrays = (idx, work, cs, self.prios[idx])
            self._user_arrays[resource_id] = arrays
        return arrays

    def fold_rows(self, resource_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Dense per-task fold rows of one resource: ``(work, beta)``.

        ``work[j]`` is task :math:`\\tau_j`'s request workload
        :math:`N_{j,q} L_{j,q}` on the resource; ``beta[i]`` is the longest
        critical section a lower-priority user can hold against
        :math:`\\tau_i` under the resource's priority ceiling.  Both depend
        only on task-static data, so the partition-dependent kernels fold a
        whole resource assignment with one ``np.add.at`` /
        ``np.maximum.at`` pair over these cached rows.
        """
        rows = self._fold_rows.get(resource_id)
        if rows is None:
            idx, work, cs, user_prios = self.user_arrays(resource_id)
            n = len(self.tasks)
            work_row = np.zeros(n)
            work_row[idx] = work
            beta_row = np.zeros(n)
            if idx.size:
                ceiling = self.resource_ceiling(resource_id)
                blocked = (user_prios[:, None] < self.prios[None, :]) & (
                    self.prios[None, :] <= ceiling
                )
                np.max(
                    np.where(blocked, cs[:, None], 0.0), axis=0, out=beta_row
                )
            rows = (work_row, beta_row)
            self._fold_rows[resource_id] = rows
        return rows

    def resource_ceiling(self, resource_id: int) -> int:
        """Priority ceiling of a resource: max base priority of its users (cached).

        Mirrors :meth:`repro.model.task.TaskSet.resource_ceiling`, computed
        from the compiled user columns.
        """
        ceiling = self.ceilings.get(resource_id)
        if ceiling is None:
            col = self.users(resource_id)
            if not col:
                raise ResourceError(
                    f"resource {resource_id} is not used by any task"
                )
            prios = self.prios_list
            ceiling = max(prios[j] for j, _count, _cs in col)
            self.ceilings[resource_id] = ceiling
        return ceiling


#: One compiled-tables instance per live task set; weak keys let the tables
#: die with the task set (campaign workers generate thousands of them).
_COMPILED: "weakref.WeakKeyDictionary[TaskSet, CompiledTaskset]" = (
    weakref.WeakKeyDictionary()
)


def compile_taskset(taskset: TaskSet) -> CompiledTaskset:
    """The shared :class:`CompiledTaskset` of ``taskset`` (compiled once).

    All kernel-engine analyses call this, so a campaign work unit that runs
    every protocol over one generated task set compiles the static tables a
    single time; repeated tests of the same task set (benchmarks, top-up
    retries) reuse them as well.
    """
    tables = _COMPILED.get(taskset)
    tel = _active_telemetry()
    if tables is None:
        if tel is not None:
            tel.count("tables.compile.misses")
        tables = CompiledTaskset(taskset)
        _COMPILED[taskset] = tables
    elif tel is not None:
        # Inline bump: the hit path runs once per (test, taskset) on the
        # kernel hot paths, so skip the Telemetry.count method call.
        counters = tel.counters
        counters["tables.compile.hits"] = counters.get("tables.compile.hits", 0) + 1
    return tables
