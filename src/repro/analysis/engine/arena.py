"""Cross-taskset arena batching: one NumPy iteration per utilization point.

The engine (PRs 2/3) vectorizes fixed points *within* one task set, but a
campaign point still analyzed its hundreds of independent task sets serially
— one kernel invocation per sample per protocol, each paying the full Python
orchestration cost per fixed point (~10µs against ~2 iterations of actual
recurrence arithmetic).  This module removes that per-sample wall:

* :class:`TasksetArena` packs the compiled coefficient tables of many task
  sets into one ragged arena — concatenated ``carried``/``period`` arrays
  plus per-slot offsets, built once per work unit — so a single elementwise
  :func:`~repro.analysis.engine.solver.solve_batched` sweep can retire fixed
  points across *all* task sets of a utilization point at once;
* :class:`ArenaRequest` is the canonical recurrence shape every protocol
  solve in this library reduces to (see below), referencing arena-global
  task columns;
* per-``(task set, protocol)`` *drivers* — plain Python generators — replay
  the exact orchestration of the serial analyses (Algorithm 1's WFD retry
  loop, the federated top-up loop, per-task priority order) and yield waves
  of :class:`ArenaRequest`; the :func:`run_arena` scheduler advances all
  drivers in lockstep rounds, solving the union of their waves in one
  batched call per round.

The canonical recurrence
------------------------

Every fixed point solved by the four protocol kernels (DPCP-p Lemma 2
windows and Theorem 1, SPIN's spin recurrence, LPP's request windows) is an
instance of::

    f(x) = ((inner + Σ_g min(cap_g, S_g(x))) + outer) + S_u(x) / div
    S(x) = Σ_t [η > 0] · η · w_t,   η = ⌈(x + carried[j_t]) / period[j_t] − guard⌉

with the capped groups accumulated in request order and ``S`` accumulated
term-by-term in column order.  The wave solver evaluates this shape
*position-major* — term position ``p`` of every group in one vectorized
step, group position ``q`` of every request in one step — which reproduces
the scalar kernels' left-to-right float summation order exactly.  Verdicts
are therefore identical-by-construction to the per-sample path, bit for bit,
not merely within tolerance; the equivalence suite pins this.

Retirement semantics are those of ``solve_batched``: entries that converge
or diverge retire from the active set each round; a request whose fixed
point diverges past its per-entry bound answers ``inf`` (the scalar
solver's reading of a ``None`` fixed point).

Fallback rules: only the compiled-kernel engines of the four protocols are
arena-capable (:func:`arena_capable`); reference-engine tests and foreign
protocols run through the unchanged per-sample path, counted by the
executor under the ``arena.fallbacks`` telemetry counter.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ...model.platform import (
    PartitionedSystem,
    Platform,
    minimal_federated_clusters,
)
from ...model.task import TaskSet
from ...obs.telemetry import active as _active_telemetry
from ..interfaces import SchedulabilityResult, SchedulabilityTest, TaskAnalysis
from ..lpp import LppKernel, LppTest
from ..paths import PathEnumerator
from ..spin import SpinKernel, SpinTest
from .solver import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    ENGINE_KERNEL,
    ETA_GUARD,
    solve_batched,
)
from .tables import CompiledTaskset, compile_taskset

_inf = math.inf

#: A wave of requests, as yielded by drivers to the scheduler.
Wave = List["ArenaRequest"]

#: Driver generators yield waves and receive the matching answer lists;
#: their ``StopIteration`` value is the finished verdict.
Driver = Generator[Wave, List[float], SchedulabilityResult]


class ArenaRequest:
    """One fixed point in the canonical arena recurrence shape.

    Parameters
    ----------
    start, bound:
        Iteration start value and per-request divergence bound (the scalar
        solver's ``start`` / ``divergence_bound``).
    inner, outer:
        The constant accumulated *before* the capped groups and the constant
        added after them (``f(x) = inner + Σ min(cap, S) ... + outer``); the
        split mirrors each scalar kernel's own summation order.
    groups:
        Capped supply groups ``(cap, j, w)`` in accumulation order, with
        ``j`` arena-global task indices (``np.intp``) and ``w`` the matching
        per-job workloads.  ``cap = inf`` expresses an uncapped sum.
    uncapped:
        Optional trailing ``(j, w, divisor)`` term added as ``S / divisor``
        after ``outer`` (Theorem 1's agent interference).
    gamma:
        When true the answer is *not* the fixed point but the sole group's
        supply ``S`` re-evaluated at it (Lemma 2 windows return γ(W), not W).
    """

    __slots__ = ("start", "bound", "inner", "outer", "groups", "uncapped",
                 "gamma", "answer")

    def __init__(
        self,
        start: float,
        bound: float,
        inner: float,
        outer: float,
        groups: Tuple[Tuple[float, np.ndarray, np.ndarray], ...] = (),
        uncapped: Optional[Tuple[np.ndarray, np.ndarray, float]] = None,
        gamma: bool = False,
    ) -> None:
        if gamma and len(groups) != 1:
            raise ValueError("gamma requests carry exactly one supply group")
        self.start = start
        self.bound = bound
        self.inner = inner
        self.outer = outer
        self.groups = groups
        self.uncapped = uncapped
        self.gamma = gamma
        #: Filled by :meth:`TasksetArena.solve_wave`.
        self.answer: float = _inf


class TasksetArena:
    """Ragged arena of many task sets' carried-in response-time state.

    Each *slot* is one (task set, driver) pair's view of its tasks: the
    concatenated ``period`` array is immutable, the concatenated ``carried``
    array is the only mutable analysis state and is refreshed per slot via
    :meth:`sync` (drivers of the same task set interleave, so they cannot
    share the :class:`CompiledTaskset`'s own carried buffer).  Requests
    reference tasks by arena-global index = slot offset + local index.
    """

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ) -> None:
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self._offsets: List[int] = []
        self._slot_tables: List[CompiledTaskset] = []
        self._size = 0
        self._periods: Optional[np.ndarray] = None
        self._carried: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    def add_slot(self, tables: CompiledTaskset) -> int:
        """Append one task set's tables; returns the new slot id."""
        if self._periods is not None:
            raise RuntimeError("arena is sealed; no further slots")
        slot = len(self._offsets)
        self._offsets.append(self._size)
        self._slot_tables.append(tables)
        self._size += len(tables.tasks)
        return slot

    def seal(self) -> None:
        """Freeze the layout and materialize the concatenated arrays."""
        if self._periods is not None:
            return
        if self._slot_tables:
            self._periods = np.concatenate(
                [t.periods for t in self._slot_tables]
            )
            self._carried = np.concatenate(
                [t.deadlines for t in self._slot_tables]
            ).astype(float)
        else:
            self._periods = np.empty(0)
            self._carried = np.empty(0)

    def offset(self, slot: int) -> int:
        """Arena-global index of the slot's first task."""
        return self._offsets[slot]

    def slot_carried(self, slot: int) -> np.ndarray:
        """The slot's carried-in response-time slice (local indices)."""
        base = self._offsets[slot]
        tables = self._slot_tables[slot]
        return self._carried[base:base + len(tables.tasks)]

    def sync(self, slot: int, response_times: Dict[int, float]) -> None:
        """Refresh one slot's carried-in bounds.

        Semantics match :meth:`CompiledTaskset.sync_response_times`: tasks
        without a known bound carry their deadline.
        """
        base = self._offsets[slot]
        carried = self._carried
        for j, task in enumerate(self._slot_tables[slot].tasks):
            carried[base + j] = response_times.get(task.task_id, task.deadline)

    def column(
        self, slot: int, col: Sequence[Tuple[int, float]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Lift a kernel's sparse ``[(j, w)]`` column to arena-global arrays."""
        base = self._offsets[slot]
        j = np.empty(len(col), dtype=np.intp)
        w = np.empty(len(col))
        for t, (jj, ww) in enumerate(col):
            j[t] = base + jj
            w[t] = ww
        return j, w

    # ------------------------------------------------------------------ #
    # The batched wave solver
    # ------------------------------------------------------------------ #
    def solve_wave(self, requests: Wave) -> None:
        """Solve one wave of requests in a single batched iteration.

        Fills each request's ``answer``.  The evaluation is position-major
        (see the module docstring), so per request the float summation order
        is exactly the scalar kernels' — answers are bit-identical to
        per-sample solves, not merely close.
        """
        n_requests = len(requests)
        if n_requests == 0:
            return
        tel = _active_telemetry()
        if tel is not None:
            tel.count("arena.batch_solves")
            tel.count("arena.requests", n_requests)
        periods = self._periods
        carried = self._carried
        start = np.empty(n_requests)
        bound = np.empty(n_requests)
        inner = np.empty(n_requests)
        outer = np.empty(n_requests)
        g_entry: List[int] = []
        g_j: List[np.ndarray] = []
        g_w: List[np.ndarray] = []
        q_e: List[int] = []
        q_gid: List[int] = []
        q_cap: List[float] = []
        u_entry: List[int] = []
        u_gid: List[int] = []
        u_div: List[float] = []
        gamma_entry: List[int] = []
        gamma_gid: List[int] = []
        for e, r in enumerate(requests):
            start[e] = r.start
            bound[e] = r.bound
            inner[e] = r.inner
            outer[e] = r.outer
            first_gid = len(g_j)
            for cap, j, w in r.groups:
                q_e.append(e)
                q_gid.append(len(g_j))
                g_entry.append(e)
                g_j.append(j)
                g_w.append(w)
                q_cap.append(cap)
            if r.gamma:
                gamma_entry.append(e)
                gamma_gid.append(first_gid)
            if r.uncapped is not None:
                j, w, div = r.uncapped
                u_entry.append(e)
                u_gid.append(len(g_j))
                u_div.append(div)
                g_entry.append(e)
                g_j.append(j)
                g_w.append(w)

        n_groups = len(g_j)
        if n_groups:
            width = max(a.size for a in g_j)
            # Rectangle-padded term tables: the pad (j = 0, w = 0) adds an
            # exact 0.0 per position, a no-op in the running supply sums.
            J = np.zeros((n_groups, width), dtype=np.intp)
            Wt = np.zeros((n_groups, width))
            for g in range(n_groups):
                a = g_j[g]
                if a.size:
                    J[g, :a.size] = a
                    Wt[g, :a.size] = g_w[g]
            ent_of_group = np.array(g_entry, dtype=np.intp)
            Jp = periods[J]
            Jc = carried[J]
            supply = np.zeros(n_groups)
        else:
            width = 0
            supply = None

        if q_e:
            # Flat capped-term tables, e-major and group-minor; np.add.at
            # applies repeated indices in array order, so per entry the
            # min(cap, S_g) terms accumulate in exactly the scalar kernels'
            # group order — the left fold is preserved bit-for-bit.
            qe = np.array(q_e, dtype=np.intp)
            qg = np.array(q_gid, dtype=np.intp)
            qc = np.array(q_cap)
        else:
            qe = None
        if u_entry:
            ue = np.array(u_entry, dtype=np.intp)
            ug = np.array(u_gid, dtype=np.intp)
            ud = np.array(u_div)
        else:
            ue = None

        x_full = start.copy()

        def step(cur: np.ndarray, idx: np.ndarray) -> np.ndarray:
            """One elementwise round of the canonical recurrence."""
            x_full[idx] = cur
            if n_groups:
                xg = x_full[ent_of_group]
                supply.fill(0.0)
                for p in range(width):
                    eta = np.ceil((xg + Jc[:, p]) / Jp[:, p] - ETA_GUARD)
                    np.add(supply, np.where(eta > 0.0, eta * Wt[:, p], 0.0),
                           out=supply)
            acc = inner.copy()
            if qe is not None:
                np.add.at(acc, qe, np.minimum(qc, supply[qg]))
            res = acc + outer
            if ue is not None:
                res[ue] += supply[ug] / ud
            return res[idx]

        solved = solve_batched(
            start, step, bound, self.tolerance, self.max_iterations
        )

        for r, value in zip(requests, solved.tolist()):
            r.answer = value

        if gamma_entry:
            # γ(W): re-evaluate the window's supply at the converged value.
            ge = np.array(gamma_entry, dtype=np.intp)
            gg = np.array(gamma_gid, dtype=np.intp)
            x = solved[ge]
            finite = np.isfinite(x)
            gvals = np.full(ge.size, _inf)
            if finite.any():
                rows = gg[finite]
                xv = x[finite]
                Jps = Jp[rows]
                Jcs = Jc[rows]
                Wts = Wt[rows]
                acc = np.zeros(rows.size)
                for p in range(Jps.shape[1]):
                    eta = np.ceil((xv + Jcs[:, p]) / Jps[:, p] - ETA_GUARD)
                    acc += np.where(eta > 0.0, eta * Wts[:, p], 0.0)
                gvals[finite] = acc
            for i, e in enumerate(gamma_entry):
                requests[e].answer = float(gvals[i])


def _ask(wave: Wave):
    """Yield a non-empty wave to the scheduler; return its answers."""
    if not wave:
        return []
    answers = yield wave
    return answers


# ---------------------------------------------------------------------- #
# SPIN / LPP drivers: the federated top-up loop in driver form
# ---------------------------------------------------------------------- #
def _federated_driver(
    taskset: TaskSet,
    platform: Platform,
    wcrt_step,
    protocol_name: str,
) -> Driver:
    """:func:`~repro.analysis.federated.federated_topup_analysis`, replayed
    statement-for-statement with ``wcrt_step`` (a sub-generator) in place of
    the direct ``wcrt_function`` call."""
    clusters = minimal_federated_clusters(taskset, platform)
    if clusters is None:
        return SchedulabilityResult(
            schedulable=False,
            protocol=protocol_name,
            reason="not enough processors for the minimal federated assignment",
        )
    order = taskset.by_priority(descending=True)
    assigned = {p for cluster in clusters.values() for p in cluster.processors}
    spares = [p for p in platform.processors if p not in assigned]
    analyses: Dict[int, TaskAnalysis] = {}
    response_times: Dict[int, float] = {}
    resume = 0
    while True:
        failing: Optional[int] = None
        failing_index = resume
        for index in range(resume, len(order)):
            task = order[index]
            cluster_size = clusters[task.task_id].size
            wcrt = yield from wcrt_step(task, cluster_size, response_times)
            analyses[task.task_id] = TaskAnalysis(
                task_id=task.task_id,
                wcrt=wcrt,
                deadline=task.deadline,
                processors=cluster_size,
            )
            response_times[task.task_id] = min(wcrt, task.deadline)
            if math.isinf(wcrt) or wcrt > task.deadline + 1e-9:
                failing = task.task_id
                failing_index = index
                break

        if failing is None:
            return SchedulabilityResult(
                schedulable=True,
                protocol=protocol_name,
                task_analyses=analyses,
                partition=PartitionedSystem(taskset, platform, clusters, {}),
            )

        if not spares:
            return SchedulabilityResult(
                schedulable=False,
                protocol=protocol_name,
                task_analyses=analyses,
                partition=PartitionedSystem(taskset, platform, clusters, {}),
                reason=(
                    f"task {failing} misses its deadline and no spare processor "
                    "is available"
                ),
            )
        clusters[failing].processors.append(spares.pop(0))
        resume = failing_index
        del response_times[failing]


def _spin_driver(
    taskset: TaskSet, platform: Platform, arena: TasksetArena, slot: int
) -> Driver:
    """Arena driver for :class:`~repro.analysis.spin.SpinTest` (kernel engine)."""
    kernel = SpinKernel.of(taskset)
    groups_cache: Dict[int, tuple] = {}

    def wcrt_step(task, cluster_size, response_times):
        """One SPIN WCRT bound as a single canonical request."""
        if cluster_size < 1:
            return _inf
        arena.sync(slot, response_times)
        lane = kernel._lane(task)
        base = lane.crit_len + (lane.wcet - lane.crit_len) / cluster_size
        spin_const = 0.0
        for count, cs in lane.intra_terms:
            spin_const += count * min(cluster_size - 1, count - 1) * cs
        groups = groups_cache.get(task.task_id)
        if groups is None:
            # Empty supply columns imply a zero demand cap (no other users
            # of the resource), an exact 0.0 in the scalar sum — dropped.
            groups = tuple(
                (demand,) + arena.column(slot, col)
                for demand, col in lane.capped
                if col
            )
            groups_cache[task.task_id] = groups
        answers = yield from _ask([ArenaRequest(
            start=base,
            bound=task.deadline,
            inner=spin_const,
            outer=base,
            groups=groups,
        )])
        return answers[0]

    return (yield from _federated_driver(taskset, platform, wcrt_step, "SPIN"))


def _lpp_driver(
    taskset: TaskSet, platform: Platform, arena: TasksetArena, slot: int
) -> Driver:
    """Arena driver for :class:`~repro.analysis.lpp.LppTest` (kernel engine)."""
    kernel = LppKernel.of(taskset)
    prep_cache: Dict[int, tuple] = {}
    blocking_cache: Dict[int, Tuple[Tuple[float, ...], float]] = {}

    def wcrt_step(task, cluster_size, response_times):
        """One LPP WCRT bound: a wave of request windows, then the combine."""
        if cluster_size < 1:
            return _inf
        arena.sync(slot, response_times)
        lane = kernel._lane(task)
        carr = arena.slot_carried(slot)
        key = tuple(float(carr[j]) for j in lane.hp_involved)
        cached = blocking_cache.get(task.task_id)
        if cached is not None and cached[0] == key:
            blocking = cached[1]
        else:
            prep = prep_cache.get(task.task_id)
            if prep is None:
                prep = tuple(
                    (
                        count,
                        own_cs,
                        constant,
                        arena.column(slot, col) if col else None,
                    )
                    for count, own_cs, constant, col in zip(
                        lane.counts, lane.lengths, lane.constants, lane.hpcols
                    )
                )
                prep_cache[task.task_id] = prep
            wave: Wave = []
            for count, own_cs, constant, grp in prep:
                if grp is not None:
                    wave.append(ArenaRequest(
                        start=constant,
                        bound=task.deadline,
                        inner=0.0,
                        outer=constant,
                        groups=((_inf,) + grp,),
                    ))
            answers = yield from _ask(wave)
            blocking = 0.0
            nxt = 0
            for count, own_cs, constant, grp in prep:
                if grp is None:
                    # No higher-priority contender: the window is its
                    # constant part (provided it fits the deadline at all).
                    window: Optional[float] = (
                        constant if constant <= task.deadline else None
                    )
                else:
                    solved = answers[nxt]
                    nxt += 1
                    window = None if math.isinf(solved) else solved
                if window is None:
                    blocking = _inf
                    break
                blocking += count * max(0.0, window - own_cs)
            blocking_cache[task.task_id] = (key, blocking)
        if math.isinf(blocking):
            return _inf
        base = lane.crit_len + (lane.wcet - lane.crit_len) / cluster_size
        return base + blocking

    return (yield from _federated_driver(taskset, platform, wcrt_step, "LPP"))


# ---------------------------------------------------------------------- #
# DPCP-p driver: Algorithm 1 in driver form
# ---------------------------------------------------------------------- #
class _DpcpColumns:
    """Per-partition cache of a DPCP-p lane's arena-global columns."""

    __slots__ = ("_arena", "_slot", "_cache")

    def __init__(self, arena: TasksetArena, slot: int) -> None:
        self._arena = arena
        self._slot = slot
        self._cache: Dict[tuple, object] = {}

    def hp(self, lane, proc: int):
        """Lane's higher-priority column on ``proc``; ``None`` when empty."""
        key = (lane.index, 0, proc)
        got = self._cache.get(key, self)
        if got is self:
            col = lane.hp_cols[proc]
            got = self._arena.column(self._slot, col) if col else None
            self._cache[key] = got
        return got

    def other(self, lane, proc: int):
        """Lane's other-tasks column on ``proc`` (possibly empty arrays)."""
        key = (lane.index, 1, proc)
        got = self._cache.get(key)
        if got is None:
            got = self._arena.column(self._slot, lane.other_cols[proc])
            self._cache[key] = got
        return got

    def wcl(self, lane):
        """Lane's within-cluster workload column (possibly empty arrays)."""
        key = (lane.index, 2)
        got = self._cache.get(key)
        if got is None:
            got = self._arena.column(self._slot, lane.wcl_col)
            self._cache[key] = got
        return got


def _theorem1_request(
    cols: _DpcpColumns,
    lane,
    length: float,
    eps: Dict[int, float],
    intra_block: float,
    intra_interf: float,
    own_off_cluster: float,
    bound: float,
) -> ArenaRequest:
    """Theorem 1's fixed point as one canonical request (kernel semantics)."""
    m_i = lane.m_i
    fixed = length + intra_block + (intra_interf + own_off_cluster) / m_i
    start = length + intra_block + intra_interf / m_i
    # min(0, ζ) = 0: only processors with a positive ε can contribute.
    groups = tuple(
        (value,) + cols.other(lane, k)
        for k, value in eps.items()
        if value > 0.0
    )
    wcl_j, wcl_w = cols.wcl(lane)
    return ArenaRequest(
        start=start,
        bound=bound,
        inner=0.0,
        outer=fixed,
        groups=groups,
        uncapped=(wcl_j, wcl_w, m_i),
    )


def _window_request(grp, const: float, bound: float) -> ArenaRequest:
    """Lemma 2's window W = const + γ(W), answering γ at the solved window."""
    return ArenaRequest(
        start=const,
        bound=bound,
        inner=0.0,
        outer=const,
        groups=((_inf,) + grp,),
        gamma=True,
    )


def _dpcp_en_step(kernel, arena, slot, cols, lane, bound, response_times):
    """EN-style bound for one task: a window wave, then Theorem 1."""
    arena.sync(slot, response_times)
    static = lane.static
    wave: Wave = []
    plan: List[Tuple[str, float]] = []
    for g, rid in enumerate(static.ugr):
        k = lane.g_proc_list[g]
        beta = lane.beta_list[g]
        const = static.g_L[g] + lane.full_off[k] + beta
        grp = cols.hp(lane, k)
        if grp is None:
            plan.append(("val", 0.0 if const <= bound else _inf))
        else:
            plan.append(("req", float(len(wave))))
            wave.append(_window_request(grp, const, bound))
    answers = yield from _ask(wave)
    eps: Dict[int, float] = {}
    for g, rid in enumerate(static.ugr):
        k = lane.g_proc_list[g]
        beta = lane.beta_list[g]
        kind, value = plan[g]
        gamma = answers[int(value)] if kind == "req" else value
        eps[k] = eps.get(k, 0.0) + static.g_N[g] * (beta + gamma)
    intra_block = static.en_local_block + sum(
        lane.full_off[k] for k in lane.use_procs
    )
    intra_interf = max(0.0, static.wcet - static.crit_len)
    answers = yield from _ask([_theorem1_request(
        cols, lane, static.crit_len, eps, intra_block, intra_interf, 0.0, bound
    )])
    return answers[0]


def _dpcp_ep_step(
    kernel, arena, slot, cols, task, enumerator, bound, response_times
):
    """EP bound for one task: window wave, Theorem 1 wave, EN fallback."""
    from ..dpcp_p.kernel import BATCH_CUTOFF

    enumeration = enumerator.enumerate(task)
    arena.sync(slot, response_times)
    lane = kernel._lane(task)
    profiles = enumeration.profiles
    worst = 0.0
    if len(profiles) >= BATCH_CUTOFF:
        # Wide enumerations already run through the kernel's within-taskset
        # batched path; reuse it inline (it reads the shared tables'
        # carried state, valid for the duration of this driver step).
        kernel.sync_response_times(response_times)
        bounds = kernel._profile_bounds_batched(lane, profiles, bound)
        if bounds.size:
            worst = float(bounds.max())
    else:
        static = lane.static

        def profile_chunk(chunk):
            """Windows then Theorem 1 for ``chunk``; returns the bounds."""
            per_profile = []
            wave: Wave = []
            for profile in chunk:
                requests = profile.requests
                off: Dict[int, float] = {}
                sigma: Dict[int, bool] = {}
                for k, entries in lane.g_by_proc.items():
                    total = 0.0
                    requested = False
                    for rid, count, cs in entries:
                        on_path = requests.get(rid, 0)
                        if on_path > 0:
                            requested = True
                        gap = count - on_path
                        if gap > 0:
                            total += gap * cs
                    off[k] = total
                    sigma[k] = requested
                plan: List[Tuple[int, int, float, int, str, float]] = []
                for g, rid in enumerate(static.ugr):
                    n_path = requests.get(rid, 0)
                    if n_path <= 0:
                        continue
                    k = lane.g_proc_list[g]
                    beta = lane.beta_list[g]
                    const = static.g_L[g] + off[k] + beta
                    grp = cols.hp(lane, k)
                    if grp is None:
                        plan.append(
                            (g, k, beta, n_path, "val",
                             0.0 if const <= bound else _inf)
                        )
                    else:
                        plan.append(
                            (g, k, beta, n_path, "req", float(len(wave)))
                        )
                        wave.append(_window_request(grp, const, bound))
                per_profile.append((off, sigma, plan))
            answers = yield from _ask(wave)

            wave2: Wave = []
            for profile, (off, sigma, plan) in zip(chunk, per_profile):
                requests = profile.requests
                eps: Dict[int, float] = {}
                for g, k, beta, n_path, kind, value in plan:
                    gamma = answers[int(value)] if kind == "req" else value
                    eps[k] = eps.get(k, 0.0) + n_path * (beta + gamma)
                intra_block = 0.0
                for rid, count, cs in zip(static.lres, static.l_N, static.l_L):
                    n_path = requests.get(rid, 0)
                    if n_path > 0:
                        intra_block += (count - n_path) * cs
                for k in lane.use_procs:
                    if sigma[k]:
                        intra_block += off[k]
                noncrit = static.noncrit
                onpath = 0.0
                for v in profile.vertices:
                    onpath += noncrit[v]
                local_offpath = 0.0
                for rid, count, cs in zip(static.lres, static.l_N, static.l_L):
                    gap = count - requests.get(rid, 0)
                    if gap > 0:
                        local_offpath += gap * cs
                intra_interf = (static.total_noncrit - onpath) + local_offpath
                own_off_cluster = sum(off[k] for k in lane.cluster_use_procs)
                wave2.append(_theorem1_request(
                    cols, lane, profile.length, eps, intra_block,
                    intra_interf, own_off_cluster, bound,
                ))
            answers2 = yield from _ask(wave2)
            return answers2

        # The serial loop breaks at the first infinite profile bound, and on
        # this workload most infeasible tasks are infeasible already on the
        # first (critical-path) profile.  Probe it alone, then batch the
        # remaining profiles only when it stays finite; a straggler turning
        # infinite mid-batch is computed wastefully, but max() lands on the
        # same value the serial break would have returned.
        if profiles:
            first = yield from profile_chunk(profiles[:1])
            worst = max(worst, first[0])
            if not math.isinf(worst) and len(profiles) > 1:
                for value in (yield from profile_chunk(profiles[1:])):
                    worst = max(worst, value)
    if math.isinf(worst):
        return _inf
    if not enumeration.exhaustive:
        en = yield from _dpcp_en_step(
            kernel, arena, slot, cols, lane, bound, response_times
        )
        worst = max(worst, en)
    return worst


def _dpcp_driver(
    test, taskset: TaskSet, platform: Platform, arena: TasksetArena, slot: int
) -> Driver:
    """Arena driver for :class:`~repro.analysis.dpcp_p.protocol.DpcpPTest`.

    Replays :func:`~repro.analysis.dpcp_p.partition.partition_and_analyze`
    plus :func:`~repro.analysis.dpcp_p.wcrt.analyze_taskset` — same WFD
    retry loop, same telemetry bumps, same reason strings — routing every
    fixed point through the arena.
    """
    from ..dpcp_p.kernel import DpcpPKernel, KernelStaticCache
    from ..dpcp_p.partition import _first_failing_task, wfd_assign_resources
    from ..dpcp_p.wcrt import MODE_EP

    name = f"DPCP-p-{test.mode}"
    clusters = minimal_federated_clusters(taskset, platform)
    if clusters is None:
        return SchedulabilityResult(
            schedulable=False,
            protocol=name,
            reason="not enough processors for the minimal federated assignment",
        )
    # A fresh enumerator per invocation, shared across the WFD retries —
    # exactly DpcpPTest.test's behaviour.
    enumerator = (
        PathEnumerator(
            max_signatures=test._enumerator.max_signatures,
            max_paths=test._enumerator.max_paths,
        )
        if test._enumerator
        else None
    )
    static_cache = KernelStaticCache()
    ep_mode = test.mode == MODE_EP
    while True:
        tel = _active_telemetry()
        if tel is not None:
            counters = tel.counters
            counters["partition.wfd_passes"] = (
                counters.get("partition.wfd_passes", 0) + 1
            )
            perf_counter = time.perf_counter
            started = perf_counter()
            wfd = wfd_assign_resources(taskset, clusters)
            tel.observe("phase.partition", perf_counter() - started)
        else:
            wfd = wfd_assign_resources(taskset, clusters)
        if not wfd.feasible:
            return SchedulabilityResult(
                schedulable=False,
                protocol=name,
                reason=f"WFD resource assignment infeasible: {wfd.reason}",
            )
        partition = PartitionedSystem(taskset, platform, clusters, wfd.assignment)
        kernel = DpcpPKernel(taskset, partition, static_cache)
        cols = _DpcpColumns(arena, slot)
        analyses: Dict[int, TaskAnalysis] = {}
        response_times: Dict[int, float] = {}
        for task in taskset.by_priority(descending=True):
            bound = task.deadline * 1.0
            if ep_mode:
                wcrt = yield from _dpcp_ep_step(
                    kernel, arena, slot, cols, task, enumerator, bound,
                    response_times,
                )
            else:
                arena.sync(slot, response_times)
                lane = kernel._lane(task)
                wcrt = yield from _dpcp_en_step(
                    kernel, arena, slot, cols, lane, bound, response_times
                )
            analyses[task.task_id] = TaskAnalysis(
                task_id=task.task_id,
                wcrt=wcrt,
                deadline=task.deadline,
                processors=partition.num_processors_of(task.task_id),
            )
            response_times[task.task_id] = min(wcrt, task.deadline)

        failing = _first_failing_task(taskset, analyses)
        if failing is None:
            return SchedulabilityResult(
                schedulable=True,
                protocol=name,
                task_analyses=analyses,
                partition=partition,
            )
        unassigned = partition.unassigned_processors()
        if not unassigned:
            return SchedulabilityResult(
                schedulable=False,
                protocol=name,
                task_analyses=analyses,
                partition=partition,
                reason=(
                    f"task {failing} misses its deadline and no spare processor "
                    "is available"
                ),
            )
        clusters[failing].processors.append(unassigned[0])


# ---------------------------------------------------------------------- #
# Capability probe + scheduler
# ---------------------------------------------------------------------- #
def arena_capable(test: SchedulabilityTest) -> bool:
    """Whether ``test`` has an identical-by-construction arena driver.

    Exact types only: a subclass may override ``test()``, and the arena's
    bit-identity contract is with these four kernels' orchestration, nothing
    looser.  Reference-engine instances fall back to the per-sample path.
    """
    from ..dpcp_p.protocol import DpcpPEnTest, DpcpPEpTest, DpcpPTest

    if type(test) in (SpinTest, LppTest):
        return test.engine == ENGINE_KERNEL
    if type(test) in (DpcpPTest, DpcpPEpTest, DpcpPEnTest):
        return test.engine == ENGINE_KERNEL
    return False


def _make_driver(
    test, taskset: TaskSet, platform: Platform, arena: TasksetArena, slot: int
) -> Driver:
    """Instantiate the matching driver generator for an arena-capable test."""
    from ..dpcp_p.protocol import DpcpPTest

    if isinstance(test, DpcpPTest):
        return _dpcp_driver(test, taskset, platform, arena, slot)
    if isinstance(test, SpinTest):
        return _spin_driver(taskset, platform, arena, slot)
    if isinstance(test, LppTest):
        return _lpp_driver(taskset, platform, arena, slot)
    raise ValueError(f"no arena driver for {test!r}")


def run_arena(
    tasksets: Sequence[TaskSet],
    platform: Platform,
    tests: Sequence[SchedulabilityTest],
) -> Dict[str, List[SchedulabilityResult]]:
    """Analyze every (task set, test) pair through one shared arena.

    Drivers advance in lockstep rounds: each round collects one wave per
    still-running driver, solves the union in a single batched call, and
    feeds the answers back.  Returns ``{test.name: [verdict per task set]}``
    with verdicts identical to calling ``test.test(taskset, platform)``
    serially.  All ``tests`` must be :func:`arena_capable`.
    """
    tel = _active_telemetry()
    arena = TasksetArena()
    results: Dict[str, List[Optional[SchedulabilityResult]]] = {
        test.name: [None] * len(tasksets) for test in tests
    }
    pending: List[Tuple[str, int, Driver]] = []
    for test in tests:
        for si, taskset in enumerate(tasksets):
            slot = arena.add_slot(compile_taskset(taskset))
            pending.append(
                (test.name, si, _make_driver(test, taskset, platform, arena, slot))
            )
    arena.seal()
    if tel is not None:
        tel.count("arena.tasksets", len(tasksets))

    live: List[Tuple[str, int, Driver, Wave]] = []
    for name, si, gen in pending:
        try:
            wave = next(gen)
        except StopIteration as stop:
            results[name][si] = stop.value
        else:
            live.append((name, si, gen, wave))
    while live:
        union: Wave = []
        for _, _, _, wave in live:
            union.extend(wave)
        arena.solve_wave(union)
        advanced: List[Tuple[str, int, Driver, Wave]] = []
        for name, si, gen, wave in live:
            answers = [r.answer for r in wave]
            try:
                nxt = gen.send(answers)
            except StopIteration as stop:
                results[name][si] = stop.value
            else:
                advanced.append((name, si, gen, nxt))
        live = advanced
    return results
