"""Shared federated-scheduling machinery for the baseline protocols.

The baselines (SPIN, LPP) execute resource requests locally, so their
partitioning stage only decides how many processors each heavy task receives.
To keep the comparison with DPCP-p fair, they use the same iterative policy
as Algorithm 1: start from the minimal federated assignment and grant one
additional processor to the first task whose WCRT bound exceeds its deadline,
as long as spare processors remain.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from ..model.platform import Cluster, PartitionedSystem, Platform, minimal_federated_clusters
from ..model.task import DAGTask, TaskSet
from .interfaces import SchedulabilityResult, TaskAnalysis

#: Signature of a per-task WCRT bound used by the federated top-up loop:
#: ``(taskset, task, cluster_size, known_response_times) -> wcrt``.
WcrtFunction = Callable[[TaskSet, DAGTask, int, Dict[int, float]], float]


def federated_topup_analysis(
    taskset: TaskSet,
    platform: Platform,
    wcrt_function: WcrtFunction,
    protocol_name: str,
) -> SchedulabilityResult:
    """Iteratively size clusters and analyse tasks with ``wcrt_function``.

    Tasks are analysed in decreasing priority order; response times of
    not-yet-analysed tasks are taken as their deadlines (consistent whenever
    the final verdict is "schedulable").
    """
    clusters = minimal_federated_clusters(taskset, platform)
    if clusters is None:
        return SchedulabilityResult(
            schedulable=False,
            protocol=protocol_name,
            reason="not enough processors for the minimal federated assignment",
        )

    while True:
        partition = PartitionedSystem(taskset, platform, clusters, {})
        analyses: Dict[int, TaskAnalysis] = {}
        response_times: Dict[int, float] = {}
        failing: Optional[int] = None
        for task in taskset.by_priority(descending=True):
            cluster_size = clusters[task.task_id].size
            wcrt = wcrt_function(taskset, task, cluster_size, response_times)
            analyses[task.task_id] = TaskAnalysis(
                task_id=task.task_id,
                wcrt=wcrt,
                deadline=task.deadline,
                processors=cluster_size,
            )
            response_times[task.task_id] = min(wcrt, task.deadline)
            if math.isinf(wcrt) or wcrt > task.deadline + 1e-9:
                failing = task.task_id
                break

        if failing is None:
            return SchedulabilityResult(
                schedulable=True,
                protocol=protocol_name,
                task_analyses=analyses,
                partition=partition,
            )

        unassigned = partition.unassigned_processors()
        if not unassigned:
            return SchedulabilityResult(
                schedulable=False,
                protocol=protocol_name,
                task_analyses=analyses,
                partition=partition,
                reason=(
                    f"task {failing} misses its deadline and no spare processor "
                    "is available"
                ),
            )
        clusters[failing].processors.append(unassigned[0])
