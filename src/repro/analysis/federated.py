"""Shared federated-scheduling machinery for the baseline protocols.

The baselines (SPIN, LPP) execute resource requests locally, so their
partitioning stage only decides how many processors each heavy task receives.
To keep the comparison with DPCP-p fair, they use the same iterative policy
as Algorithm 1: start from the minimal federated assignment and grant one
additional processor to the first task whose WCRT bound exceeds its deadline,
as long as spare processors remain.

The top-up loop restarts *warm*: granting a processor changes only the
failing task's cluster, and a task's WCRT bound depends only on its own
cluster size and the response times of the previously analysed
(higher-priority) tasks — so the already-computed prefix is carried over and
the re-analysis resumes at the failing task instead of re-walking the whole
task set on every grant.  ``wcrt_function`` implementations must respect
this contract (both engines of SPIN and LPP do: neither reads another
task's cluster size).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from ..model.platform import Cluster, PartitionedSystem, Platform, minimal_federated_clusters
from ..model.task import DAGTask, TaskSet
from .interfaces import SchedulabilityResult, TaskAnalysis

#: Signature of a per-task WCRT bound used by the federated top-up loop:
#: ``(taskset, task, cluster_size, known_response_times) -> wcrt``.
WcrtFunction = Callable[[TaskSet, DAGTask, int, Dict[int, float]], float]


def federated_topup_analysis(
    taskset: TaskSet,
    platform: Platform,
    wcrt_function: WcrtFunction,
    protocol_name: str,
) -> SchedulabilityResult:
    """Iteratively size clusters and analyse tasks with ``wcrt_function``.

    Tasks are analysed in decreasing priority order; response times of
    not-yet-analysed tasks are taken as their deadlines (consistent whenever
    the final verdict is "schedulable").  Across top-up retries only the
    grown cluster's task (and the tasks after it in priority order) are
    re-analysed — see the module docstring for why that is sound.
    """
    clusters = minimal_federated_clusters(taskset, platform)
    if clusters is None:
        return SchedulabilityResult(
            schedulable=False,
            protocol=protocol_name,
            reason="not enough processors for the minimal federated assignment",
        )

    order = taskset.by_priority(descending=True)
    # Spare processors, ascending (the order PartitionedSystem's
    # unassigned_processors() reports); maintained incrementally so the
    # partition object is only materialized for the final verdict.
    assigned = {p for cluster in clusters.values() for p in cluster.processors}
    spares = [p for p in platform.processors if p not in assigned]
    analyses: Dict[int, TaskAnalysis] = {}
    response_times: Dict[int, float] = {}
    resume = 0
    while True:
        failing: Optional[int] = None
        failing_index = resume
        for index in range(resume, len(order)):
            task = order[index]
            cluster_size = clusters[task.task_id].size
            wcrt = wcrt_function(taskset, task, cluster_size, response_times)
            analyses[task.task_id] = TaskAnalysis(
                task_id=task.task_id,
                wcrt=wcrt,
                deadline=task.deadline,
                processors=cluster_size,
            )
            response_times[task.task_id] = min(wcrt, task.deadline)
            if math.isinf(wcrt) or wcrt > task.deadline + 1e-9:
                failing = task.task_id
                failing_index = index
                break

        if failing is None:
            return SchedulabilityResult(
                schedulable=True,
                protocol=protocol_name,
                task_analyses=analyses,
                partition=PartitionedSystem(taskset, platform, clusters, {}),
            )

        if not spares:
            return SchedulabilityResult(
                schedulable=False,
                protocol=protocol_name,
                task_analyses=analyses,
                partition=PartitionedSystem(taskset, platform, clusters, {}),
                reason=(
                    f"task {failing} misses its deadline and no spare processor "
                    "is available"
                ),
            )
        clusters[failing].processors.append(spares.pop(0))
        # Warm restart: the higher-priority prefix is untouched by the grant,
        # so resume at the failing task.  Its own (stale) response-time entry
        # is dropped so wcrt_function sees exactly the prefix a cold rerun
        # would present.
        resume = failing_index
        del response_times[failing]
