"""FED-FP: resource-oblivious federated scheduling (Li et al. [13]).

This is the paper's hypothetical upper baseline: shared resources are simply
ignored, so a heavy task τi is schedulable on :math:`m_i` dedicated
processors whenever

.. math::  L^*_i + (C_i - L^*_i) / m_i \\le D_i,

which the minimal assignment :math:`m_i = \\lceil (C_i - L^*_i)/(D_i - L^*_i)
\\rceil` guarantees by construction.  The task set is schedulable when the
minimal assignments fit on the platform.
"""

from __future__ import annotations

import math
from typing import Dict

from ..model.platform import Platform, minimal_federated_clusters, PartitionedSystem
from ..model.task import DAGTask, TaskSet
from .interfaces import SchedulabilityResult, SchedulabilityTest, TaskAnalysis


def federated_wcrt(task: DAGTask, cluster_size: int) -> float:
    """Classic federated WCRT bound :math:`L^*_i + (C_i - L^*_i)/m_i`."""
    if cluster_size < 1:
        return math.inf
    lstar = task.critical_path_length
    return lstar + (task.wcet - lstar) / cluster_size


class FedFpTest(SchedulabilityTest):
    """Federated scheduling without shared resources (upper baseline)."""

    name = "FED-FP"

    def test(self, taskset: TaskSet, platform: Platform) -> SchedulabilityResult:
        """Schedulable iff the minimal federated assignment fits the platform."""
        clusters = minimal_federated_clusters(taskset, platform)
        if clusters is None:
            return SchedulabilityResult(
                schedulable=False,
                protocol=self.name,
                reason="not enough processors for the minimal federated assignment",
            )
        partition = PartitionedSystem(taskset, platform, clusters, {})
        analyses: Dict[int, TaskAnalysis] = {}
        schedulable = True
        for task in taskset:
            wcrt = federated_wcrt(task, clusters[task.task_id].size)
            analyses[task.task_id] = TaskAnalysis(
                task_id=task.task_id,
                wcrt=wcrt,
                deadline=task.deadline,
                processors=clusters[task.task_id].size,
            )
            schedulable = schedulable and wcrt <= task.deadline + 1e-9
        return SchedulabilityResult(
            schedulable=schedulable,
            protocol=self.name,
            task_analyses=analyses,
            partition=partition,
        )
