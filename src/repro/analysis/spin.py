"""SPIN baseline: FIFO spin locks under federated scheduling (after Dinh et al. [6]).

Requests execute locally on the task's own cluster; a vertex that finds a
resource locked *busy-waits* (spins) on its processor.  The analysis follows
the structure of the spin-lock blocking analyses for parallel tasks:

* **per-request spin delay** — with FIFO ordering, a request to
  :math:`\\ell_q` waits for at most one in-flight critical section per other
  task that uses :math:`\\ell_q`, plus the task's own concurrently spinning
  vertices (at most :math:`\\min(m_i - 1, N_{i,q} - 1)` of them);
* **supply cap** — across the whole response window, other tasks cannot delay
  the task by more than the total request workload they can release, which
  yields a :math:`\\zeta`-style cap on the inter-task part;
* spinning occupies processors: every request is charged as if it lay on the
  key path, extending it directly.  (Evaluating the "no request on the path"
  placement as well, as earlier revisions did, is redundant: dividing the
  same spin workload by the cluster size is dominated term-for-term by the
  on-path charge — see DESIGN.md, "fidelity notes".)

This is a re-implementation of the cited approach at the level of detail the
paper evaluates (see DESIGN.md, "fidelity notes"): absolute acceptance ratios
may differ from [6], but the qualitative behaviour — competitive under light
contention, degrading as the number, length, and breadth of critical sections
grows — is preserved.

Two interchangeable engines compute the bound:

* ``engine="kernel"`` (default) — :class:`SpinKernel`, which compiles the
  static per-``(task, resource)`` delay terms and sparse ``(task, weight)``
  supply columns once per task set on top of the shared
  :class:`~repro.analysis.engine.tables.CompiledTaskset`;
* ``engine="reference"`` — the straight-line functions below, kept as the
  property-tested oracle (see ``tests/analysis/test_baseline_engine_equivalence.py``).
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, List, Tuple

from ..model.platform import Platform
from ..model.task import DAGTask, TaskSet
from .engine.solver import (
    DEFAULT_ENGINE,
    ENGINE_KERNEL,
    ETA_GUARD,
    NO_CONVERGENCE,
    check_engine,
    solve_scalar,
    warn_no_convergence,
)
from .engine.tables import CompiledTaskset, compile_taskset
from .federated import federated_topup_analysis
from .interfaces import SchedulabilityResult, SchedulabilityTest
from .rta import ceil_div_jobs, least_fixed_point

_ceil = math.ceil


# --------------------------------------------------------------------------- #
# Reference (straight-line) implementation — the property-tested oracle
# --------------------------------------------------------------------------- #
def per_request_spin_delay(
    taskset: TaskSet, task: DAGTask, resource_id: int, cluster_size: int
) -> float:
    """Worst-case spin delay of a single request to ``resource_id``.

    FIFO ordering admits at most one earlier critical section per other task
    that uses the resource, plus the task's own concurrently spinning
    vertices.
    """
    delay = inter_task_spin_delay(taskset, task, resource_id)
    own_count = task.request_count(resource_id)
    if own_count > 1:
        delay += min(cluster_size - 1, own_count - 1) * task.cs_length(resource_id)
    return delay


def inter_task_spin_delay(taskset: TaskSet, task: DAGTask, resource_id: int) -> float:
    """Inter-task part of the per-request spin delay (one CS per other task)."""
    delay = 0.0
    for other in taskset:
        if other.task_id == task.task_id:
            continue
        if other.request_count(resource_id) == 0:
            continue
        delay += other.cs_length(resource_id)
    return delay


def _other_request_workload(
    taskset: TaskSet,
    task: DAGTask,
    resource_id: int,
    interval: float,
    response_times: Dict[int, float],
) -> float:
    """Total request workload other tasks can place on ``resource_id`` in ``interval``."""
    total = 0.0
    for other in taskset:
        if other.task_id == task.task_id:
            continue
        count = other.request_count(resource_id)
        if count == 0:
            continue
        carried = response_times.get(other.task_id, other.deadline)
        released = ceil_div_jobs(interval, other.period, carried)
        total += released * count * other.cs_length(resource_id)
    return total


def spin_wcrt(
    taskset: TaskSet,
    task: DAGTask,
    cluster_size: int,
    response_times: Dict[int, float],
) -> float:
    """WCRT bound of a task under FIFO spin locks on ``cluster_size`` processors."""
    if cluster_size < 1:
        return math.inf
    lstar = task.critical_path_length
    base = lstar + (task.wcet - lstar) / cluster_size

    inter_per_request: Dict[int, float] = {}
    intra_per_request: Dict[int, float] = {}
    for rid in task.used_resources():
        inter_per_request[rid] = inter_task_spin_delay(taskset, task, rid)
        count = task.request_count(rid)
        intra_per_request[rid] = (
            min(cluster_size - 1, count - 1) * task.cs_length(rid) if count > 1 else 0.0
        )

    def capped_inter_spin(resource_id: int, requests: int, response: float) -> float:
        demand_view = requests * inter_per_request[resource_id]
        supply_view = _other_request_workload(
            taskset, task, resource_id, response, response_times
        )
        return min(demand_view, supply_view)

    # Worst placement: every request lies on the key path — its spin time
    # extends the path directly.  (The opposite placement, spin workload
    # divided by the cluster size, is dominated term-for-term and therefore
    # not evaluated; see the module docstring.)
    def recurrence(response: float) -> float:
        spin = 0.0
        for rid in task.used_resources():
            count = task.request_count(rid)
            spin += capped_inter_spin(rid, count, response)
            spin += count * intra_per_request[rid]
        return base + spin

    solution = least_fixed_point(recurrence, base, task.deadline)
    return solution if solution is not None else math.inf


# --------------------------------------------------------------------------- #
# Compiled kernel engine
# --------------------------------------------------------------------------- #
class _SpinLane:
    """Per-task compiled SPIN coefficients (cluster-size independent)."""

    __slots__ = ("capped", "intra_terms", "crit_len", "wcet")

    def __init__(self, tables: CompiledTaskset, task: DAGTask) -> None:
        static = tables.table(task)
        i = tables.index[task.task_id]
        #: Per used resource: the demand-view cap N_{i,q} · Σ_{j≠i} L_{j,q}
        #: and the sparse supply column [(j, N_{j,q} L_{j,q})].
        self.capped: List[Tuple[float, List[Tuple[int, float]]]] = []
        #: ``(N_{i,q}, L_{i,q})`` of resources with own concurrent requests —
        #: their spin term needs the cluster size, so it stays per-call.
        self.intra_terms: List[Tuple[float, float]] = []
        for count, cs, rid in zip(static.N, static.L, static.used):
            inter = 0.0
            col: List[Tuple[int, float]] = []
            for j, other_count, other_cs in tables.users(rid):
                if j == i:
                    continue
                inter += other_cs
                col.append((j, other_count * other_cs))
            self.capped.append((count * inter, col))
            if count > 1:
                self.intra_terms.append((count, cs))
        self.crit_len = static.crit_len
        self.wcet = static.wcet


class SpinKernel:
    """Compiled SPIN analysis over the shared :class:`CompiledTaskset`.

    Matches :func:`spin_wcrt` bound-for-bound (property-tested to 1e-9); the
    static delay terms and supply columns are compiled once per task set and
    reused across the federated top-up retries and across every
    :class:`SpinTest` run on the same task set.
    """

    CACHE_KEY = "spin"

    def __init__(self, taskset: TaskSet, tables: CompiledTaskset) -> None:
        self.tables = tables
        # Weak: this kernel lives in tables.protocol_cache, which the
        # weak-keyed compile_taskset memo reaches from the task set — a
        # strong back-reference would make the memo entry immortal.
        self._owner = weakref.ref(taskset)
        self._lanes: Dict[int, _SpinLane] = {}

    @classmethod
    def of(cls, taskset: TaskSet) -> "SpinKernel":
        """The shared kernel of ``taskset`` (compiled once, cached on its tables)."""
        tables = compile_taskset(taskset)
        kernel = tables.protocol_cache.get(cls.CACHE_KEY)
        if kernel is None:
            kernel = cls(taskset, tables)
            tables.protocol_cache[cls.CACHE_KEY] = kernel
        return kernel

    def _lane(self, task: DAGTask) -> _SpinLane:
        lane = self._lanes.get(task.task_id)
        if lane is None:
            lane = _SpinLane(self.tables, task)
            self._lanes[task.task_id] = lane
        return lane

    def wcrt(
        self,
        taskset: TaskSet,
        task: DAGTask,
        cluster_size: int,
        response_times: Dict[int, float],
    ) -> float:
        """Drop-in replacement for :func:`spin_wcrt` over compiled tables."""
        if taskset is not self._owner():
            raise ValueError(
                "SpinKernel was compiled for a different task set; "
                "use SpinKernel.of(taskset)"
            )
        if cluster_size < 1:
            return math.inf
        tables = self.tables
        tables.sync_response_times(response_times)
        lane = self._lane(task)
        base = lane.crit_len + (lane.wcet - lane.crit_len) / cluster_size

        # Constant intra-task spin (the only cluster-size-dependent term of
        # the per-resource coefficients).
        spin_const = 0.0
        for count, cs in lane.intra_terms:
            spin_const += count * min(cluster_size - 1, count - 1) * cs
        capped = lane.capped

        carried = tables.carried_list
        periods = tables.periods_list

        def recurrence(response: float) -> float:
            spin = spin_const
            for demand, col in capped:
                supply = 0.0
                for j, w in col:
                    e = _ceil((response + carried[j]) / periods[j] - ETA_GUARD)
                    if e > 0:
                        supply += e * w
                spin += demand if demand < supply else supply
            return base + spin

        solved, status = solve_scalar(recurrence, base, task.deadline)
        if solved is None:
            if status == NO_CONVERGENCE:
                warn_no_convergence(1, task.deadline)
            return math.inf
        return solved


class SpinTest(SchedulabilityTest):
    """Schedulability test for FIFO spin locks under federated scheduling.

    Parameters
    ----------
    engine:
        ``"kernel"`` (compiled coefficients, default) or ``"reference"``
        (the straight-line oracle the kernel is validated against).
    """

    name = "SPIN"

    def __init__(self, engine: str = DEFAULT_ENGINE) -> None:
        check_engine(engine)
        self.engine = engine

    def test(self, taskset: TaskSet, platform: Platform) -> SchedulabilityResult:
        """Iteratively size clusters and bound every task's WCRT under spinning."""
        if self.engine == ENGINE_KERNEL:
            wcrt_function = SpinKernel.of(taskset).wcrt
        else:
            wcrt_function = spin_wcrt
        return federated_topup_analysis(taskset, platform, wcrt_function, self.name)
