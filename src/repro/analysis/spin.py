"""SPIN baseline: FIFO spin locks under federated scheduling (after Dinh et al. [6]).

Requests execute locally on the task's own cluster; a vertex that finds a
resource locked *busy-waits* (spins) on its processor.  The analysis follows
the structure of the spin-lock blocking analyses for parallel tasks:

* **per-request spin delay** — with FIFO ordering, a request to
  :math:`\\ell_q` waits for at most one in-flight critical section per other
  task that uses :math:`\\ell_q`, plus the task's own concurrently spinning
  vertices (at most :math:`\\min(m_i - 1, N_{i,q} - 1)` of them);
* **supply cap** — across the whole response window, other tasks cannot delay
  the task by more than the total request workload they can release, which
  yields a :math:`\\zeta`-style cap on the inter-task part;
* spinning occupies processors: the spin time of requests issued by *path*
  vertices extends the path directly, while the spin time of off-path
  requests inflates the workload that is divided by the cluster size.

The per-path request counts are unknown under the key-path (EN-style) view
used by the prior work, so the bound evaluates the two extreme placements —
every request on the key path, or none of them — and takes the worse one.

This is a re-implementation of the cited approach at the level of detail the
paper evaluates (see DESIGN.md, "fidelity notes"): absolute acceptance ratios
may differ from [6], but the qualitative behaviour — competitive under light
contention, degrading as the number, length, and breadth of critical sections
grows — is preserved.
"""

from __future__ import annotations

import math
from typing import Dict

from ..model.platform import Platform
from ..model.task import DAGTask, TaskSet
from .federated import federated_topup_analysis
from .interfaces import SchedulabilityResult, SchedulabilityTest
from .rta import ceil_div_jobs, least_fixed_point


def per_request_spin_delay(
    taskset: TaskSet, task: DAGTask, resource_id: int, cluster_size: int
) -> float:
    """Worst-case spin delay of a single request to ``resource_id``.

    FIFO ordering admits at most one earlier critical section per other task
    that uses the resource, plus the task's own concurrently spinning
    vertices.
    """
    delay = inter_task_spin_delay(taskset, task, resource_id)
    own_count = task.request_count(resource_id)
    if own_count > 1:
        delay += min(cluster_size - 1, own_count - 1) * task.cs_length(resource_id)
    return delay


def inter_task_spin_delay(taskset: TaskSet, task: DAGTask, resource_id: int) -> float:
    """Inter-task part of the per-request spin delay (one CS per other task)."""
    delay = 0.0
    for other in taskset:
        if other.task_id == task.task_id:
            continue
        if other.request_count(resource_id) == 0:
            continue
        delay += other.cs_length(resource_id)
    return delay


def _other_request_workload(
    taskset: TaskSet,
    task: DAGTask,
    resource_id: int,
    interval: float,
    response_times: Dict[int, float],
) -> float:
    """Total request workload other tasks can place on ``resource_id`` in ``interval``."""
    total = 0.0
    for other in taskset:
        if other.task_id == task.task_id:
            continue
        count = other.request_count(resource_id)
        if count == 0:
            continue
        carried = response_times.get(other.task_id, other.deadline)
        released = ceil_div_jobs(interval, other.period, carried)
        total += released * count * other.cs_length(resource_id)
    return total


def spin_wcrt(
    taskset: TaskSet,
    task: DAGTask,
    cluster_size: int,
    response_times: Dict[int, float],
) -> float:
    """WCRT bound of a task under FIFO spin locks on ``cluster_size`` processors."""
    if cluster_size < 1:
        return math.inf
    lstar = task.critical_path_length
    base = lstar + (task.wcet - lstar) / cluster_size

    inter_per_request: Dict[int, float] = {}
    intra_per_request: Dict[int, float] = {}
    for rid in task.used_resources():
        inter_per_request[rid] = inter_task_spin_delay(taskset, task, rid)
        count = task.request_count(rid)
        intra_per_request[rid] = (
            min(cluster_size - 1, count - 1) * task.cs_length(rid) if count > 1 else 0.0
        )

    def capped_inter_spin(resource_id: int, requests: int, response: float) -> float:
        demand_view = requests * inter_per_request[resource_id]
        supply_view = _other_request_workload(
            taskset, task, resource_id, response, response_times
        )
        return min(demand_view, supply_view)

    # Extreme placement 1: every request lies on the key path — its spin time
    # extends the path directly.
    def recurrence_on_path(response: float) -> float:
        spin = 0.0
        for rid in task.used_resources():
            count = task.request_count(rid)
            spin += capped_inter_spin(rid, count, response)
            spin += count * intra_per_request[rid]
        return base + spin

    # Extreme placement 2: no request lies on the key path — the spin time
    # inflates the off-path workload that the remaining processors absorb.
    def recurrence_off_path(response: float) -> float:
        spin = 0.0
        for rid in task.used_resources():
            count = task.request_count(rid)
            spin += capped_inter_spin(rid, count, response)
            spin += count * intra_per_request[rid]
        return base + spin / cluster_size

    worst = 0.0
    for recurrence in (recurrence_on_path, recurrence_off_path):
        solution = least_fixed_point(recurrence, base, task.deadline)
        if solution is None:
            return math.inf
        worst = max(worst, solution)
    return worst


class SpinTest(SchedulabilityTest):
    """Schedulability test for FIFO spin locks under federated scheduling."""

    name = "SPIN"

    def test(self, taskset: TaskSet, platform: Platform) -> SchedulabilityResult:
        """Iteratively size clusters and bound every task's WCRT under spinning."""
        return federated_topup_analysis(taskset, platform, spin_wcrt, self.name)
