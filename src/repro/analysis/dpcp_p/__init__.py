"""DPCP-p: partitioning, blocking/interference bounds, and WCRT analysis."""

from .blocking import inter_task_blocking, intra_task_blocking, request_response_time
from .context import DpcpPContext
from .interference import (
    agent_interference,
    intra_task_interference,
    intra_task_interference_en,
    vertex_non_critical_wcet,
)
from .kernel import DpcpPKernel
from .partition import WfdOutcome, partition_and_analyze, wfd_assign_resources
from .protocol import (
    DEFAULT_MAX_PATH_SIGNATURES,
    DpcpPEnTest,
    DpcpPEpTest,
    DpcpPTest,
)
from .wcrt import (
    DEFAULT_ENGINE,
    ENGINE_KERNEL,
    ENGINE_REFERENCE,
    MODE_EN,
    MODE_EP,
    analyze_taskset,
    path_wcrt,
    task_wcrt_en,
    task_wcrt_ep,
)

__all__ = [
    "DpcpPKernel",
    "DEFAULT_ENGINE",
    "ENGINE_KERNEL",
    "ENGINE_REFERENCE",
    "inter_task_blocking",
    "intra_task_blocking",
    "request_response_time",
    "DpcpPContext",
    "agent_interference",
    "intra_task_interference",
    "intra_task_interference_en",
    "vertex_non_critical_wcet",
    "WfdOutcome",
    "partition_and_analyze",
    "wfd_assign_resources",
    "DEFAULT_MAX_PATH_SIGNATURES",
    "DpcpPEnTest",
    "DpcpPEpTest",
    "DpcpPTest",
    "MODE_EN",
    "MODE_EP",
    "analyze_taskset",
    "path_wcrt",
    "task_wcrt_en",
    "task_wcrt_ep",
]
