"""Blocking bounds for DPCP-p (Sec. IV-B, Lemmas 2–4)."""

from __future__ import annotations

import math
from typing import Mapping, Optional

from ...model.task import DAGTask
from ..rta import least_fixed_point
from .context import DpcpPContext


def request_response_time(
    ctx: DpcpPContext,
    task: DAGTask,
    resource_id: int,
    n_lambda: Mapping[int, int],
    divergence_bound: Optional[float] = None,
) -> float:
    """Lemma 2: response time :math:`W_{i,q}` of one global-resource request.

    ``n_lambda`` holds the per-resource request counts of the analysed path;
    requests issued by vertices *not* on the path to resources co-located
    with :math:`\\ell_q` contribute the intra-task term of Eq. (3).

    Returns ``math.inf`` when the fixed point does not converge below the
    divergence bound (the task's deadline by default).
    """
    if divergence_bound is None:
        divergence_bound = task.deadline
    own_cs = task.cs_length(resource_id)
    co_located = ctx.co_located_resources(resource_id)
    intra = ctx.own_offpath_cs_workload(task, co_located, n_lambda)
    beta = ctx.beta(task, resource_id)
    constant = own_cs + intra + beta

    def recurrence(window: float) -> float:
        return constant + ctx.gamma(task, resource_id, window)

    solution = least_fixed_point(recurrence, constant, divergence_bound)
    return solution if solution is not None else math.inf


def inter_task_blocking(
    ctx: DpcpPContext,
    task: DAGTask,
    n_lambda: Mapping[int, int],
    response_time: float,
    request_response_times: Optional[Mapping[int, float]] = None,
) -> float:
    """Lemma 3: inter-task blocking bound :math:`B_i` for the analysed path.

    For every processor the bound is the minimum of

    * :math:`\\varepsilon^k_i` — the per-request view: each of the path's
      :math:`N^\\lambda_{i,q}` requests to a resource on the processor is
      blocked by at most one lower-priority critical section plus the
      higher-priority request workload within the request's response time, and
    * :math:`\\zeta^k_i` — the supply view: the total request workload other
      tasks can place on the processor's resources while the path is pending.

    ``request_response_times`` may carry precomputed :math:`W_{i,q}` values
    (keyed by resource id); missing entries are computed on demand.
    """
    total = 0.0
    partition = ctx.partition
    for processor in partition.platform.processors:
        resources = ctx.resources_on_processor(processor)
        if not resources:
            continue
        epsilon = 0.0
        for rid in resources:
            path_requests = n_lambda.get(rid, 0)
            if path_requests == 0:
                continue
            if request_response_times is not None and rid in request_response_times:
                window = request_response_times[rid]
            else:
                window = request_response_time(ctx, task, rid, n_lambda)
            if math.isinf(window):
                epsilon = math.inf
                break
            per_request = ctx.beta(task, rid) + ctx.gamma(task, rid, window)
            epsilon += per_request * path_requests
        zeta = ctx.other_task_request_workload(task, resources, response_time)
        total += min(epsilon, zeta)
    return total


def intra_task_blocking(
    ctx: DpcpPContext, task: DAGTask, n_lambda: Mapping[int, int]
) -> float:
    """Lemma 4: intra-task blocking bound :math:`b_i` for the analysed path.

    Local resources block the path only if the path itself requests them
    (Eq. (6)); global resources hosted on a processor block the path only if
    the path requests *some* global resource on that processor (Eq. (7)).
    """
    total = 0.0
    # Local resources used by the task (Eq. (6)).
    for rid in ctx.taskset.local_resources():
        count = task.request_count(rid)
        if count == 0:
            continue
        path_requests = n_lambda.get(rid, 0)
        if path_requests == 0:
            continue
        total += (count - path_requests) * task.cs_length(rid)

    # Global resources, per hosting processor (Eq. (7)).
    for processor in ctx.partition.platform.processors:
        resources = ctx.resources_on_processor(processor)
        if not resources:
            continue
        sigma = 1 if any(n_lambda.get(rid, 0) > 0 for rid in resources) else 0
        if sigma == 0:
            continue
        total += ctx.own_offpath_cs_workload(task, resources, n_lambda)
    return total
