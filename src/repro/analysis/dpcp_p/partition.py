"""Task and resource partitioning for DPCP-p (Sec. V, Algorithms 1 and 2).

The partitioning stage decides (i) how many processors each heavy task
receives (its *cluster*) and (ii) which processor hosts each global resource.
Resources are assigned with a Worst-Fit-Decreasing heuristic: the resource
with the highest utilization goes to the least-loaded processor of the
cluster with the largest utilization slack.  If some task's WCRT bound
exceeds its deadline, it receives one additional processor (when available),
the resource assignment is rolled back, and the procedure repeats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ...model.platform import (
    Cluster,
    PartitionedSystem,
    Platform,
    minimal_federated_clusters,
)
from ...model.task import TaskSet
from ...obs.telemetry import active as _active_telemetry
from ..interfaces import SchedulabilityResult, TaskAnalysis, UNBOUNDED
from ..paths import PathEnumerator
from .wcrt import DEFAULT_ENGINE, ENGINE_KERNEL, MODE_EN, MODE_EP, analyze_taskset


@dataclass
class WfdOutcome:
    """Result of the WFD resource-assignment pass (Algorithm 2)."""

    feasible: bool
    assignment: Dict[int, int]
    reason: str = ""


def wfd_assign_resources(
    taskset: TaskSet, clusters: Dict[int, Cluster]
) -> WfdOutcome:
    """Algorithm 2: Worst-Fit-Decreasing assignment of global resources.

    Global resources are sorted by non-increasing utilization
    :math:`u^\\Phi_q`; each is placed on the least-loaded processor of the
    cluster with the maximum utilization slack.  The assignment is infeasible
    when the chosen cluster would exceed its capacity.
    """
    utilizations = {
        rid: taskset.resource_utilization(rid) for rid in taskset.global_resources()
    }
    resources = sorted(utilizations, key=lambda rid: utilizations[rid], reverse=True)
    capacity: Dict[int, float] = {tid: float(c.size) for tid, c in clusters.items()}
    usage: Dict[int, float] = {
        tid: taskset.task(tid).utilization for tid in clusters
    }
    processor_load: Dict[int, float] = {
        proc: 0.0 for cluster in clusters.values() for proc in cluster.processors
    }
    assignment: Dict[int, int] = {}

    for rid in resources:
        utilization = utilizations[rid]
        best_cluster = max(
            clusters, key=lambda tid: (capacity[tid] - usage[tid], -tid)
        )
        if usage[best_cluster] + utilization > capacity[best_cluster] + 1e-9:
            return WfdOutcome(
                feasible=False,
                assignment={},
                reason=(
                    f"resource {rid} (u={utilization:.3f}) does not fit in any "
                    "cluster's utilization slack"
                ),
            )
        target = min(
            clusters[best_cluster].processors, key=lambda p: (processor_load[p], p)
        )
        assignment[rid] = target
        usage[best_cluster] += utilization
        processor_load[target] += utilization
    return WfdOutcome(feasible=True, assignment=assignment)


def partition_and_analyze(
    taskset: TaskSet,
    platform: Platform,
    mode: str = MODE_EP,
    enumerator: Optional[PathEnumerator] = None,
    protocol_name: str = "DPCP-p",
    engine: str = DEFAULT_ENGINE,
) -> SchedulabilityResult:
    """Algorithm 1: iterative task/resource partitioning plus analysis.

    Returns the full schedulability verdict including the final partition and
    per-task WCRT bounds.
    """
    name = f"{protocol_name}-{mode}"
    clusters = minimal_federated_clusters(taskset, platform)
    if clusters is None:
        return SchedulabilityResult(
            schedulable=False,
            protocol=name,
            reason="not enough processors for the minimal federated assignment",
        )
    enumerator = enumerator or PathEnumerator()
    static_cache = None
    if engine == ENGINE_KERNEL:
        from .kernel import KernelStaticCache

        static_cache = KernelStaticCache()

    while True:
        tel = _active_telemetry()
        if tel is not None:
            # Inline span + counter bump: a Telemetry.span contextmanager
            # costs ~1.7µs per pass and the method-call API ~1µs, visible
            # slices of the ≤2% kernel overhead budget.
            counters = tel.counters
            counters["partition.wfd_passes"] = (
                counters.get("partition.wfd_passes", 0) + 1
            )
            perf_counter = time.perf_counter
            started = perf_counter()
            wfd = wfd_assign_resources(taskset, clusters)
            tel.observe("phase.partition", perf_counter() - started)
        else:
            wfd = wfd_assign_resources(taskset, clusters)
        if not wfd.feasible:
            return SchedulabilityResult(
                schedulable=False,
                protocol=name,
                reason=f"WFD resource assignment infeasible: {wfd.reason}",
            )
        partition = PartitionedSystem(taskset, platform, clusters, wfd.assignment)
        analyses = analyze_taskset(
            taskset,
            partition,
            mode=mode,
            enumerator=enumerator,
            engine=engine,
            static_cache=static_cache,
        )

        failing = _first_failing_task(taskset, analyses)
        if failing is None:
            return SchedulabilityResult(
                schedulable=True,
                protocol=name,
                task_analyses=analyses,
                partition=partition,
            )

        unassigned = partition.unassigned_processors()
        if not unassigned:
            return SchedulabilityResult(
                schedulable=False,
                protocol=name,
                task_analyses=analyses,
                partition=partition,
                reason=(
                    f"task {failing} misses its deadline and no spare processor "
                    "is available"
                ),
            )
        # Give one more processor to the failing task, roll back the resource
        # assignment (a fresh WFD pass runs at the top of the loop), and retry.
        clusters[failing].processors.append(unassigned[0])


def _first_failing_task(
    taskset: TaskSet, analyses: Dict[int, TaskAnalysis]
) -> Optional[int]:
    """First task, in decreasing priority order, whose WCRT exceeds its deadline."""
    for task in taskset.by_priority(descending=True):
        analysis = analyses.get(task.task_id)
        if analysis is None or analysis.wcrt == UNBOUNDED or not analysis.schedulable:
            return task.task_id
    return None
