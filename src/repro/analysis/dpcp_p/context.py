"""Shared context for the DPCP-p worst-case response-time analysis.

The context bundles the task set, the concrete task/resource partition, and
the response-time bounds known so far (tasks are analysed in decreasing
priority order; for tasks whose bound is not yet known the deadline is used,
which is consistent whenever the final verdict is "schedulable").  It exposes
the quantities that recur throughout Sec. IV:

* :math:`\\eta_j(L)` — released-job bound of a task over an interval,
* :math:`\\gamma_{i,q}(L)` — higher-priority request workload co-located with
  a resource (Eq. (2)),
* :math:`\\beta_{i,q}` — the single longest lower-priority critical section
  that can block a request under the priority-ceiling rule (Lemma 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from ...model.platform import PartitionedSystem
from ...model.task import DAGTask, TaskSet
from ..rta import ceil_div_jobs


class DpcpPContext:
    """Analysis context tying together task set, partition, and known WCRTs."""

    def __init__(
        self,
        taskset: TaskSet,
        partition: PartitionedSystem,
        response_times: Optional[Mapping[int, float]] = None,
    ) -> None:
        self.taskset = taskset
        self.partition = partition
        self.response_times: Dict[int, float] = dict(response_times or {})
        self._kernel = None

    @property
    def kernel(self):
        """The vectorized analysis kernel for this (taskset, partition).

        Built lazily on first access (or attached via :meth:`attach_kernel`)
        and cached; the carried-in response-time bounds are re-synced from
        :attr:`response_times` on every access, so direct mutation of that
        dict between per-task analyses is safe.
        """
        if self._kernel is None:
            from .kernel import DpcpPKernel

            self._kernel = DpcpPKernel(self.taskset, self.partition)
        self._kernel.sync_response_times(self.response_times)
        return self._kernel

    def attach_kernel(self, kernel) -> None:
        """Use ``kernel`` (e.g. one sharing a static cache) for this context.

        The kernel must have been built for this context's taskset and
        partition; response times are still synced on every access.
        """
        if kernel.taskset is not self.taskset or kernel.partition is not self.partition:
            raise ValueError("kernel was built for a different taskset/partition")
        self._kernel = kernel

    # ------------------------------------------------------------------ #
    # Generic task quantities
    # ------------------------------------------------------------------ #
    def carried_response_time(self, task: DAGTask) -> float:
        """R_j used inside η_j: the known bound, or the deadline as a fallback."""
        return self.response_times.get(task.task_id, task.deadline)

    def eta(self, task: DAGTask, interval: float) -> int:
        """:math:`\\eta_j(L) \\le \\lceil (L + R_j)/T_j \\rceil` — job-release bound."""
        return ceil_div_jobs(interval, task.period, self.carried_response_time(task))

    def other_tasks(self, task: DAGTask) -> List[DAGTask]:
        """All tasks except ``task``."""
        return [t for t in self.taskset if t.task_id != task.task_id]

    # ------------------------------------------------------------------ #
    # Resource placement shortcuts
    # ------------------------------------------------------------------ #
    def global_resources(self) -> List[int]:
        """Ids of global resources, :math:`\\Phi^G`."""
        return self.taskset.global_resources()

    def resources_on_processor(self, processor: int) -> List[int]:
        """Global resources hosted on ``processor`` (:math:`\\Phi(\\wp_k)`)."""
        return self.partition.resources_on_processor(processor)

    def co_located_resources(self, resource_id: int) -> List[int]:
        """Global resources on the same processor as ``resource_id``."""
        return self.partition.co_located_resources(resource_id)

    def resources_on_cluster(self, task: DAGTask) -> List[int]:
        """Global resources hosted on the task's own cluster, :math:`\\Phi^\\wp(\\tau_i)`."""
        return self.partition.resources_on_cluster(task.task_id)

    def cluster_size(self, task: DAGTask) -> int:
        """:math:`m_i` — processors assigned to the task."""
        return self.partition.num_processors_of(task.task_id)

    # ------------------------------------------------------------------ #
    # Priority-ceiling quantities (Sec. III-C / Sec. IV-B)
    # ------------------------------------------------------------------ #
    def resource_ceiling(self, resource_id: int) -> int:
        """Priority ceiling of a global resource (max base priority of its users)."""
        return self.taskset.resource_ceiling(resource_id)

    def gamma(self, task: DAGTask, resource_id: int, interval: float) -> float:
        """Eq. (2): higher-priority request workload co-located with ``resource_id``.

        Sums, over every higher-priority task :math:`\\tau_h` and every global
        resource :math:`\\ell_u` on the same processor as :math:`\\ell_q`, the
        workload :math:`\\eta_h(L) N_{h,u} L_{h,u}`.
        """
        co_located = self.co_located_resources(resource_id)
        total = 0.0
        for other in self.taskset.higher_priority_tasks(task):
            released = self.eta(other, interval)
            if released == 0:
                continue
            for rid in co_located:
                total += released * other.request_count(rid) * other.cs_length(rid)
        return total

    def beta(self, task: DAGTask, resource_id: int) -> float:
        """Lemma 2's :math:`\\beta_{i,q}`: longest blocking lower-priority CS.

        The priority-ceiling rule admits at most one lower-priority request,
        and only if it holds a co-located resource whose ceiling is at least
        the requesting task's priority.
        """
        co_located = self.co_located_resources(resource_id)
        longest = 0.0
        for other in self.taskset.lower_priority_tasks(task):
            for rid in co_located:
                if other.request_count(rid) == 0:
                    continue
                if self.resource_ceiling(rid) >= task.priority:
                    longest = max(longest, other.cs_length(rid))
        return longest

    # ------------------------------------------------------------------ #
    # Request workload helpers
    # ------------------------------------------------------------------ #
    def other_task_request_workload(
        self, task: DAGTask, resource_ids: Iterable[int], interval: float
    ) -> float:
        """Workload of *all other* tasks' requests to ``resource_ids`` within ``interval``.

        This is the :math:`\\zeta` / :math:`I^A` style bound
        :math:`\\sum_{j \\ne i} \\eta_j(L) N_{j,q} L_{j,q}` summed over the
        given resources.
        """
        resource_ids = list(resource_ids)
        total = 0.0
        for other in self.other_tasks(task):
            released = self.eta(other, interval)
            if released == 0:
                continue
            for rid in resource_ids:
                total += released * other.request_count(rid) * other.cs_length(rid)
        return total

    def own_offpath_cs_workload(
        self, task: DAGTask, resource_ids: Iterable[int], n_lambda: Mapping[int, int]
    ) -> float:
        """Intra-task request workload not on the analysed path.

        :math:`\\sum_{\\ell_u} (N_{i,u} - N^\\lambda_{i,u}) L_{i,u}` over the
        given resources.
        """
        total = 0.0
        for rid in resource_ids:
            count = task.request_count(rid)
            if count == 0:
                continue
            off_path = count - n_lambda.get(rid, 0)
            total += max(0, off_path) * task.cs_length(rid)
        return total
