"""Vectorized analysis kernel for the DPCP-p WCRT bounds.

The straight-line analysis (:mod:`.context`, :mod:`.blocking`,
:mod:`.interference`, retained as the reference oracle) re-walks pure-Python
loops over tasks × processors × resources on *every* fixed-point iteration of
Theorem 1 and Lemma 2.  This module compiles, once per
``(taskset, partition)``, the interval-independent coefficients those
recurrences reuse:

* ``W[j, k]`` — request workload :math:`\\sum_{\\ell_u \\in \\Phi(\\wp_k)}
  N_{j,u} L_{j,u}` of task :math:`\\tau_j` on processor :math:`\\wp_k`.  With
  the released-job vector :math:`\\eta(L)`, Eq. (2)'s :math:`\\gamma` and the
  :math:`\\zeta` / agent-interference workloads all reduce to one masked
  dot product per fixed-point iteration instead of nested loops.
* ``beta[i, k]`` — Lemma 2's longest lower-priority blocking critical
  section, which depends only on the requesting task's priority and the
  hosting processor.

The task-static data (request vectors, per-vertex non-critical WCETs,
critical path lengths, η parameters) and the fixed-point solvers are **not**
DPCP-p specific: they live in the protocol-agnostic
:mod:`repro.analysis.engine` layer (:class:`~repro.analysis.engine.tables.CompiledTaskset`
/ :func:`~repro.analysis.engine.solver.solve_batched` /
:func:`~repro.analysis.engine.solver.solve_scalar`), shared with the SPIN and
LPP baseline kernels and across every protocol analysing the same task set.
This module adds only the partition-dependent coefficients (per-task
:class:`_TaskLane` slices) and the DPCP-p lemma structure on top.

Two execution strategies share the coefficients:

* a **batched NumPy path** that solves Lemma 2 for every
  ``(path profile, resource)`` pair of a task simultaneously and Theorem 1
  for every path profile simultaneously, iterating only the entries that
  have neither converged nor diverged — this is what makes wide-DAG EP
  analyses (thousands of path signatures) cheap; and
* a **scalar path** over the same precomputed coefficient tables (plain
  Python floats, sparse ``(task, weight)`` columns) for small batches, where
  NumPy dispatch overhead would dominate: the EN analysis and tasks with few
  path signatures.

Per-profile bounds match the reference implementation up to floating-point
summation order (observed well below 1e-12 relative on randomized systems).
The kernel assumes (like the reference analysis) that profiles passed to it
were derived from the task itself, i.e. their request counts only cover
resources the task uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...model.dag import PathProfile
from ...model.platform import PartitionedSystem
from ...model.task import DAGTask, TaskSet
from ..engine.solver import (
    ETA_GUARD,
    NO_CONVERGENCE,
    solve_batched,
    solve_scalar,
    warn_no_convergence,
)
from ..engine.tables import CompiledTask, CompiledTaskset, compile_taskset
from ..paths import PathEnumerationResult

#: Profile batches at least this large use the batched NumPy fixed-point
#: solver; smaller batches use the scalar path over the same coefficients.
BATCH_CUTOFF = 48

_ceil = math.ceil
_inf = math.inf


class KernelStaticCache:
    """Holds the shared task-static tables across partition retries.

    Algorithm 1 re-partitions and re-analyses the same task set until it
    converges; the per-vertex and per-resource task data never changes in
    that loop, so :func:`~repro.analysis.dpcp_p.partition.partition_and_analyze`
    threads one cache instance through every kernel it builds.

    Since PR 3 the static data itself is the protocol-agnostic
    :class:`~repro.analysis.engine.tables.CompiledTaskset` (also shared with
    the SPIN/LPP kernels and across protocols of a campaign work unit); this
    class remains as the explicit retry-sharing handle of the DPCP-p API.
    """

    def __init__(self) -> None:
        self.owner: Optional[TaskSet] = None
        self.tables: Optional[CompiledTaskset] = None

    @property
    def lanes(self) -> Dict[int, CompiledTask]:
        """Task-static tables compiled so far (task id → tables)."""
        return self.tables.task_tables if self.tables is not None else {}


@dataclass
class _TaskLane:
    """Per-task kernel slice: static tables plus partition-dependent coefficients."""

    index: int
    static: CompiledTask
    m_i: float
    cluster_proc_list: List[int]
    w_cluster_list: List[float]    # per-task request workload on this cluster
    g_proc_list: List[int]         # hosting processor per used global resource
    beta_list: List[float]         # beta[i, proc(q)]
    use_procs: List[int]           # distinct processors hosting resources the task uses
    cluster_use_procs: List[int]   # use_procs inside the task's own cluster
    full_off: Dict[int, float]     # per-processor own workload with an empty path
    # Scalar coefficient tables: sparse (task index, weight) columns.
    hp_cols: Dict[int, List[Tuple[int, float]]]     # per used proc: higher-prio W column
    other_cols: Dict[int, List[Tuple[int, float]]]  # per used proc: other-task W column
    wcl_col: List[Tuple[int, float]]                # other-task cluster workload
    g_by_proc: Dict[int, List[Tuple[int, float, float]]]  # per proc: (rid, N, L)
    # NumPy views, materialized lazily by the batched path only.
    hp: Optional[np.ndarray] = field(repr=False, default=None)
    other: Optional[np.ndarray] = field(repr=False, default=None)
    w_cluster: Optional[np.ndarray] = field(repr=False, default=None)
    cluster_procs: Optional[np.ndarray] = field(repr=False, default=None)
    g_proc: Optional[np.ndarray] = field(repr=False, default=None)
    beta_arr: Optional[np.ndarray] = field(repr=False, default=None)


class DpcpPKernel:
    """Precomputed DPCP-p analysis coefficients for one (taskset, partition).

    Build once per partition outcome (optionally sharing a
    :class:`KernelStaticCache` across Algorithm 1 retries), then call
    :meth:`task_wcrt_ep` / :meth:`task_wcrt_en` per task after
    :meth:`sync_response_times` with the carried-in bounds — which
    :class:`.context.DpcpPContext` does automatically on access.
    """

    def __init__(
        self,
        taskset: TaskSet,
        partition: PartitionedSystem,
        static_cache: Optional[KernelStaticCache] = None,
    ) -> None:
        self.taskset = taskset
        self.partition = partition
        self._static = static_cache or KernelStaticCache()
        if self._static.owner is not None and self._static.owner is not taskset:
            raise ValueError(
                "KernelStaticCache was populated for a different task set; "
                "use one cache per task set"
            )
        self._static.owner = taskset
        if self._static.tables is None:
            self._static.tables = compile_taskset(taskset)
        tables = self._static.tables
        self.tables = tables
        self._tasks = tables.tasks
        self._index = tables.index
        self._periods = tables.periods
        self._periods_list = tables.periods_list
        self._prios = tables.prios
        self._prios_list = tables.prios_list
        self._usages = tables.usages
        # The carried-in η bounds live in the shared tables (synced in place,
        # so these references stay valid); reset them to the deadlines so a
        # freshly built kernel behaves like one built from scratch.
        tables.sync_response_times({})
        self._carried = tables.carried
        self._carried_list = tables.carried_list

        n = len(self._tasks)
        m = partition.platform.num_processors
        self._num_procs = m

        # Per-processor request-workload coefficients and beta values,
        # folded one resource column at a time.  Bit-identity with the
        # per-cell Python loop this replaces: within one resource every task
        # index appears once (no accumulation-order ambiguity inside the
        # fancy-indexed add), resources fold in assignment order as before,
        # and beta is a running maximum — order-independent by construction.
        assignment = partition.resource_assignment
        count = len(assignment)
        procs = np.empty(count, dtype=np.intp)
        work_rows = np.empty((count, n))
        beta_rows = np.empty((count, n))
        for row, (rid, proc) in enumerate(assignment.items()):
            work_row, beta_row = tables.fold_rows(rid)
            procs[row] = proc
            work_rows[row] = work_row
            beta_rows[row] = beta_row
        W_t = np.zeros((m, n))
        np.add.at(W_t, procs, work_rows)
        beta_t = np.zeros((m, n))
        np.maximum.at(beta_t, procs, beta_rows)
        W = np.ascontiguousarray(W_t.T)
        beta = beta_t.T
        self._W_list = W.tolist()
        self._beta_list = beta.tolist()
        self._active_proc_list = sorted(
            {proc for proc in partition.resource_assignment.values()}
        )
        self._local_resources = tables.local_resources
        self._lanes: Dict[int, _TaskLane] = {}
        # NumPy coefficient views; the active-processor slice is cut lazily
        # by the batched path.
        self._W_np: np.ndarray = W
        self._W_active: Optional[np.ndarray] = None
        self._active_procs: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # Carried-in response times (the only mutable analysis state)
    # ------------------------------------------------------------------ #
    def sync_response_times(self, response_times) -> None:
        """Refresh the carried-in :math:`R_j` bounds used inside η_j."""
        self.tables.sync_response_times(response_times)

    # ------------------------------------------------------------------ #
    # Per-task lanes
    # ------------------------------------------------------------------ #
    def _lane(self, task: DAGTask) -> _TaskLane:
        lane = self._lanes.get(task.task_id)
        if lane is not None:
            return lane
        static = self.tables.table(task)
        i = self._index[task.task_id]
        n = len(self._tasks)
        W = self._W_list
        prios = self._prios_list
        prio_i = prios[i]
        cluster_proc_list = self.partition.processors_of(task.task_id)
        w_cluster_list = [
            sum(W[j][k] for k in cluster_proc_list) for j in range(n)
        ]
        assignment = self.partition.resource_assignment
        g_proc_list = [assignment[r] for r in static.ugr]
        use_procs = sorted(set(g_proc_list))
        cluster_set = set(cluster_proc_list)
        beta_row = self._beta_list[i]
        hp_cols = {
            k: [(j, W[j][k]) for j in range(n) if prios[j] > prio_i and W[j][k] != 0.0]
            for k in use_procs
        }
        other_cols = {
            k: [(j, W[j][k]) for j in range(n) if j != i and W[j][k] != 0.0]
            for k in use_procs
        }
        wcl_col = [
            (j, w_cluster_list[j])
            for j in range(n)
            if j != i and w_cluster_list[j] != 0.0
        ]
        g_by_proc: Dict[int, List[Tuple[int, float, float]]] = {k: [] for k in use_procs}
        full_off = {k: 0.0 for k in use_procs}
        for rid, count, cs, k in zip(static.ugr, static.g_N, static.g_L, g_proc_list):
            g_by_proc[k].append((rid, count, cs))
            full_off[k] += count * cs
        lane = _TaskLane(
            index=i,
            static=static,
            m_i=float(len(cluster_proc_list)),
            cluster_proc_list=cluster_proc_list,
            w_cluster_list=w_cluster_list,
            g_proc_list=g_proc_list,
            beta_list=[beta_row[k] for k in g_proc_list],
            use_procs=use_procs,
            cluster_use_procs=[k for k in use_procs if k in cluster_set],
            full_off=full_off,
            hp_cols=hp_cols,
            other_cols=other_cols,
            wcl_col=wcl_col,
            g_by_proc=g_by_proc,
        )
        self._lanes[task.task_id] = lane
        return lane

    def _ensure_batched_arrays(self, lane: _TaskLane) -> None:
        """Materialize the NumPy views the batched path needs."""
        if self._W_active is None:
            self._active_procs = np.array(self._active_proc_list, dtype=np.intp)
            self._W_active = np.ascontiguousarray(self._W_np[:, self._active_procs])
        if lane.hp is None:
            n = len(self._tasks)
            lane.hp = (self._prios > self._prios[lane.index]).astype(float)
            lane.other = (np.arange(n) != lane.index).astype(float)
            lane.w_cluster = np.array(lane.w_cluster_list)
            lane.cluster_procs = np.array(lane.cluster_proc_list, dtype=np.intp)
            lane.g_proc = np.array(lane.g_proc_list, dtype=np.intp)
            lane.beta_arr = np.array(lane.beta_list)
        lane.static.ensure_arrays()

    # ------------------------------------------------------------------ #
    # Scalar path (small batches: EN, and tasks with few path signatures)
    # ------------------------------------------------------------------ #
    # Fixed points are delegated to engine.solver.solve_scalar; the closures
    # below only evaluate the recurrences over the sparse coefficient columns.

    def _window_scalar(
        self, lane: _TaskLane, const: float, proc: int, bound: float
    ) -> float:
        """Lemma 2's W = const + γ(W); returns γ at the solved window.

        Only γ(window) is needed downstream (Lemma 3's per-request view);
        ``inf`` signals a diverged window.
        """
        col = lane.hp_cols[proc]
        if not col:
            return 0.0 if const <= bound else _inf
        carried = self._carried_list
        periods = self._periods_list

        def recurrence(cur: float) -> float:
            gamma = 0.0
            for j, w in col:
                e = _ceil((cur + carried[j]) / periods[j] - ETA_GUARD)
                if e > 0:
                    gamma += e * w
            return const + gamma

        solved, status = solve_scalar(recurrence, const, bound)
        if solved is None:
            if status == NO_CONVERGENCE:
                warn_no_convergence(1, bound)
            return _inf
        # γ evaluated at the converged window (what Lemma 3 multiplies).
        total = 0.0
        for j, w in col:
            e = _ceil((solved + carried[j]) / periods[j] - ETA_GUARD)
            if e > 0:
                total += e * w
        return total

    def _theorem1_scalar(
        self,
        lane: _TaskLane,
        length: float,
        eps: Dict[int, float],
        intra_block: float,
        intra_interf: float,
        own_off_cluster: float,
        bound: float,
    ) -> float:
        """Theorem 1's fixed point for one profile via the coefficient tables."""
        m_i = lane.m_i
        fixed = length + intra_block + (intra_interf + own_off_cluster) / m_i
        start = length + intra_block + intra_interf / m_i
        # min(0, ζ) = 0: only processors with a positive ε can contribute.
        eps_cols = [
            (value, lane.other_cols[k]) for k, value in eps.items() if value > 0.0
        ]
        wcl = lane.wcl_col
        carried = self._carried_list
        periods = self._periods_list

        def recurrence(cur: float) -> float:
            etas: Dict[int, int] = {}
            blocking = 0.0
            for value, col in eps_cols:
                zeta = 0.0
                for j, w in col:
                    e = etas.get(j)
                    if e is None:
                        e = _ceil((cur + carried[j]) / periods[j] - ETA_GUARD)
                        if e < 0:
                            e = 0
                        etas[j] = e
                    zeta += e * w
                blocking += zeta if zeta < value else value
            agents = 0.0
            for j, w in wcl:
                e = etas.get(j)
                if e is None:
                    e = _ceil((cur + carried[j]) / periods[j] - ETA_GUARD)
                    if e < 0:
                        e = 0
                agents += e * w
            return fixed + blocking + agents / m_i

        solved, status = solve_scalar(recurrence, start, bound)
        if solved is None:
            if status == NO_CONVERGENCE:
                warn_no_convergence(1, bound)
            return _inf
        return solved

    def _profile_wcrt_scalar(
        self, lane: _TaskLane, profile: PathProfile, bound: float
    ) -> float:
        """One concrete path profile through the scalar fast path."""
        static = lane.static
        requests = profile.requests

        # Own off-path workload per used processor (Eq. (3) intra term).
        off: Dict[int, float] = {}
        sigma: Dict[int, bool] = {}
        for k, entries in lane.g_by_proc.items():
            total = 0.0
            requested = False
            for rid, count, cs in entries:
                on_path = requests.get(rid, 0)
                if on_path > 0:
                    requested = True
                gap = count - on_path
                if gap > 0:
                    total += gap * cs
            off[k] = total
            sigma[k] = requested

        # Lemma 2 windows and Lemma 3's per-request view ε.
        eps: Dict[int, float] = {}
        for g, rid in enumerate(static.ugr):
            n_path = requests.get(rid, 0)
            if n_path <= 0:
                continue
            k = lane.g_proc_list[g]
            beta = lane.beta_list[g]
            gamma = self._window_scalar(lane, static.g_L[g] + off[k] + beta, k, bound)
            eps[k] = eps.get(k, 0.0) + n_path * (beta + gamma)

        # Lemma 4: intra-task blocking.
        intra_block = 0.0
        for rid, count, cs in zip(static.lres, static.l_N, static.l_L):
            n_path = requests.get(rid, 0)
            if n_path > 0:
                intra_block += (count - n_path) * cs
        for k in lane.use_procs:
            if sigma[k]:
                intra_block += off[k]

        # Lemma 5: intra-task interference.
        noncrit = static.noncrit
        onpath = 0.0
        for v in profile.vertices:
            onpath += noncrit[v]
        local_offpath = 0.0
        for rid, count, cs in zip(static.lres, static.l_N, static.l_L):
            gap = count - requests.get(rid, 0)
            if gap > 0:
                local_offpath += gap * cs
        intra_interf = (static.total_noncrit - onpath) + local_offpath

        own_off_cluster = sum(off[k] for k in lane.cluster_use_procs)
        return self._theorem1_scalar(
            lane,
            profile.length,
            eps,
            intra_block,
            intra_interf,
            own_off_cluster,
            bound,
        )

    def _task_wcrt_en_scalar(self, lane: _TaskLane, bound: float) -> float:
        """EN-style bound through the scalar fast path."""
        static = lane.static
        # Windows use an empty path (maximal off-path workload), the blocking
        # multiplier uses the full request counts — each term at its worst.
        eps: Dict[int, float] = {}
        for g, rid in enumerate(static.ugr):
            k = lane.g_proc_list[g]
            beta = lane.beta_list[g]
            gamma = self._window_scalar(
                lane, static.g_L[g] + lane.full_off[k] + beta, k, bound
            )
            eps[k] = eps.get(k, 0.0) + static.g_N[g] * (beta + gamma)
        intra_block = static.en_local_block + sum(
            lane.full_off[k] for k in lane.use_procs
        )
        intra_interf = max(0.0, static.wcet - static.crit_len)
        return self._theorem1_scalar(
            lane, static.crit_len, eps, intra_block, intra_interf, 0.0, bound
        )

    # ------------------------------------------------------------------ #
    # Batched NumPy path (large profile batches)
    # ------------------------------------------------------------------ #
    def _eta(self, intervals: np.ndarray) -> np.ndarray:
        """η_j(L) for every task (rows) over every interval (columns)."""
        return self.tables.eta_matrix(intervals)

    def _request_windows(
        self,
        lane: _TaskLane,
        off_w: np.ndarray,
        active: np.ndarray,
        bound: float,
    ) -> np.ndarray:
        """Solve W = L_{i,q} + offpath + β + γ(W) for active (profile, resource) pairs.

        Returns γ evaluated at the solved windows, shaped like ``active``
        (``inf`` where the window diverged, 0 where inactive) — the quantity
        Lemma 3's per-request view multiplies.
        """
        P, G = active.shape
        gamma = np.zeros((P, G))
        flat = np.flatnonzero(active.ravel())
        if flat.size == 0:
            return gamma
        p_idx, g_idx = np.unravel_index(flat, (P, G))
        kcols = lane.g_proc[g_idx]
        static = lane.static
        const = static.g_L_arr[g_idx] + off_w[p_idx, kcols] + lane.beta_arr[g_idx]
        w_hp = self._W_np[:, kcols] * lane.hp[:, None]  # (n, K)
        full = const.shape[0]

        def step(cur: np.ndarray, idx: np.ndarray) -> np.ndarray:
            eta = self._eta(cur)
            cols = w_hp if idx.size == full else w_hp[:, idx]
            return const[idx] + (eta * cols).sum(axis=0)

        solved = solve_batched(const, step, bound)
        finite = np.isfinite(solved)
        if finite.any():
            eta = self._eta(solved[finite])
            gamma[p_idx[finite], g_idx[finite]] = (eta * w_hp[:, finite]).sum(axis=0)
        gamma[p_idx[~finite], g_idx[~finite]] = _inf
        return gamma

    def _off_matrix(self, lane: _TaskLane, nlam_g: np.ndarray) -> np.ndarray:
        """Own off-path workload per (profile, processor): Eq. (3)'s intra term."""
        P = nlam_g.shape[0]
        static = lane.static
        off = np.zeros((P, self._num_procs))
        if static.ugr:
            diff = np.maximum(static.g_N_arr[None, :] - nlam_g, 0.0) * static.g_L_arr[None, :]
            for j, k in enumerate(lane.g_proc_list):
                off[:, k] += diff[:, j]
        return off

    def _epsilon(
        self, lane: _TaskLane, nlam_g: np.ndarray, gamma: np.ndarray
    ) -> np.ndarray:
        """Lemma 3's per-request view ε per (profile, processor)."""
        P = nlam_g.shape[0]
        eps = np.zeros((P, self._num_procs))
        if lane.static.ugr:
            contrib = np.where(
                nlam_g > 0, nlam_g * (lane.beta_arr[None, :] + gamma), 0.0
            )
            for j, k in enumerate(lane.g_proc_list):
                eps[:, k] += contrib[:, j]
        return eps

    def _theorem1_batched(
        self,
        lane: _TaskLane,
        lengths: np.ndarray,
        eps: np.ndarray,
        intra_block: np.ndarray,
        intra_interf: np.ndarray,
        own_off_cluster: np.ndarray,
        bound: float,
    ) -> np.ndarray:
        """Theorem 1's fixed point, batched over path profiles."""
        eps_active = eps[:, self._active_procs]
        m_i = lane.m_i
        fixed = lengths + intra_block + (intra_interf + own_off_cluster) / m_i
        start = lengths + intra_block + intra_interf / m_i

        def step(cur: np.ndarray, idx: np.ndarray) -> np.ndarray:
            eta = self._eta(cur)
            oth = eta * lane.other[:, None]  # (n, K)
            zeta = oth.T @ self._W_active    # (K, A)
            blocking = np.minimum(eps_active[idx], zeta).sum(axis=1)
            agents = oth.T @ lane.w_cluster  # (K,)
            return fixed[idx] + blocking + agents / m_i

        return solve_batched(start, step, bound)

    def _profile_bounds_batched(
        self, lane: _TaskLane, profiles: List[PathProfile], bound: float
    ) -> np.ndarray:
        """Theorem-1 bounds for a large batch of concrete path profiles."""
        self._ensure_batched_arrays(lane)
        static = lane.static
        P = len(profiles)
        G, Gl = len(static.ugr), len(static.lres)
        lengths = np.empty(P)
        nlam_g = np.zeros((P, G))
        nlam_l = np.zeros((P, Gl))
        onpath_noncrit = np.empty(P)
        noncrit = static.noncrit_arr
        for p, prof in enumerate(profiles):
            lengths[p] = prof.length
            req = prof.requests
            for j, rid in enumerate(static.ugr):
                nlam_g[p, j] = req.get(rid, 0)
            for j, rid in enumerate(static.lres):
                nlam_l[p, j] = req.get(rid, 0)
            idxs = np.fromiter(prof.vertices, dtype=np.intp, count=len(prof.vertices))
            onpath_noncrit[p] = noncrit[idxs].sum()

        off_w = self._off_matrix(lane, nlam_g)

        # Lemma 4: intra-task blocking.
        if Gl:
            local_block = (
                (static.l_N_arr[None, :] - nlam_l) * static.l_L_arr[None, :] * (nlam_l > 0)
            ).sum(axis=1)
            local_offpath = (
                np.maximum(static.l_N_arr[None, :] - nlam_l, 0.0) * static.l_L_arr[None, :]
            ).sum(axis=1)
        else:
            local_block = np.zeros(P)
            local_offpath = np.zeros(P)
        has_req = np.zeros((P, self._num_procs), dtype=bool)
        for j, k in enumerate(lane.g_proc_list):
            has_req[:, k] |= nlam_g[:, j] > 0
        intra_block = local_block + (off_w * has_req).sum(axis=1)

        # Lemma 5: intra-task interference.
        intra_interf = (static.total_noncrit - onpath_noncrit) + local_offpath

        # Lemma 6's own-agent term on the task's cluster.
        if lane.cluster_procs.size:
            own_off_cluster = off_w[:, lane.cluster_procs].sum(axis=1)
        else:
            own_off_cluster = np.zeros(P)

        # Lemma 2 windows and Lemma 3's per-request view.
        gamma = self._request_windows(lane, off_w, nlam_g > 0, bound)
        eps = self._epsilon(lane, nlam_g, gamma)

        return self._theorem1_batched(
            lane, lengths, eps, intra_block, intra_interf, own_off_cluster, bound
        )

    # ------------------------------------------------------------------ #
    # Public per-task bounds
    # ------------------------------------------------------------------ #
    def path_wcrt(
        self,
        task: DAGTask,
        profile: PathProfile,
        divergence_bound: Optional[float] = None,
    ) -> float:
        """WCRT bound of one concrete path (EP building block)."""
        if divergence_bound is None:
            divergence_bound = task.deadline
        lane = self._lane(task)
        return self._profile_wcrt_scalar(lane, profile, divergence_bound)

    def task_wcrt_ep(
        self,
        task: DAGTask,
        enumeration: PathEnumerationResult,
        divergence_bound: Optional[float] = None,
    ) -> float:
        """Eq. (1): maximum over the enumerated path profiles (EN fallback when truncated)."""
        if divergence_bound is None:
            divergence_bound = task.deadline
        lane = self._lane(task)
        profiles = enumeration.profiles
        worst = 0.0
        if len(profiles) >= BATCH_CUTOFF:
            bounds = self._profile_bounds_batched(lane, profiles, divergence_bound)
            if bounds.size:
                worst = float(bounds.max())
        else:
            for profile in profiles:
                worst = max(
                    worst, self._profile_wcrt_scalar(lane, profile, divergence_bound)
                )
                if math.isinf(worst):
                    break
        if math.isinf(worst):
            return _inf
        if not enumeration.exhaustive:
            worst = max(worst, self.task_wcrt_en(task, divergence_bound))
        return worst

    def task_wcrt_en(
        self, task: DAGTask, divergence_bound: Optional[float] = None
    ) -> float:
        """EN-style WCRT bound (path request counts as free variables)."""
        if divergence_bound is None:
            divergence_bound = task.deadline
        lane = self._lane(task)
        return self._task_wcrt_en_scalar(lane, divergence_bound)
