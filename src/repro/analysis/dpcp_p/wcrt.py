"""Worst-case response-time bounds for DPCP-p (Sec. IV, Theorem 1 and Eq. (1)).

Two analysis variants are provided:

* **EP** (:func:`task_wcrt_ep`) enumerates the complete paths of the task and
  evaluates Theorem 1 for each path with its exact per-resource request
  counts :math:`N^\\lambda_{i,q}`.
* **EN** (:func:`task_wcrt_en`) reasons about the longest path only and
  treats the request counts as free variables, bounding every term by its
  worst admissible value (the approach of the prior work [6], [11]); this is
  sound for every path and therefore also serves as the fallback when path
  enumeration is truncated.

Each bound can be computed by two interchangeable engines:

* ``engine="kernel"`` (default) — the vectorized
  :class:`~repro.analysis.dpcp_p.kernel.DpcpPKernel`, which precomputes the
  interval-independent coefficients once per ``(taskset, partition)`` and
  batches all fixed points of a task into elementwise NumPy iterations.
* ``engine="reference"`` — the original straight-line implementation built
  from :mod:`.context`, :mod:`.blocking` and :mod:`.interference`, kept as
  the correctness oracle the kernel is validated against.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from ...model.dag import PathProfile
from ...model.task import DAGTask, TaskSet
from ...model.platform import PartitionedSystem
from ..engine.solver import (
    DEFAULT_ENGINE,
    ENGINE_KERNEL,
    ENGINE_REFERENCE,
    check_engine as _check_engine,
)
from ..interfaces import TaskAnalysis
from ..paths import PathEnumerator
from ..rta import least_fixed_point
from .blocking import inter_task_blocking, intra_task_blocking, request_response_time
from .context import DpcpPContext
from .interference import (
    agent_interference,
    intra_task_interference,
    intra_task_interference_en,
)

#: Analysis modes.
MODE_EP = "EP"
MODE_EN = "EN"


def _theorem1_fixed_point(
    ctx: DpcpPContext,
    task: DAGTask,
    length: float,
    n_lambda: Mapping[int, int],
    intra_interference: float,
    intra_blocking: float,
    request_windows: Mapping[int, float],
    divergence_bound: float,
) -> float:
    """Evaluate Theorem 1 for one (possibly abstract) path.

    ``r = L(λ) + B_i(r) + b_i + (I_intra + I_A(r)) / m_i``; the response-time
    dependent terms are the inter-task blocking (via ζ) and the agent
    interference (via η_j).  Returns ``math.inf`` when no fixed point exists
    below ``divergence_bound``.
    """
    cluster_size = ctx.cluster_size(task)

    def recurrence(response: float) -> float:
        blocking = inter_task_blocking(
            ctx, task, n_lambda, response, request_windows
        )
        agents = agent_interference(ctx, task, n_lambda, response)
        return (
            length
            + blocking
            + intra_blocking
            + (intra_interference + agents) / cluster_size
        )

    start = length + intra_blocking + intra_interference / cluster_size
    solution = least_fixed_point(recurrence, start, divergence_bound)
    return solution if solution is not None else math.inf


def _path_wcrt_reference(
    ctx: DpcpPContext,
    task: DAGTask,
    profile: PathProfile,
    divergence_bound: float,
) -> float:
    """Reference (straight-line) WCRT bound of one concrete path."""
    n_lambda = profile.requests
    request_windows: Dict[int, float] = {}
    for rid, count in n_lambda.items():
        if count > 0 and ctx.taskset.is_global(rid):
            request_windows[rid] = request_response_time(
                ctx, task, rid, n_lambda, divergence_bound
            )
    intra_interf = intra_task_interference(ctx, task, profile)
    intra_block = intra_task_blocking(ctx, task, n_lambda)
    return _theorem1_fixed_point(
        ctx,
        task,
        profile.length,
        n_lambda,
        intra_interf,
        intra_block,
        request_windows,
        divergence_bound,
    )


def _task_wcrt_en_reference(
    ctx: DpcpPContext, task: DAGTask, divergence_bound: float
) -> float:
    """Reference (straight-line) EN-style WCRT bound."""
    # Path requests maximised: every request may lie on the path...
    n_lambda_full: Dict[int, int] = {
        rid: task.request_count(rid) for rid in task.used_resources()
    }
    # ...and, simultaneously, none of them may (for the terms that grow with
    # the off-path request count).  The decoupled bound uses whichever is
    # worse per term.
    n_lambda_empty: Dict[int, int] = {rid: 0 for rid in task.used_resources()}

    request_windows: Dict[int, float] = {}
    for rid in task.used_resources():
        if ctx.taskset.is_global(rid):
            request_windows[rid] = request_response_time(
                ctx, task, rid, n_lambda_empty, divergence_bound
            )

    intra_interf = intra_task_interference_en(task)

    # Intra-task blocking: local resources at N^λ = 1, globals at N^λ = 0 with
    # σ = 1 whenever the task uses any global resource on the processor.
    intra_block = 0.0
    for rid in ctx.taskset.local_resources():
        count = task.request_count(rid)
        if count >= 1:
            intra_block += (count - 1) * task.cs_length(rid)
    for processor in ctx.partition.platform.processors:
        resources = ctx.resources_on_processor(processor)
        if not resources:
            continue
        if any(task.request_count(rid) > 0 for rid in resources):
            intra_block += ctx.own_offpath_cs_workload(task, resources, n_lambda_empty)

    return _theorem1_fixed_point(
        ctx,
        task,
        task.critical_path_length,
        n_lambda_full,
        intra_interf,
        intra_block,
        request_windows,
        divergence_bound,
    )


def path_wcrt(
    ctx: DpcpPContext,
    task: DAGTask,
    profile: PathProfile,
    divergence_bound: Optional[float] = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """WCRT bound of one concrete path (EP building block)."""
    _check_engine(engine)
    if divergence_bound is None:
        divergence_bound = task.deadline
    if engine == ENGINE_KERNEL:
        return ctx.kernel.path_wcrt(task, profile, divergence_bound)
    return _path_wcrt_reference(ctx, task, profile, divergence_bound)


def task_wcrt_ep(
    ctx: DpcpPContext,
    task: DAGTask,
    enumerator: PathEnumerator,
    divergence_bound: Optional[float] = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Eq. (1): the task WCRT bound as the maximum over its complete paths.

    When the enumeration is truncated the EN bound is used as a sound
    over-approximation of the missing paths.
    """
    _check_engine(engine)
    if divergence_bound is None:
        divergence_bound = task.deadline
    enumeration = enumerator.enumerate(task)
    if engine == ENGINE_KERNEL:
        return ctx.kernel.task_wcrt_ep(task, enumeration, divergence_bound)
    worst = 0.0
    for profile in enumeration.profiles:
        bound = _path_wcrt_reference(ctx, task, profile, divergence_bound)
        worst = max(worst, bound)
        if math.isinf(worst):
            return worst
    if not enumeration.exhaustive:
        worst = max(worst, _task_wcrt_en_reference(ctx, task, divergence_bound))
    return worst


def task_wcrt_en(
    ctx: DpcpPContext,
    task: DAGTask,
    divergence_bound: Optional[float] = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """EN-style WCRT bound (request counts of the path as free variables).

    Every term of Theorem 1 is bounded by its worst admissible value over
    :math:`N^\\lambda_{i,q} \\in [0, N_{i,q}]`:

    * the path length by :math:`L^*_i`,
    * the per-request blocking multiplier by :math:`N_{i,q}` and the windows
      :math:`W_{i,q}` with the full intra-task request workload,
    * the intra-task blocking by :math:`(N_{i,q}-1) L_{i,q}` for local
      resources and the full request workload for co-located global ones,
    * the intra-task interference by :math:`C_i - L^*_i`, and
    * the own-agent interference by :math:`N_{i,q} L_{i,q}`.
    """
    _check_engine(engine)
    if divergence_bound is None:
        divergence_bound = task.deadline
    if engine == ENGINE_KERNEL:
        return ctx.kernel.task_wcrt_en(task, divergence_bound)
    return _task_wcrt_en_reference(ctx, task, divergence_bound)


def analyze_taskset(
    taskset: TaskSet,
    partition: PartitionedSystem,
    mode: str = MODE_EP,
    enumerator: Optional[PathEnumerator] = None,
    divergence_factor: float = 1.0,
    engine: str = DEFAULT_ENGINE,
    static_cache=None,
) -> Dict[int, TaskAnalysis]:
    """Analyse all tasks of a partitioned system under DPCP-p.

    Tasks are processed in decreasing priority order so that higher-priority
    response times feed the :math:`\\eta_j` bounds of lower-priority tasks;
    tasks whose bound is not yet available contribute with their deadline.

    Parameters
    ----------
    taskset, partition:
        The system under analysis.
    mode:
        ``"EP"`` (path enumeration) or ``"EN"`` (request-count enumeration).
    enumerator:
        Path enumerator to reuse across calls (EP mode only).
    divergence_factor:
        The fixed-point search is abandoned once the iterate exceeds
        ``divergence_factor * deadline``; values slightly above 1.0 report
        (finite) over-deadline bounds instead of ``inf``.
    engine:
        ``"kernel"`` (vectorized, default) or ``"reference"`` (straight-line
        oracle).
    static_cache:
        Optional :class:`~repro.analysis.dpcp_p.kernel.KernelStaticCache`
        shared across successive partition attempts (kernel engine only), so
        task-static coefficients are compiled once per task set instead of
        once per retry.
    """
    if mode not in (MODE_EP, MODE_EN):
        raise ValueError(f"unknown analysis mode {mode!r}")
    _check_engine(engine)
    enumerator = enumerator or PathEnumerator()
    ctx = DpcpPContext(taskset, partition)
    if engine == ENGINE_KERNEL and static_cache is not None:
        from .kernel import DpcpPKernel

        ctx.attach_kernel(DpcpPKernel(taskset, partition, static_cache))
    results: Dict[int, TaskAnalysis] = {}
    for task in taskset.by_priority(descending=True):
        bound = task.deadline * max(divergence_factor, 1.0)
        if mode == MODE_EP:
            wcrt = task_wcrt_ep(ctx, task, enumerator, bound, engine=engine)
        else:
            wcrt = task_wcrt_en(ctx, task, bound, engine=engine)
        results[task.task_id] = TaskAnalysis(
            task_id=task.task_id,
            wcrt=wcrt,
            deadline=task.deadline,
            processors=partition.num_processors_of(task.task_id),
        )
        ctx.response_times[task.task_id] = min(wcrt, task.deadline)
    return results
