"""Interference bounds for DPCP-p (Sec. IV-C, Lemmas 5–6)."""

from __future__ import annotations

from typing import Mapping

from ...model.dag import PathProfile
from ...model.task import DAGTask
from .context import DpcpPContext


def vertex_non_critical_wcet(task: DAGTask, vertex: int) -> float:
    """:math:`C'_{i,x}` — WCET of a vertex excluding its critical sections."""
    v = task.vertices[vertex]
    cs_time = sum(
        count * task.cs_length(rid) for rid, count in v.requests.items() if count > 0
    )
    return max(0.0, v.wcet - cs_time)


def intra_task_interference(
    ctx: DpcpPContext, task: DAGTask, profile: PathProfile
) -> float:
    """Lemma 5: intra-task interference :math:`I^{intra}_i` for a concrete path.

    Off-path vertices interfere with the path through their non-critical
    sections and their local-resource critical sections (global requests are
    accounted for as agent interference instead).
    """
    on_path = set(profile.vertices)
    off_path_non_critical = sum(
        vertex_non_critical_wcet(task, v.index)
        for v in task.vertices
        if v.index not in on_path
    )
    local_off_path = ctx.own_offpath_cs_workload(
        task, ctx.taskset.local_resources(), profile.requests
    )
    return off_path_non_critical + local_off_path


def intra_task_interference_en(task: DAGTask) -> float:
    """EN-style intra-task interference bound: :math:`C_i - L^*_i`.

    When the concrete path is unknown, the off-path workload (non-critical
    plus local critical sections) is bounded by the task's total WCET minus
    the longest-path length; this dominates Lemma 5 for every path.
    """
    return max(0.0, task.wcet - task.critical_path_length)


def agent_interference(
    ctx: DpcpPContext,
    task: DAGTask,
    n_lambda: Mapping[int, int],
    response_time: float,
) -> float:
    """Lemma 6: agent interference :math:`I^A_i` on the task's own cluster.

    For every global resource hosted on one of the task's processors, the
    agents execute (i) requests of other tasks released while the path is
    pending and (ii) requests of the task's own off-path vertices.
    """
    resources = ctx.resources_on_cluster(task)
    if not resources:
        return 0.0
    other = ctx.other_task_request_workload(task, resources, response_time)
    own_off_path = ctx.own_offpath_cs_workload(task, resources, n_lambda)
    return other + own_off_path
