"""Top-level schedulability tests for DPCP-p (EP and EN analysis variants)."""

from __future__ import annotations

from typing import Optional

from ...model.platform import Platform
from ...model.task import TaskSet
from ..interfaces import SchedulabilityResult, SchedulabilityTest
from ..paths import DEFAULT_MAX_PATHS, DEFAULT_MAX_SIGNATURES, PathEnumerator
from .partition import partition_and_analyze
from .wcrt import DEFAULT_ENGINE, MODE_EN, MODE_EP, _check_engine

#: Default cap on enumerated path signatures before the EP analysis falls
#: back to the EN bound (see DESIGN.md, "The EP path-signature cap").  The
#: sweep config, campaign CLI, and protocol factories all default to this
#: one constant — the enumerator's own default — so the serial API and the
#: CLI cannot silently diverge.
DEFAULT_MAX_PATH_SIGNATURES = DEFAULT_MAX_SIGNATURES


class DpcpPTest(SchedulabilityTest):
    """Schedulability test for DPCP-p under federated scheduling.

    Parameters
    ----------
    mode:
        ``"EP"`` — enumerate complete paths (the paper's tighter analysis), or
        ``"EN"`` — enumerate the number of path requests per resource, as in
        the prior local-execution analyses [6], [11].
    max_path_signatures:
        Cap on distinct path signatures per task before the EP analysis falls
        back to the EN bound for the remaining paths.
    max_paths:
        Cap on raw complete paths per task (the walk's historical budget,
        kept by the signature DP for cap-semantics parity).  Raise it for
        wide DAGs whose exponentially many paths collapse to few signatures —
        the DP's cost is bounded by signatures, not raw paths.
    engine:
        ``"kernel"`` (vectorized coefficients, default) or ``"reference"``
        (the straight-line oracle the kernel is validated against).
    """

    def __init__(
        self,
        mode: str = MODE_EP,
        max_path_signatures: int = DEFAULT_MAX_PATH_SIGNATURES,
        engine: str = DEFAULT_ENGINE,
        max_paths: int = DEFAULT_MAX_PATHS,
    ) -> None:
        if mode not in (MODE_EP, MODE_EN):
            raise ValueError(f"unknown DPCP-p analysis mode {mode!r}")
        _check_engine(engine)
        self.mode = mode
        self.engine = engine
        self.name = f"DPCP-p-{mode}"
        self._enumerator: Optional[PathEnumerator] = (
            PathEnumerator(max_signatures=max_path_signatures, max_paths=max_paths)
            if mode == MODE_EP
            else None
        )

    def test(self, taskset: TaskSet, platform: Platform) -> SchedulabilityResult:
        """Partition tasks and resources, then bound every task's WCRT."""
        enumerator = PathEnumerator(
            max_signatures=self._enumerator.max_signatures,
            max_paths=self._enumerator.max_paths,
        ) if self._enumerator else None
        return partition_and_analyze(
            taskset,
            platform,
            mode=self.mode,
            enumerator=enumerator,
            protocol_name="DPCP-p",
            engine=self.engine,
        )


class DpcpPEpTest(DpcpPTest):
    """DPCP-p with the path-enumeration (EP) analysis."""

    def __init__(
        self,
        max_path_signatures: int = DEFAULT_MAX_PATH_SIGNATURES,
        engine: str = DEFAULT_ENGINE,
        max_paths: int = DEFAULT_MAX_PATHS,
    ) -> None:
        super().__init__(
            mode=MODE_EP,
            max_path_signatures=max_path_signatures,
            engine=engine,
            max_paths=max_paths,
        )


class DpcpPEnTest(DpcpPTest):
    """DPCP-p with the request-count-enumeration (EN) analysis."""

    def __init__(self, engine: str = DEFAULT_ENGINE) -> None:
        super().__init__(mode=MODE_EN, engine=engine)
