"""Classic DPCP analysis for *sequential* tasks (Rajkumar et al. [16]).

The paper's Sec. VI sketches how DPCP-p coexists with light tasks: light
tasks are treated as sequential tasks under partitioned fixed-priority
scheduling and synchronise through the original Distributed Priority Ceiling
Protocol.  This module provides that substrate:

* a lightweight sequential-task model,
* worst-fit partitioning of tasks and global resources onto processors, and
* a response-time analysis with the DPCP's agent-based remote execution and
  priority-ceiling blocking (at most one lower-priority request per request).

It mirrors the structure of the DPCP-p analysis specialised to tasks whose
"DAG" is a single vertex executing on a single processor.

Two interchangeable engines compute the bounds, mirroring the protocol
baselines (:mod:`repro.analysis.spin`, :mod:`repro.analysis.lpp`):

* ``engine="kernel"`` (default) — :class:`SequentialDpcpKernel`, which
  compiles the static blocking/interference coefficients of every task
  (ceiling blocking, sparse higher-priority request columns, agent columns)
  once per system and solves the recurrences with the shared
  :func:`~repro.analysis.engine.solver.solve_scalar`;
* ``engine="reference"`` — the straight-line functions below, kept as the
  property-tested oracle (see
  ``tests/analysis/test_sequential_engine_equivalence.py``).

Unlike the DAG baselines there is no weak-keyed compile cache:
:class:`SequentialSystem` is a plain mutable dataclass, so the kernel is
compiled per :func:`analyze_sequential_system` call and its per-task lanes
are reused across the priority-ordered sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..engine.solver import (
    DEFAULT_ENGINE,
    ENGINE_KERNEL,
    ETA_GUARD,
    NO_CONVERGENCE,
    check_engine,
    solve_scalar,
    warn_no_convergence,
)
from ..rta import ceil_div_jobs, least_fixed_point

_ceil = math.ceil


class SequentialModelError(ValueError):
    """Raised for invalid sequential task system descriptions."""


@dataclass
class SequentialTask:
    """A sporadic sequential task using shared resources via the DPCP.

    Attributes
    ----------
    task_id:
        Unique identifier.
    wcet:
        Total WCET including critical sections (µs).
    period:
        Minimum inter-arrival time (µs).
    deadline:
        Relative deadline; defaults to the period.
    priority:
        Base priority (larger = higher).
    requests:
        ``resource id -> (count, cs_length)``.
    """

    task_id: int
    wcet: float
    period: float
    deadline: Optional[float] = None
    priority: int = 0
    requests: Dict[int, Tuple[int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.wcet <= 0 or self.period <= 0:
            raise SequentialModelError("WCET and period must be positive")
        if self.deadline is None:
            self.deadline = self.period
        if not 0 < self.deadline <= self.period:
            raise SequentialModelError("deadline must satisfy 0 < D <= T")
        cs_total = sum(count * length for count, length in self.requests.values())
        if cs_total > self.wcet + 1e-9:
            raise SequentialModelError("critical sections exceed the WCET")

    @property
    def utilization(self) -> float:
        """Task utilization C/T."""
        return self.wcet / self.period

    @property
    def non_critical_wcet(self) -> float:
        """WCET excluding all critical sections."""
        return self.wcet - sum(c * l for c, l in self.requests.values())

    def request_count(self, resource_id: int) -> int:
        """Number of requests issued to ``resource_id`` per job."""
        return self.requests.get(resource_id, (0, 0.0))[0]

    def cs_length(self, resource_id: int) -> float:
        """Maximum critical-section length on ``resource_id``."""
        return self.requests.get(resource_id, (0, 0.0))[1]


@dataclass
class SequentialSystem:
    """A partitioned sequential task system under the DPCP.

    Attributes
    ----------
    tasks:
        The sequential tasks.
    task_assignment:
        ``task id -> processor``.
    resource_assignment:
        ``global resource id -> processor`` (hosting the resource's agent).
    """

    tasks: List[SequentialTask]
    task_assignment: Dict[int, int]
    resource_assignment: Dict[int, int]

    def task(self, task_id: int) -> SequentialTask:
        """Look up a task by id."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise SequentialModelError(f"unknown task {task_id}")

    def tasks_on(self, processor: int) -> List[SequentialTask]:
        """Tasks assigned to ``processor``."""
        return [t for t in self.tasks if self.task_assignment[t.task_id] == processor]

    def resources_on(self, processor: int) -> List[int]:
        """Global resources hosted on ``processor``."""
        return sorted(
            rid for rid, proc in self.resource_assignment.items() if proc == processor
        )

    def co_located_resources(self, resource_id: int) -> List[int]:
        """Resources on the same processor as ``resource_id``."""
        return self.resources_on(self.resource_assignment[resource_id])

    def resource_ceiling(self, resource_id: int) -> int:
        """Highest base priority among the users of ``resource_id``."""
        users = [t for t in self.tasks if t.request_count(resource_id) > 0]
        if not users:
            raise SequentialModelError(f"resource {resource_id} has no users")
        return max(t.priority for t in users)


def partition_sequential_system(
    tasks: List[SequentialTask],
    num_processors: int,
    reserved_processors: int = 0,
) -> Optional[SequentialSystem]:
    """Worst-fit partition tasks and resources onto the available processors.

    ``reserved_processors`` marks processors unavailable to sequential tasks
    (e.g. processors already dedicated to heavy DAG tasks); resources may
    still be hosted on the remaining processors.  Returns ``None`` when a
    task does not fit anywhere.
    """
    available = list(range(reserved_processors, num_processors))
    if not available:
        return None
    load: Dict[int, float] = {p: 0.0 for p in available}
    task_assignment: Dict[int, int] = {}
    for task in sorted(tasks, key=lambda t: t.utilization, reverse=True):
        target = min(load, key=lambda p: (load[p], p))
        if load[target] + task.utilization > 1.0 + 1e-9:
            return None
        task_assignment[task.task_id] = target
        load[target] += task.utilization

    resource_users: Dict[int, List[SequentialTask]] = {}
    for task in tasks:
        for rid, (count, _) in task.requests.items():
            if count > 0:
                resource_users.setdefault(rid, []).append(task)
    global_resources = [rid for rid, users in resource_users.items() if len(users) > 1]

    resource_assignment: Dict[int, int] = {}
    resource_load: Dict[int, float] = {p: 0.0 for p in available}
    for rid in sorted(
        global_resources,
        key=lambda r: sum(
            t.request_count(r) * t.cs_length(r) / t.period for t in tasks
        ),
        reverse=True,
    ):
        utilization = sum(
            t.request_count(rid) * t.cs_length(rid) / t.period for t in tasks
        )
        target = min(available, key=lambda p: (load[p] + resource_load[p], p))
        resource_assignment[rid] = target
        resource_load[target] += utilization
    return SequentialSystem(list(tasks), task_assignment, resource_assignment)


# --------------------------------------------------------------------------- #
# Reference (straight-line) implementation — the property-tested oracle
# --------------------------------------------------------------------------- #
def _request_response_time(
    system: SequentialSystem,
    task: SequentialTask,
    resource_id: int,
    response_times: Mapping[int, float],
) -> float:
    """Response time of one global-resource request under the classic DPCP."""
    co_located = system.co_located_resources(resource_id)
    beta = 0.0
    for other in system.tasks:
        if other.priority >= task.priority:
            continue
        for rid in co_located:
            if other.request_count(rid) == 0:
                continue
            if system.resource_ceiling(rid) >= task.priority:
                beta = max(beta, other.cs_length(rid))

    def gamma(interval: float) -> float:
        total = 0.0
        for other in system.tasks:
            if other.priority <= task.priority or other.task_id == task.task_id:
                continue
            carried = response_times.get(other.task_id, other.deadline)
            released = ceil_div_jobs(interval, other.period, carried)
            for rid in co_located:
                total += released * other.request_count(rid) * other.cs_length(rid)
        return total

    constant = task.cs_length(resource_id) + beta

    def recurrence(window: float) -> float:
        return constant + gamma(window)

    solution = least_fixed_point(recurrence, constant, task.deadline)
    return solution if solution is not None else math.inf


def sequential_dpcp_wcrt(
    system: SequentialSystem,
    task: SequentialTask,
    response_times: Optional[Mapping[int, float]] = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Response-time bound of a sequential task under the classic DPCP.

    ``engine`` selects the compiled kernel (default) or the straight-line
    reference oracle.  The kernel path compiles the whole system for this
    one call — when bounding every task, use
    :func:`analyze_sequential_system` (or :meth:`SequentialDpcpKernel.wcrt`
    on a kernel you keep) so the compilation is shared.
    """
    check_engine(engine)
    if engine == ENGINE_KERNEL:
        return SequentialDpcpKernel(system).wcrt(task, dict(response_times or {}))
    return _sequential_dpcp_wcrt_reference(system, task, response_times)


def _sequential_dpcp_wcrt_reference(
    system: SequentialSystem,
    task: SequentialTask,
    response_times: Optional[Mapping[int, float]] = None,
) -> float:
    """Straight-line WCRT bound (the oracle behind ``engine="reference"``)."""
    response_times = dict(response_times or {})
    processor = system.task_assignment[task.task_id]

    request_blocking = 0.0
    for rid, (count, _) in task.requests.items():
        if count == 0 or rid not in system.resource_assignment:
            continue
        window = _request_response_time(system, task, rid, response_times)
        if math.isinf(window):
            return math.inf
        request_blocking += count * window

    def recurrence(response: float) -> float:
        # Higher-priority tasks on the same processor preempt the task's
        # non-critical execution.
        local_interference = 0.0
        for other in system.tasks_on(processor):
            if other.task_id == task.task_id or other.priority <= task.priority:
                continue
            carried = response_times.get(other.task_id, other.deadline)
            released = ceil_div_jobs(response, other.period, carried)
            local_interference += released * other.non_critical_wcet
        # Agents hosted on the task's processor execute other tasks' requests
        # with boosted priority and therefore also interfere.
        agent_interference = 0.0
        for rid in system.resources_on(processor):
            for other in system.tasks:
                if other.task_id == task.task_id:
                    continue
                carried = response_times.get(other.task_id, other.deadline)
                released = ceil_div_jobs(response, other.period, carried)
                agent_interference += (
                    released * other.request_count(rid) * other.cs_length(rid)
                )
        return (
            task.non_critical_wcet
            + request_blocking
            + local_interference
            + agent_interference
        )

    start = task.non_critical_wcet + request_blocking
    solution = least_fixed_point(recurrence, start, task.deadline)
    return solution if solution is not None else math.inf


def analyze_sequential_system(
    system: SequentialSystem, engine: str = DEFAULT_ENGINE
) -> Dict[int, float]:
    """Bound the WCRT of every task of a partitioned sequential system.

    Tasks are analysed in decreasing priority order; the returned mapping
    contains ``math.inf`` for tasks without a converging bound.  ``engine``
    selects the compiled kernel (default, compiled once for the whole
    sweep) or the straight-line reference oracle.
    """
    check_engine(engine)
    if engine == ENGINE_KERNEL:
        return SequentialDpcpKernel(system).analyze()
    response_times: Dict[int, float] = {}
    results: Dict[int, float] = {}
    for task in sorted(system.tasks, key=lambda t: t.priority, reverse=True):
        wcrt = _sequential_dpcp_wcrt_reference(system, task, response_times)
        results[task.task_id] = wcrt
        response_times[task.task_id] = min(wcrt, task.deadline)
    return results


# --------------------------------------------------------------------------- #
# Compiled kernel engine
# --------------------------------------------------------------------------- #
class _SequentialLane:
    """Per-task compiled classic-DPCP coefficients.

    Everything that does not depend on the carried-in response times is
    folded here once: the ceiling-blocking constant and sparse
    higher-priority request column of every global request, the local
    preemption column, and the agent-interference column of the task's
    processor.  Columns hold ``(task index, weight)`` pairs; at solve time
    each contributes ``eta_j(window) * weight``.
    """

    __slots__ = ("non_critical", "deadline", "requests", "local_col", "agent_col")

    def __init__(
        self, system: SequentialSystem, task: SequentialTask, index: Dict[int, int]
    ) -> None:
        self.non_critical = task.non_critical_wcet
        self.deadline = task.deadline
        processor = system.task_assignment[task.task_id]

        #: One entry per global request: ``(count, constant, column)`` where
        #: ``constant`` is L_{i,q} plus the ceiling-blocking term beta and
        #: ``column`` charges the co-located requests of higher-priority tasks.
        self.requests: List[Tuple[int, float, List[Tuple[int, float]]]] = []
        for rid, (count, _) in task.requests.items():
            if count == 0 or rid not in system.resource_assignment:
                continue
            co_located = system.co_located_resources(rid)
            beta = 0.0
            for other in system.tasks:
                if other.priority >= task.priority:
                    continue
                for co_rid in co_located:
                    if other.request_count(co_rid) == 0:
                        continue
                    if system.resource_ceiling(co_rid) >= task.priority:
                        beta = max(beta, other.cs_length(co_rid))
            column: List[Tuple[int, float]] = []
            for other in system.tasks:
                if other.priority <= task.priority or other.task_id == task.task_id:
                    continue
                weight = sum(
                    other.request_count(co_rid) * other.cs_length(co_rid)
                    for co_rid in co_located
                )
                if weight > 0.0:
                    column.append((index[other.task_id], weight))
            self.requests.append((count, task.cs_length(rid) + beta, column))

        #: Higher-priority tasks on the same processor preempt the task's
        #: non-critical execution.
        self.local_col: List[Tuple[int, float]] = []
        for other in system.tasks_on(processor):
            if other.task_id == task.task_id or other.priority <= task.priority:
                continue
            if other.non_critical_wcet > 0.0:
                self.local_col.append((index[other.task_id], other.non_critical_wcet))

        #: Agents hosted on the task's processor run other tasks' requests
        #: with boosted priority — every other task interferes through them.
        self.agent_col: List[Tuple[int, float]] = []
        hosted = system.resources_on(processor)
        for other in system.tasks:
            if other.task_id == task.task_id:
                continue
            weight = sum(
                other.request_count(rid) * other.cs_length(rid) for rid in hosted
            )
            if weight > 0.0:
                self.agent_col.append((index[other.task_id], weight))


class SequentialDpcpKernel:
    """Compiled classic-DPCP analysis over one :class:`SequentialSystem`.

    Matches :func:`sequential_dpcp_wcrt` bound-for-bound (property-tested
    to 1e-9 — see ``tests/analysis/test_sequential_engine_equivalence.py``).
    The system's static coefficients are compiled once; per-task lanes are
    built lazily and reused across the priority-ordered sweep of
    :meth:`analyze`.  The system must not be mutated while a kernel built
    from it is in use.
    """

    def __init__(self, system: SequentialSystem) -> None:
        self.system = system
        self.index: Dict[int, int] = {
            task.task_id: i for i, task in enumerate(system.tasks)
        }
        self.periods: List[float] = [task.period for task in system.tasks]
        self.deadlines: List[float] = [task.deadline for task in system.tasks]
        self._lanes: Dict[int, _SequentialLane] = {}

    def _lane(self, task: SequentialTask) -> _SequentialLane:
        lane = self._lanes.get(task.task_id)
        if lane is None:
            lane = _SequentialLane(self.system, task, self.index)
            self._lanes[task.task_id] = lane
        return lane

    def _carried(self, response_times: Mapping[int, float]) -> List[float]:
        """Carried-in response times per task index (deadline when unknown)."""
        return [
            response_times.get(task.task_id, task.deadline)
            for task in self.system.tasks
        ]

    def _column_demand(
        self, column: List[Tuple[int, float]], window: float, carried: List[float]
    ) -> float:
        """Evaluate ``sum(eta_j(window) * weight)`` over a sparse column."""
        periods = self.periods
        total = 0.0
        for j, weight in column:
            released = _ceil((window + carried[j]) / periods[j] - ETA_GUARD)
            if released > 0:
                total += released * weight
        return total

    def wcrt(
        self, task: SequentialTask, response_times: Mapping[int, float]
    ) -> float:
        """Drop-in replacement for :func:`sequential_dpcp_wcrt` (kernel lane)."""
        lane = self._lane(task)
        carried = self._carried(response_times)

        request_blocking = 0.0
        for _count, constant, column in lane.requests:

            def request_recurrence(window: float) -> float:
                return constant + self._column_demand(column, window, carried)

            solved, status = solve_scalar(request_recurrence, constant, lane.deadline)
            if solved is None:
                if status == NO_CONVERGENCE:
                    warn_no_convergence(1, lane.deadline)
                return math.inf
            request_blocking += _count * solved

        def recurrence(response: float) -> float:
            return (
                lane.non_critical
                + request_blocking
                + self._column_demand(lane.local_col, response, carried)
                + self._column_demand(lane.agent_col, response, carried)
            )

        start = lane.non_critical + request_blocking
        solved, status = solve_scalar(recurrence, start, lane.deadline)
        if solved is None:
            if status == NO_CONVERGENCE:
                warn_no_convergence(1, lane.deadline)
            return math.inf
        return solved

    def analyze(self) -> Dict[int, float]:
        """Bound every task's WCRT (decreasing priority, carried-in bounds)."""
        response_times: Dict[int, float] = {}
        results: Dict[int, float] = {}
        for task in sorted(self.system.tasks, key=lambda t: t.priority, reverse=True):
            wcrt = self.wcrt(task, response_times)
            results[task.task_id] = wcrt
            response_times[task.task_id] = min(wcrt, task.deadline)
        return results
