"""Classic DPCP analysis for *sequential* tasks (Rajkumar et al. [16]).

The paper's Sec. VI sketches how DPCP-p coexists with light tasks: light
tasks are treated as sequential tasks under partitioned fixed-priority
scheduling and synchronise through the original Distributed Priority Ceiling
Protocol.  This module provides that substrate:

* a lightweight sequential-task model,
* worst-fit partitioning of tasks and global resources onto processors, and
* a response-time analysis with the DPCP's agent-based remote execution and
  priority-ceiling blocking (at most one lower-priority request per request).

It mirrors the structure of the DPCP-p analysis specialised to tasks whose
"DAG" is a single vertex executing on a single processor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..rta import ceil_div_jobs, least_fixed_point


class SequentialModelError(ValueError):
    """Raised for invalid sequential task system descriptions."""


@dataclass
class SequentialTask:
    """A sporadic sequential task using shared resources via the DPCP.

    Attributes
    ----------
    task_id:
        Unique identifier.
    wcet:
        Total WCET including critical sections (µs).
    period:
        Minimum inter-arrival time (µs).
    deadline:
        Relative deadline; defaults to the period.
    priority:
        Base priority (larger = higher).
    requests:
        ``resource id -> (count, cs_length)``.
    """

    task_id: int
    wcet: float
    period: float
    deadline: Optional[float] = None
    priority: int = 0
    requests: Dict[int, Tuple[int, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.wcet <= 0 or self.period <= 0:
            raise SequentialModelError("WCET and period must be positive")
        if self.deadline is None:
            self.deadline = self.period
        if not 0 < self.deadline <= self.period:
            raise SequentialModelError("deadline must satisfy 0 < D <= T")
        cs_total = sum(count * length for count, length in self.requests.values())
        if cs_total > self.wcet + 1e-9:
            raise SequentialModelError("critical sections exceed the WCET")

    @property
    def utilization(self) -> float:
        """Task utilization C/T."""
        return self.wcet / self.period

    @property
    def non_critical_wcet(self) -> float:
        """WCET excluding all critical sections."""
        return self.wcet - sum(c * l for c, l in self.requests.values())

    def request_count(self, resource_id: int) -> int:
        """Number of requests issued to ``resource_id`` per job."""
        return self.requests.get(resource_id, (0, 0.0))[0]

    def cs_length(self, resource_id: int) -> float:
        """Maximum critical-section length on ``resource_id``."""
        return self.requests.get(resource_id, (0, 0.0))[1]


@dataclass
class SequentialSystem:
    """A partitioned sequential task system under the DPCP.

    Attributes
    ----------
    tasks:
        The sequential tasks.
    task_assignment:
        ``task id -> processor``.
    resource_assignment:
        ``global resource id -> processor`` (hosting the resource's agent).
    """

    tasks: List[SequentialTask]
    task_assignment: Dict[int, int]
    resource_assignment: Dict[int, int]

    def task(self, task_id: int) -> SequentialTask:
        """Look up a task by id."""
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise SequentialModelError(f"unknown task {task_id}")

    def tasks_on(self, processor: int) -> List[SequentialTask]:
        """Tasks assigned to ``processor``."""
        return [t for t in self.tasks if self.task_assignment[t.task_id] == processor]

    def resources_on(self, processor: int) -> List[int]:
        """Global resources hosted on ``processor``."""
        return sorted(
            rid for rid, proc in self.resource_assignment.items() if proc == processor
        )

    def co_located_resources(self, resource_id: int) -> List[int]:
        """Resources on the same processor as ``resource_id``."""
        return self.resources_on(self.resource_assignment[resource_id])

    def resource_ceiling(self, resource_id: int) -> int:
        """Highest base priority among the users of ``resource_id``."""
        users = [t for t in self.tasks if t.request_count(resource_id) > 0]
        if not users:
            raise SequentialModelError(f"resource {resource_id} has no users")
        return max(t.priority for t in users)


def partition_sequential_system(
    tasks: List[SequentialTask],
    num_processors: int,
    reserved_processors: int = 0,
) -> Optional[SequentialSystem]:
    """Worst-fit partition tasks and resources onto the available processors.

    ``reserved_processors`` marks processors unavailable to sequential tasks
    (e.g. processors already dedicated to heavy DAG tasks); resources may
    still be hosted on the remaining processors.  Returns ``None`` when a
    task does not fit anywhere.
    """
    available = list(range(reserved_processors, num_processors))
    if not available:
        return None
    load: Dict[int, float] = {p: 0.0 for p in available}
    task_assignment: Dict[int, int] = {}
    for task in sorted(tasks, key=lambda t: t.utilization, reverse=True):
        target = min(load, key=lambda p: (load[p], p))
        if load[target] + task.utilization > 1.0 + 1e-9:
            return None
        task_assignment[task.task_id] = target
        load[target] += task.utilization

    resource_users: Dict[int, List[SequentialTask]] = {}
    for task in tasks:
        for rid, (count, _) in task.requests.items():
            if count > 0:
                resource_users.setdefault(rid, []).append(task)
    global_resources = [rid for rid, users in resource_users.items() if len(users) > 1]

    resource_assignment: Dict[int, int] = {}
    resource_load: Dict[int, float] = {p: 0.0 for p in available}
    for rid in sorted(
        global_resources,
        key=lambda r: sum(
            t.request_count(r) * t.cs_length(r) / t.period for t in tasks
        ),
        reverse=True,
    ):
        utilization = sum(
            t.request_count(rid) * t.cs_length(rid) / t.period for t in tasks
        )
        target = min(available, key=lambda p: (load[p] + resource_load[p], p))
        resource_assignment[rid] = target
        resource_load[target] += utilization
    return SequentialSystem(list(tasks), task_assignment, resource_assignment)


def _request_response_time(
    system: SequentialSystem,
    task: SequentialTask,
    resource_id: int,
    response_times: Mapping[int, float],
) -> float:
    """Response time of one global-resource request under the classic DPCP."""
    co_located = system.co_located_resources(resource_id)
    beta = 0.0
    for other in system.tasks:
        if other.priority >= task.priority:
            continue
        for rid in co_located:
            if other.request_count(rid) == 0:
                continue
            if system.resource_ceiling(rid) >= task.priority:
                beta = max(beta, other.cs_length(rid))

    def gamma(interval: float) -> float:
        total = 0.0
        for other in system.tasks:
            if other.priority <= task.priority or other.task_id == task.task_id:
                continue
            carried = response_times.get(other.task_id, other.deadline)
            released = ceil_div_jobs(interval, other.period, carried)
            for rid in co_located:
                total += released * other.request_count(rid) * other.cs_length(rid)
        return total

    constant = task.cs_length(resource_id) + beta

    def recurrence(window: float) -> float:
        return constant + gamma(window)

    solution = least_fixed_point(recurrence, constant, task.deadline)
    return solution if solution is not None else math.inf


def sequential_dpcp_wcrt(
    system: SequentialSystem,
    task: SequentialTask,
    response_times: Optional[Mapping[int, float]] = None,
) -> float:
    """Response-time bound of a sequential task under the classic DPCP."""
    response_times = dict(response_times or {})
    processor = system.task_assignment[task.task_id]

    request_blocking = 0.0
    for rid, (count, _) in task.requests.items():
        if count == 0 or rid not in system.resource_assignment:
            continue
        window = _request_response_time(system, task, rid, response_times)
        if math.isinf(window):
            return math.inf
        request_blocking += count * window

    def recurrence(response: float) -> float:
        # Higher-priority tasks on the same processor preempt the task's
        # non-critical execution.
        local_interference = 0.0
        for other in system.tasks_on(processor):
            if other.task_id == task.task_id or other.priority <= task.priority:
                continue
            carried = response_times.get(other.task_id, other.deadline)
            released = ceil_div_jobs(response, other.period, carried)
            local_interference += released * other.non_critical_wcet
        # Agents hosted on the task's processor execute other tasks' requests
        # with boosted priority and therefore also interfere.
        agent_interference = 0.0
        for rid in system.resources_on(processor):
            for other in system.tasks:
                if other.task_id == task.task_id:
                    continue
                carried = response_times.get(other.task_id, other.deadline)
                released = ceil_div_jobs(response, other.period, carried)
                agent_interference += (
                    released * other.request_count(rid) * other.cs_length(rid)
                )
        return (
            task.non_critical_wcet
            + request_blocking
            + local_interference
            + agent_interference
        )

    start = task.non_critical_wcet + request_blocking
    solution = least_fixed_point(recurrence, start, task.deadline)
    return solution if solution is not None else math.inf


def analyze_sequential_system(system: SequentialSystem) -> Dict[int, float]:
    """Bound the WCRT of every task of a partitioned sequential system.

    Tasks are analysed in decreasing priority order; the returned mapping
    contains ``math.inf`` for tasks without a converging bound.
    """
    response_times: Dict[int, float] = {}
    results: Dict[int, float] = {}
    for task in sorted(system.tasks, key=lambda t: t.priority, reverse=True):
        wcrt = sequential_dpcp_wcrt(system, task, response_times)
        results[task.task_id] = wcrt
        response_times[task.task_id] = min(wcrt, task.deadline)
    return results
