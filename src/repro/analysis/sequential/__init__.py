"""Classic (sequential-task) DPCP analysis used for light tasks (Sec. VI)."""

from .dpcp import (
    SequentialDpcpKernel,
    SequentialModelError,
    SequentialSystem,
    SequentialTask,
    analyze_sequential_system,
    partition_sequential_system,
    sequential_dpcp_wcrt,
)

__all__ = [
    "SequentialDpcpKernel",
    "SequentialModelError",
    "SequentialSystem",
    "SequentialTask",
    "analyze_sequential_system",
    "partition_sequential_system",
    "sequential_dpcp_wcrt",
]
