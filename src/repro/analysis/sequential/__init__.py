"""Classic (sequential-task) DPCP analysis used for light tasks (Sec. VI)."""

from .dpcp import (
    SequentialModelError,
    SequentialSystem,
    SequentialTask,
    analyze_sequential_system,
    partition_sequential_system,
    sequential_dpcp_wcrt,
)

__all__ = [
    "SequentialModelError",
    "SequentialSystem",
    "SequentialTask",
    "analyze_sequential_system",
    "partition_sequential_system",
    "sequential_dpcp_wcrt",
]
