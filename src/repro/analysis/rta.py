"""Fixed-point iteration helpers for response-time analysis.

The paper's WCRT bounds (Theorem 1 and Lemma 2) are least fixed points of
monotone recurrences ``x = f(x)``.  :func:`least_fixed_point` iterates such a
recurrence from a starting value until convergence, giving up when the
iterate exceeds a divergence bound (which the analyses interpret as
"unschedulable / no bound").

Since PR 3 the solver itself lives in
:mod:`repro.analysis.engine.solver` — one implementation shared with the
compiled protocol kernels — and this module keeps the historical scalar API
(plus :func:`ceil_div_jobs`) on top of it.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

from .engine.solver import (
    CONVERGED,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    DIVERGED,
    ETA_GUARD,
    NO_CONVERGENCE,
    FixedPointDiverged,
    FixedPointNoConvergence,
    solve_scalar,
    warn_no_convergence,
)

__all__ = [
    "CONVERGED",
    "DIVERGED",
    "NO_CONVERGENCE",
    "DEFAULT_MAX_ITERATIONS",
    "DEFAULT_TOLERANCE",
    "ETA_GUARD",
    "FixedPointDiverged",
    "FixedPointNoConvergence",
    "ceil_div_jobs",
    "least_fixed_point",
    "least_fixed_point_status",
]


def least_fixed_point_status(
    recurrence: Callable[[float], float],
    start: float,
    divergence_bound: float,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[Optional[float], str]:
    """Like :func:`least_fixed_point`, but also reports *why* it stopped.

    Returns ``(value, status)`` where ``status`` is :data:`CONVERGED` (and
    ``value`` is the least fixed point), :data:`DIVERGED` (an iterate — or the
    start value — exceeded ``divergence_bound``, or the recurrence produced
    NaN), or :data:`NO_CONVERGENCE` (``max_iterations`` exhausted without
    meeting the tolerance).  ``value`` is ``None`` for both failure statuses.
    """
    return solve_scalar(recurrence, start, divergence_bound, tolerance, max_iterations)


def least_fixed_point(
    recurrence: Callable[[float], float],
    start: float,
    divergence_bound: float,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Optional[float]:
    """Iterate ``x_{k+1} = recurrence(x_k)`` from ``start`` until convergence.

    Parameters
    ----------
    recurrence:
        A monotone function of the iterate.
    start:
        Initial value (typically the constant part of the recurrence).
    divergence_bound:
        If an iterate exceeds this value the search is abandoned and ``None``
        is returned.  Analyses pass the deadline (or a small multiple of it):
        any fixed point beyond it is irrelevant for schedulability.
    tolerance:
        Absolute convergence tolerance.
    max_iterations:
        Safety cap on the number of iterations.  Exhausting it (as opposed to
        diverging past the bound) emits a :class:`FixedPointNoConvergence`
        warning before ``None`` is returned.

    Returns
    -------
    float or None
        The least fixed point (up to ``tolerance``), or ``None`` if the
        iteration diverged past ``divergence_bound`` or failed to converge.
    """
    value, status = solve_scalar(
        recurrence, start, divergence_bound, tolerance, max_iterations
    )
    if status == NO_CONVERGENCE:
        warn_no_convergence(
            1, divergence_bound, stacklevel=3, max_iterations=max_iterations
        )
    return value


def ceil_div_jobs(interval: float, period: float, response_time: float) -> int:
    """Bound :math:`\\eta_j(L) = \\lceil (L + R_j) / T_j \\rceil` on released jobs.

    ``response_time`` is the carried-in response-time bound :math:`R_j`
    (use the deadline for tasks whose response time is not yet known).
    Negative or zero intervals still account for one carried-in job.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    interval = max(interval, 0.0)
    return max(0, int(math.ceil((interval + response_time) / period - ETA_GUARD)))
