"""Fixed-point iteration helpers for response-time analysis.

The paper's WCRT bounds (Theorem 1 and Lemma 2) are least fixed points of
monotone recurrences ``x = f(x)``.  :func:`least_fixed_point` iterates such a
recurrence from a starting value until convergence, giving up when the
iterate exceeds a divergence bound (which the analyses interpret as
"unschedulable / no bound").
"""

from __future__ import annotations

import math
from typing import Callable, Optional

#: Default absolute convergence tolerance, in microseconds.
DEFAULT_TOLERANCE = 1e-6

#: Default iteration cap; the recurrences used here converge in far fewer steps.
DEFAULT_MAX_ITERATIONS = 10_000


class FixedPointDiverged(RuntimeError):
    """Raised internally when a recurrence exceeds its divergence bound."""


def least_fixed_point(
    recurrence: Callable[[float], float],
    start: float,
    divergence_bound: float,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Optional[float]:
    """Iterate ``x_{k+1} = recurrence(x_k)`` from ``start`` until convergence.

    Parameters
    ----------
    recurrence:
        A monotone function of the iterate.
    start:
        Initial value (typically the constant part of the recurrence).
    divergence_bound:
        If an iterate exceeds this value the search is abandoned and ``None``
        is returned.  Analyses pass the deadline (or a small multiple of it):
        any fixed point beyond it is irrelevant for schedulability.
    tolerance:
        Absolute convergence tolerance.
    max_iterations:
        Safety cap on the number of iterations.

    Returns
    -------
    float or None
        The least fixed point (up to ``tolerance``), or ``None`` if the
        iteration diverged past ``divergence_bound`` or failed to converge.
    """
    if math.isinf(start) or math.isnan(start):
        return None
    current = float(start)
    if current > divergence_bound:
        return None
    for _ in range(max_iterations):
        nxt = float(recurrence(current))
        if math.isnan(nxt):
            return None
        if nxt < current - tolerance:
            # A monotone recurrence should never decrease; clamp defensively
            # so that rounding noise cannot cause oscillation.
            nxt = current
        if nxt > divergence_bound:
            return None
        if abs(nxt - current) <= tolerance:
            return nxt
        current = nxt
    return None


def ceil_div_jobs(interval: float, period: float, response_time: float) -> int:
    """Bound :math:`\\eta_j(L) = \\lceil (L + R_j) / T_j \\rceil` on released jobs.

    ``response_time`` is the carried-in response-time bound :math:`R_j`
    (use the deadline for tasks whose response time is not yet known).
    Negative or zero intervals still account for one carried-in job.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    interval = max(interval, 0.0)
    return max(0, int(math.ceil((interval + response_time) / period - 1e-12)))
