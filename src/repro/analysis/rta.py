"""Fixed-point iteration helpers for response-time analysis.

The paper's WCRT bounds (Theorem 1 and Lemma 2) are least fixed points of
monotone recurrences ``x = f(x)``.  :func:`least_fixed_point` iterates such a
recurrence from a starting value until convergence, giving up when the
iterate exceeds a divergence bound (which the analyses interpret as
"unschedulable / no bound").
"""

from __future__ import annotations

import math
import warnings
from typing import Callable, Optional, Tuple

#: Default absolute convergence tolerance, in microseconds.
DEFAULT_TOLERANCE = 1e-6

#: Default iteration cap; the recurrences used here converge in far fewer steps.
DEFAULT_MAX_ITERATIONS = 10_000

#: Guard subtracted inside the η ceiling so that exact multiples of the
#: period are not rounded up by floating-point noise.  Shared by
#: :func:`ceil_div_jobs` and the vectorized kernel's η evaluation.
ETA_GUARD = 1e-12

#: Status values returned by :func:`least_fixed_point_status`.
CONVERGED = "converged"
DIVERGED = "diverged"
NO_CONVERGENCE = "no-convergence"


class FixedPointDiverged(RuntimeError):
    """Raised internally when a recurrence exceeds its divergence bound."""


class FixedPointNoConvergence(RuntimeWarning):
    """A fixed-point search hit its iteration cap without converging.

    Unlike divergence past the bound (a definitive "no relevant fixed point"
    answer), hitting the iteration cap means the search was inconclusive; the
    analyses still treat the task as unbounded, but the situation is surfaced
    as a warning so slowly-converging systems are not silently conflated with
    genuinely diverging ones.
    """


def least_fixed_point_status(
    recurrence: Callable[[float], float],
    start: float,
    divergence_bound: float,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Tuple[Optional[float], str]:
    """Like :func:`least_fixed_point`, but also reports *why* it stopped.

    Returns ``(value, status)`` where ``status`` is :data:`CONVERGED` (and
    ``value`` is the least fixed point), :data:`DIVERGED` (an iterate — or the
    start value — exceeded ``divergence_bound``, or the recurrence produced
    NaN), or :data:`NO_CONVERGENCE` (``max_iterations`` exhausted without
    meeting the tolerance).  ``value`` is ``None`` for both failure statuses.
    """
    if math.isinf(start) or math.isnan(start):
        return None, DIVERGED
    current = float(start)
    if current > divergence_bound:
        return None, DIVERGED
    for _ in range(max_iterations):
        nxt = float(recurrence(current))
        if math.isnan(nxt):
            return None, DIVERGED
        if nxt < current - tolerance:
            # A monotone recurrence should never decrease; clamp defensively
            # so that rounding noise cannot cause oscillation.
            nxt = current
        if nxt > divergence_bound:
            return None, DIVERGED
        if abs(nxt - current) <= tolerance:
            return nxt, CONVERGED
        current = nxt
    return None, NO_CONVERGENCE


def least_fixed_point(
    recurrence: Callable[[float], float],
    start: float,
    divergence_bound: float,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> Optional[float]:
    """Iterate ``x_{k+1} = recurrence(x_k)`` from ``start`` until convergence.

    Parameters
    ----------
    recurrence:
        A monotone function of the iterate.
    start:
        Initial value (typically the constant part of the recurrence).
    divergence_bound:
        If an iterate exceeds this value the search is abandoned and ``None``
        is returned.  Analyses pass the deadline (or a small multiple of it):
        any fixed point beyond it is irrelevant for schedulability.
    tolerance:
        Absolute convergence tolerance.
    max_iterations:
        Safety cap on the number of iterations.  Exhausting it (as opposed to
        diverging past the bound) emits a :class:`FixedPointNoConvergence`
        warning before ``None`` is returned.

    Returns
    -------
    float or None
        The least fixed point (up to ``tolerance``), or ``None`` if the
        iteration diverged past ``divergence_bound`` or failed to converge.
    """
    value, status = least_fixed_point_status(
        recurrence, start, divergence_bound, tolerance, max_iterations
    )
    if status == NO_CONVERGENCE:
        warnings.warn(
            f"fixed-point iteration hit the cap of {max_iterations} iterations "
            f"without converging (bound {divergence_bound}); treating as unbounded",
            FixedPointNoConvergence,
            stacklevel=2,
        )
    return value


def ceil_div_jobs(interval: float, period: float, response_time: float) -> int:
    """Bound :math:`\\eta_j(L) = \\lceil (L + R_j) / T_j \\rceil` on released jobs.

    ``response_time`` is the carried-in response-time bound :math:`R_j`
    (use the deadline for tasks whose response time is not yet known).
    Negative or zero intervals still account for one carried-in job.
    """
    if period <= 0:
        raise ValueError("period must be positive")
    interval = max(interval, 0.0)
    return max(0, int(math.ceil((interval + response_time) / period - ETA_GUARD)))
