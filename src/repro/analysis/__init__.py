"""Schedulability analyses: DPCP-p (EP/EN) and the baseline protocols."""

from .dpcp_p import DpcpPEnTest, DpcpPEpTest, DpcpPTest
from .fedfp import FedFpTest, federated_wcrt
from .interfaces import (
    SchedulabilityResult,
    SchedulabilityTest,
    TaskAnalysis,
    UNBOUNDED,
)
from .lpp import LppTest
from .paths import PathEnumerator, PathEnumerationResult, critical_path_only
from .rta import ceil_div_jobs, least_fixed_point
from .spin import SpinTest

#: The protocols compared in the paper's evaluation (Sec. VII-B), in the
#: order used by the tables.
def default_protocols():
    """Instantiate the protocol suite compared in the paper (Sec. VII-B)."""
    return [DpcpPEpTest(), DpcpPEnTest(), SpinTest(), LppTest(), FedFpTest()]


__all__ = [
    "DpcpPEnTest",
    "DpcpPEpTest",
    "DpcpPTest",
    "FedFpTest",
    "federated_wcrt",
    "SchedulabilityResult",
    "SchedulabilityTest",
    "TaskAnalysis",
    "UNBOUNDED",
    "LppTest",
    "PathEnumerator",
    "PathEnumerationResult",
    "critical_path_only",
    "ceil_div_jobs",
    "least_fixed_point",
    "SpinTest",
    "default_protocols",
]
