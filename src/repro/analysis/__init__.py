"""Schedulability analyses: DPCP-p (EP/EN) and the baseline protocols."""

from .dpcp_p import (
    DpcpPEnTest,
    DpcpPEpTest,
    DpcpPKernel,
    DpcpPTest,
    ENGINE_KERNEL,
    ENGINE_REFERENCE,
)
from .engine import CompiledTaskset, compile_taskset
from .fedfp import FedFpTest, federated_wcrt
from .interfaces import (
    SchedulabilityResult,
    SchedulabilityTest,
    TaskAnalysis,
    UNBOUNDED,
)
from .lpp import LppKernel, LppTest
from .paths import PathEnumerator, PathEnumerationResult, critical_path_only
from .rta import (
    FixedPointNoConvergence,
    ceil_div_jobs,
    least_fixed_point,
    least_fixed_point_status,
)
from .spin import SpinKernel, SpinTest

def default_protocols():
    """Instantiate the protocol suite compared in the paper (Sec. VII-B).

    The suite (names, order, construction) is defined once, in
    :data:`repro.campaign.planner.PROTOCOL_FACTORIES`; the import is
    deferred because the campaign package builds on this one.
    """
    from ..campaign.executor import build_protocols
    from ..campaign.planner import KNOWN_PROTOCOLS

    return build_protocols(KNOWN_PROTOCOLS)


__all__ = [
    "CompiledTaskset",
    "compile_taskset",
    "DpcpPEnTest",
    "DpcpPEpTest",
    "DpcpPKernel",
    "DpcpPTest",
    "ENGINE_KERNEL",
    "ENGINE_REFERENCE",
    "LppKernel",
    "SpinKernel",
    "FedFpTest",
    "federated_wcrt",
    "SchedulabilityResult",
    "SchedulabilityTest",
    "TaskAnalysis",
    "UNBOUNDED",
    "LppTest",
    "PathEnumerator",
    "PathEnumerationResult",
    "critical_path_only",
    "ceil_div_jobs",
    "least_fixed_point",
    "least_fixed_point_status",
    "FixedPointNoConvergence",
    "SpinTest",
    "default_protocols",
]
