"""Common result types and the schedulability-test interface.

Every locking protocol / analysis in this library implements
:class:`SchedulabilityTest`: given a task set and a platform it decides
schedulability, reporting per-task worst-case response-time bounds and the
processor/resource partition it used.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..model.platform import PartitionedSystem, Platform
from ..model.task import TaskSet

#: Sentinel used when an analysis diverges (no finite WCRT bound exists).
UNBOUNDED = math.inf


@dataclass
class TaskAnalysis:
    """Per-task outcome of a schedulability analysis.

    Attributes
    ----------
    task_id:
        The analysed task.
    wcrt:
        Derived worst-case response-time bound (``math.inf`` if unbounded).
    deadline:
        The task's relative deadline, for convenience.
    processors:
        Number of processors assigned to the task by the partitioning stage.
    """

    task_id: int
    wcrt: float
    deadline: float
    processors: int = 0

    @property
    def schedulable(self) -> bool:
        """Whether the WCRT bound meets the deadline."""
        return self.wcrt <= self.deadline + 1e-9


@dataclass
class SchedulabilityResult:
    """Outcome of a schedulability test on a whole task set."""

    schedulable: bool
    protocol: str
    task_analyses: Dict[int, TaskAnalysis] = field(default_factory=dict)
    partition: Optional[PartitionedSystem] = None
    reason: str = ""

    def wcrt(self, task_id: int) -> float:
        """WCRT bound of ``task_id`` (``math.inf`` when not analysed)."""
        analysis = self.task_analyses.get(task_id)
        return analysis.wcrt if analysis else UNBOUNDED

    def __bool__(self) -> bool:
        return self.schedulable


class SchedulabilityTest(abc.ABC):
    """Abstract base class for protocol-specific schedulability tests."""

    #: Short identifier used in experiment reports (e.g. ``"DPCP-p-EP"``).
    name: str = "abstract"

    @abc.abstractmethod
    def test(self, taskset: TaskSet, platform: Platform) -> SchedulabilityResult:
        """Decide whether ``taskset`` is schedulable on ``platform``."""

    def __call__(self, taskset: TaskSet, platform: Platform) -> SchedulabilityResult:
        return self.test(taskset, platform)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
