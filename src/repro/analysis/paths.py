"""Complete-path enumeration for the path-oriented (EP) analysis.

The EP variant of the DPCP-p analysis computes a WCRT bound for every
complete path of a task's DAG and takes the maximum (Eq. (1)).  Two practical
concerns are handled here:

* Many paths are *analysis-equivalent*: the bound only depends on the path
  length :math:`L(\\lambda)` and on the per-resource request counts
  :math:`N^\\lambda_{i,q}`, so paths are deduplicated by that signature.
* The number of complete paths can be exponential.  The enumerator accepts a
  cap; when the cap is exceeded the result is flagged as *not exhaustive* and
  callers fall back to the (sound but more pessimistic) EN-style bound.

The default enumeration algorithm is a dynamic program over analysis
signatures: partial signatures ``(length, per-resource request counts)`` are
propagated along the DAG in topological order and deduplicated at every
vertex, so the cost scales with the number of *distinct* signatures rather
than with the (possibly exponential) number of raw paths — no path is ever
walked individually.  The raw-path cap is enforced by the same capped
O(V+E) counting pass the walk uses.  The original depth-first walk over raw
paths is retained (``algorithm="walk"``) as a reference oracle.

Partial signatures are deduplicated at the same rounded-length granularity
as complete-path signatures, and extending every signature at a vertex by one
fixed suffix preserves distinctness (up to rounding right at a signature
boundary) — so the number of distinct partial signatures at any vertex tracks
the number of distinct complete signatures, tripping the signature cap mid-DP
implies the walk would (essentially) not have been exhaustive either, and the
cap/``exhaustive`` semantics of the walk are preserved.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..model.dag import PathProfile
from ..model.task import DAGTask
from ..obs.telemetry import active as _active_telemetry

#: Default cap on the number of *distinct* path signatures kept per task.
DEFAULT_MAX_SIGNATURES = 4096

#: Default cap on the number of raw paths covered per task.
DEFAULT_MAX_PATHS = 200_000

#: Enumeration algorithms: the signature-space dynamic program (default) and
#: the raw depth-first path walk kept as a reference oracle.
ALGORITHM_DP = "dp"
ALGORITHM_WALK = "walk"

#: Path-count threshold below which the DP enumerator delegates to the raw
#: walk: for a handful of paths the walk's constant factor beats the
#: per-vertex signature bookkeeping of the dynamic program.
WALK_SHORTCUT_PATHS = 64


@dataclass
class PathEnumerationResult:
    """Outcome of enumerating the complete paths of one task.

    Attributes
    ----------
    profiles:
        Deduplicated path profiles (one per distinct analysis signature).
    exhaustive:
        ``True`` when every complete path is covered by the profiles;
        ``False`` when a cap was hit and the profiles only cover a subset.
    total_paths_seen:
        Number of raw paths covered before stopping (the exact complete-path
        count when the enumeration is exhaustive).
    """

    profiles: List[PathProfile]
    exhaustive: bool
    total_paths_seen: int


def _merge_requests(
    base: Tuple[Tuple[int, int], ...], extra: Tuple[Tuple[int, int], ...]
) -> Tuple[Tuple[int, int], ...]:
    """Merge two sorted ``(resource, count)`` tuples, summing counts."""
    if not extra:
        return base
    if not base:
        return extra
    counts = dict(base)
    for rid, cnt in extra:
        counts[rid] = counts.get(rid, 0) + cnt
    return tuple(sorted(counts.items()))


class PathEnumerator:
    """Enumerates and caches the path profiles of tasks.

    Parameters
    ----------
    max_signatures:
        Cap on distinct signatures retained per task.
    max_paths:
        Cap on raw paths covered per task.
    algorithm:
        ``"dp"`` (default) — the signature-space dynamic program, or
        ``"walk"`` — the reference depth-first walk over raw paths.

    Results are cached per live task object (a ``WeakKeyDictionary``), so a
    cache entry can never outlive — or be aliased onto — its task: the former
    ``(id(task), task_id)`` key could silently return a stale enumeration for
    a *different* task after the original was garbage collected and its
    ``id()`` recycled.  Entries are additionally keyed on the DAG's edge
    count, so the supported mutation (``DAG.add_edge``) invalidates them —
    mirroring ``DAGTask.critical_path_length``.
    """

    def __init__(
        self,
        max_signatures: int = DEFAULT_MAX_SIGNATURES,
        max_paths: int = DEFAULT_MAX_PATHS,
        algorithm: str = ALGORITHM_DP,
    ) -> None:
        if max_signatures < 1 or max_paths < 1:
            raise ValueError("enumeration caps must be positive")
        if algorithm not in (ALGORITHM_DP, ALGORITHM_WALK):
            raise ValueError(f"unknown enumeration algorithm {algorithm!r}")
        self.max_signatures = max_signatures
        self.max_paths = max_paths
        self.algorithm = algorithm
        self._cache: "weakref.WeakKeyDictionary[DAGTask, Tuple[int, PathEnumerationResult]]" = (
            weakref.WeakKeyDictionary()
        )

    def enumerate(self, task: DAGTask) -> PathEnumerationResult:
        """Enumerate (and cache) the distinct path profiles of ``task``."""
        num_edges = task.dag.num_edges
        cached = self._cache.get(task)
        tel = _active_telemetry()
        if cached is not None and cached[0] == num_edges:
            if tel is not None:
                tel.count("enumeration.cache.hits")
            return cached[1]
        if tel is not None:
            tel.count("enumeration.cache.misses")
        if self.algorithm == ALGORITHM_DP:
            result = self._enumerate_dp(task)
        else:
            result = self._enumerate_walk(task)
        self._cache[task] = (num_edges, result)
        return result

    # ------------------------------------------------------------------ #
    # Signature-space dynamic program (default)
    # ------------------------------------------------------------------ #
    def _enumerate_dp(self, task: DAGTask) -> PathEnumerationResult:
        """Propagate deduplicated partial signatures in topological order.

        The complete-path count is checked first (one capped O(V+E) counting
        pass, shared with the walk): astronomically many paths fall back to
        the critical path immediately, and a trivially small count delegates
        to the raw walk, whose constant factor is lower.

        Otherwise each vertex holds a mapping ``(rounded length, request
        tuple) -> (exact length, representative path)`` over the
        source-to-vertex paths ending at it: deduplication happens at the
        reference signature granularity (``round(length, 9)``, matching
        ``PathProfile.signature()``), while the exact length travels in the
        value so the emitted profiles carry the same floats a raw walk would
        produce.
        """
        dag = task.dag
        total_paths = dag.count_complete_paths(limit=self.max_paths + 1)
        if total_paths > self.max_paths:
            return self._truncated(task)
        if total_paths <= min(WALK_SHORTCUT_PATHS, self.max_paths):
            return self._walk(task, total_paths)

        order = dag.topological_order()
        pred_lists = dag.predecessor_lists()
        succ_lists = dag.successor_lists()

        wcets = [v.wcet for v in task.vertices]
        vertex_requests = [
            tuple(sorted((r, c) for r, c in v.requests.items() if c > 0))
            for v in task.vertices
        ]
        # Partial signatures are keyed on the *rounded* length — the same
        # granularity PathProfile.signature() (and hence the walk) dedups
        # complete paths at — while the exact length travels in the value, so
        # the emitted profiles carry the same floats a raw walk would
        # produce.  Keying on exact lengths would let paths that the walk
        # treats as one signature (lengths differing below 1e-9) inflate the
        # per-vertex sets and trip the cap where the walk stays exhaustive.
        sigs: Dict[int, Dict[Tuple, Tuple[float, Tuple[int, ...]]]] = {}
        pending_succs = [len(succ_lists[v]) for v in range(dag.num_vertices)]
        for v in order:
            preds = pred_lists[v]
            if not preds:
                sigs[v] = {(round(wcets[v], 9), vertex_requests[v]): (wcets[v], (v,))}
            else:
                merged: Dict[Tuple, Tuple[float, Tuple[int, ...]]] = {}
                for u in sorted(preds):
                    for (_rkey, requests), (length, rep) in sigs[u].items():
                        exact = length + wcets[v]
                        key = (
                            round(exact, 9),
                            _merge_requests(requests, vertex_requests[v]),
                        )
                        if key not in merged:
                            merged[key] = (exact, rep + (v,))
                if len(merged) > self.max_signatures:
                    return self._truncated(task)
                sigs[v] = merged
            # Free per-vertex signature sets as soon as every successor has
            # consumed them (keeps peak memory proportional to the frontier).
            for u in preds:
                pending_succs[u] -= 1
                if pending_succs[u] == 0 and succ_lists[u]:
                    del sigs[u]

        profiles: Dict[Tuple, PathProfile] = {}
        for sink in range(dag.num_vertices):
            if succ_lists[sink]:
                continue
            for (rkey, requests), (length, rep) in sigs[sink].items():
                key = (rkey, requests)
                if key not in profiles:
                    profiles[key] = PathProfile(
                        vertices=rep, length=length, requests=dict(requests)
                    )
        if len(profiles) > self.max_signatures:
            return self._truncated(task)
        return PathEnumerationResult(
            profiles=list(profiles.values()),
            exhaustive=True,
            total_paths_seen=total_paths,
        )

    def _truncated(self, task: DAGTask) -> PathEnumerationResult:
        """Cap-exceeded fallback: the critical path only, flagged non-exhaustive.

        Callers treat any non-exhaustive enumeration by falling back to the
        EN-style bound, which dominates every per-path bound — so the choice
        of retained profiles does not affect the final task bound.
        """
        return PathEnumerationResult(
            profiles=[task.critical_path_profile()],
            exhaustive=False,
            total_paths_seen=0,
        )

    # ------------------------------------------------------------------ #
    # Reference raw-path walk
    # ------------------------------------------------------------------ #
    def _enumerate_walk(self, task: DAGTask) -> PathEnumerationResult:
        """The original depth-first walk over raw paths (reference oracle)."""
        # Quick pre-check: if the path count is astronomically large, skip the
        # walk entirely and only report the critical path (non-exhaustive).
        approx_count = task.dag.count_complete_paths(limit=self.max_paths + 1)
        if approx_count > self.max_paths:
            return self._truncated(task)
        return self._walk(task, approx_count)

    def _walk(self, task: DAGTask, approx_count: int) -> PathEnumerationResult:
        """Depth-first walk over raw paths (count already known ≤ max_paths)."""
        profiles: Dict[Tuple, PathProfile] = {}
        exhaustive = True
        seen = 0
        for vertices in task.dag.iter_complete_paths():
            seen += 1
            profile = task.path_profile(vertices)
            signature = profile.signature()
            if signature not in profiles:
                if len(profiles) >= self.max_signatures:
                    # The cap is already full: a further *distinct* signature
                    # makes the walk non-exhaustive.  (Checking before the
                    # insert keeps the result at max_signatures profiles; the
                    # former post-insert check leaked one extra profile.)
                    exhaustive = False
                    break
                profiles[signature] = profile
            if seen >= self.max_paths:
                exhaustive = seen >= approx_count
                break

        if not profiles:
            profiles_list = [task.critical_path_profile()]
        else:
            profiles_list = list(profiles.values())
        return PathEnumerationResult(
            profiles=profiles_list,
            exhaustive=exhaustive,
            total_paths_seen=seen,
        )

    def clear(self) -> None:
        """Drop all cached enumerations."""
        self._cache.clear()

    # The cache holds weak references and is inherently per-process; campaign
    # workers receive protocol objects (and their enumerators) via pickle, so
    # serialization ships the configuration and starts with an empty cache.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_cache"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._cache = weakref.WeakKeyDictionary()


def critical_path_only(task: DAGTask) -> PathEnumerationResult:
    """A degenerate enumeration containing only the critical path.

    Used by the EN-style analyses, which reason about the longest path and
    treat the per-resource request counts as free variables.
    """
    return PathEnumerationResult(
        profiles=[task.critical_path_profile()],
        exhaustive=False,
        total_paths_seen=1,
    )
