"""Complete-path enumeration for the path-oriented (EP) analysis.

The EP variant of the DPCP-p analysis computes a WCRT bound for every
complete path of a task's DAG and takes the maximum (Eq. (1)).  Two practical
concerns are handled here:

* Many paths are *analysis-equivalent*: the bound only depends on the path
  length :math:`L(\\lambda)` and on the per-resource request counts
  :math:`N^\\lambda_{i,q}`, so paths are deduplicated by that signature.
* The number of complete paths can be exponential.  The enumerator accepts a
  cap; when the cap is exceeded the result is flagged as *not exhaustive* and
  callers fall back to the (sound but more pessimistic) EN-style bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..model.dag import PathProfile
from ..model.task import DAGTask

#: Default cap on the number of *distinct* path signatures kept per task.
DEFAULT_MAX_SIGNATURES = 4096

#: Default cap on the number of raw paths walked per task.
DEFAULT_MAX_PATHS = 200_000


@dataclass
class PathEnumerationResult:
    """Outcome of enumerating the complete paths of one task.

    Attributes
    ----------
    profiles:
        Deduplicated path profiles (one per distinct analysis signature).
    exhaustive:
        ``True`` when every complete path was visited; ``False`` when a cap
        was hit and the profiles only cover a subset of the paths.
    total_paths_seen:
        Number of raw paths walked before stopping.
    """

    profiles: List[PathProfile]
    exhaustive: bool
    total_paths_seen: int


class PathEnumerator:
    """Enumerates and caches the path profiles of tasks.

    Parameters
    ----------
    max_signatures:
        Cap on distinct signatures retained per task.
    max_paths:
        Cap on raw paths walked per task.
    """

    def __init__(
        self,
        max_signatures: int = DEFAULT_MAX_SIGNATURES,
        max_paths: int = DEFAULT_MAX_PATHS,
    ) -> None:
        if max_signatures < 1 or max_paths < 1:
            raise ValueError("enumeration caps must be positive")
        self.max_signatures = max_signatures
        self.max_paths = max_paths
        self._cache: Dict[Tuple[int, int], PathEnumerationResult] = {}

    def enumerate(self, task: DAGTask) -> PathEnumerationResult:
        """Enumerate (and cache) the distinct path profiles of ``task``."""
        key = (id(task), task.task_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        # Quick pre-check: if the path count is astronomically large, skip the
        # walk entirely and only report the critical path (non-exhaustive).
        approx_count = task.dag.count_complete_paths(limit=self.max_paths + 1)
        if approx_count > self.max_paths:
            result = PathEnumerationResult(
                profiles=[task.critical_path_profile()],
                exhaustive=False,
                total_paths_seen=0,
            )
            self._cache[key] = result
            return result

        profiles: Dict[Tuple, PathProfile] = {}
        exhaustive = True
        seen = 0
        for vertices in task.dag.iter_complete_paths():
            seen += 1
            profile = task.path_profile(vertices)
            signature = profile.signature()
            if signature not in profiles:
                profiles[signature] = profile
                if len(profiles) > self.max_signatures:
                    exhaustive = False
                    break
            if seen >= self.max_paths:
                exhaustive = seen >= approx_count
                break

        if not profiles:
            profiles_list = [task.critical_path_profile()]
        else:
            profiles_list = list(profiles.values())
        result = PathEnumerationResult(
            profiles=profiles_list,
            exhaustive=exhaustive,
            total_paths_seen=seen,
        )
        self._cache[key] = result
        return result

    def clear(self) -> None:
        """Drop all cached enumerations."""
        self._cache.clear()


def critical_path_only(task: DAGTask) -> PathEnumerationResult:
    """A degenerate enumeration containing only the critical path.

    Used by the EN-style analyses, which reason about the longest path and
    treat the per-resource request counts as free variables.
    """
    return PathEnumerationResult(
        profiles=[task.critical_path_profile()],
        exhaustive=False,
        total_paths_seen=1,
    )
