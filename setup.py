"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e .``) on offline machines where
PEP 660 editable wheels cannot be built.
"""

from setuptools import setup

setup()
