"""Tests for the DAG generator and the period generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation.dag_gen import DagGenerationConfig, erdos_renyi_dag, random_dag
from repro.generation.periods import (
    DEFAULT_PERIOD_RANGE_US,
    log_uniform_period,
    log_uniform_periods,
)
from repro.generation.randfixedsum import GenerationError


# --------------------------------------------------------------------------- #
# DAG generation
# --------------------------------------------------------------------------- #
def test_erdos_renyi_respects_vertex_count():
    dag = erdos_renyi_dag(15, 0.2, rng=0)
    assert dag.num_vertices == 15
    # Acyclic by construction — topological sort succeeds.
    assert len(dag.topological_order()) == 15


def test_erdos_renyi_edge_probability_extremes():
    empty = erdos_renyi_dag(10, 0.0, rng=1)
    assert empty.num_edges == 0
    full = erdos_renyi_dag(10, 1.0, rng=1)
    assert full.num_edges == 10 * 9 // 2


def test_erdos_renyi_edges_follow_vertex_order():
    dag = erdos_renyi_dag(20, 0.3, rng=2)
    for src, dst in dag.edges:
        assert src < dst


def test_erdos_renyi_invalid_inputs():
    with pytest.raises(GenerationError):
        erdos_renyi_dag(0, 0.1)
    with pytest.raises(GenerationError):
        erdos_renyi_dag(5, 1.5)


def test_erdos_renyi_deterministic_with_seed():
    a = erdos_renyi_dag(12, 0.25, rng=99)
    b = erdos_renyi_dag(12, 0.25, rng=99)
    assert a.edges == b.edges


def test_random_dag_respects_config_range():
    config = DagGenerationConfig(num_vertices_range=(5, 9), edge_probability=0.2)
    for seed in range(10):
        dag = random_dag(config, rng=seed)
        assert 5 <= dag.num_vertices <= 9


def test_dag_config_validation():
    with pytest.raises(GenerationError):
        DagGenerationConfig(num_vertices_range=(5, 3))
    with pytest.raises(GenerationError):
        DagGenerationConfig(edge_probability=2.0)


@given(
    n=st.integers(min_value=1, max_value=40),
    p=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_generated_graphs_are_dags(n, p, seed):
    dag = erdos_renyi_dag(n, p, rng=seed)
    order = dag.topological_order()
    assert sorted(order) == list(range(n))
    assert dag.num_edges <= n * (n - 1) // 2


# --------------------------------------------------------------------------- #
# Periods
# --------------------------------------------------------------------------- #
def test_period_within_default_range():
    for seed in range(20):
        period = log_uniform_period(rng=seed)
        assert DEFAULT_PERIOD_RANGE_US[0] <= period <= DEFAULT_PERIOD_RANGE_US[1]


def test_periods_vector_shape_and_range():
    periods = log_uniform_periods(100, 1e3, 1e5, rng=5)
    assert periods.shape == (100,)
    assert (periods >= 1e3).all()
    assert (periods <= 1e5).all()


def test_periods_log_uniform_spread():
    periods = log_uniform_periods(4000, 1e4, 1e6, rng=11)
    # Under a log-uniform law, about half the mass lies below the geometric
    # mean of the bounds (1e5).
    below = float(np.mean(periods < 1e5))
    assert 0.4 < below < 0.6


def test_period_invalid_ranges():
    with pytest.raises(GenerationError):
        log_uniform_period(0.0, 10.0)
    with pytest.raises(GenerationError):
        log_uniform_period(100.0, 10.0)
    with pytest.raises(GenerationError):
        log_uniform_periods(-1)
