"""Tests for resource-demand generation and the full task-set generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation.dag_gen import DagGenerationConfig
from repro.generation.randfixedsum import GenerationError
from repro.generation.resources_gen import (
    ResourceDemandDraw,
    ResourceGenerationConfig,
    distribute_requests_over_vertices,
    draw_num_resources,
    draw_task_demands,
    scale_demands_to_budget,
)
from repro.generation.taskset_gen import (
    TaskSetGenerationConfig,
    generate_task,
    generate_taskset,
)
from repro.model.task import validate_taskset


# --------------------------------------------------------------------------- #
# Resource demand generation
# --------------------------------------------------------------------------- #
def test_resource_config_validation():
    with pytest.raises(GenerationError):
        ResourceGenerationConfig(num_resources_range=(4, 2))
    with pytest.raises(GenerationError):
        ResourceGenerationConfig(access_probability=1.5)
    with pytest.raises(GenerationError):
        ResourceGenerationConfig(request_count_range=(0, 5))
    with pytest.raises(GenerationError):
        ResourceGenerationConfig(cs_length_range=(50.0, 15.0))


def test_draw_num_resources_range():
    config = ResourceGenerationConfig(num_resources_range=(4, 8))
    for seed in range(20):
        assert 4 <= draw_num_resources(config, rng=seed) <= 8


def test_draw_task_demands_respects_probability_extremes():
    always = ResourceGenerationConfig(access_probability=1.0)
    never = ResourceGenerationConfig(access_probability=0.0)
    assert len(draw_task_demands(6, always, rng=0)) == 6
    assert draw_task_demands(6, never, rng=0) == []


def test_draw_task_demands_parameter_ranges():
    config = ResourceGenerationConfig(
        access_probability=1.0,
        request_count_range=(3, 7),
        cs_length_range=(10.0, 20.0),
    )
    for demand in draw_task_demands(5, config, rng=1):
        assert 3 <= demand.max_requests <= 7
        assert 10.0 <= demand.cs_length <= 20.0


def test_scale_demands_to_budget_noop_when_fits():
    demands = [ResourceDemandDraw(0, 4, 10.0)]
    assert scale_demands_to_budget(demands, 100.0) == demands


def test_scale_demands_to_budget_shrinks_counts():
    demands = [ResourceDemandDraw(0, 10, 10.0), ResourceDemandDraw(1, 10, 10.0)]
    scaled = scale_demands_to_budget(demands, 100.0)
    total = sum(d.max_requests * d.cs_length for d in scaled)
    assert total <= 100.0 + 1e-9
    assert all(d.max_requests >= 1 for d in scaled)


def test_scale_demands_to_budget_can_drop_resources():
    demands = [ResourceDemandDraw(0, 1, 10.0), ResourceDemandDraw(1, 1, 10.0)]
    scaled = scale_demands_to_budget(demands, 5.0)
    assert scaled == []  # neither single request fits half of one CS


def test_scale_demands_rejects_negative_budget():
    with pytest.raises(GenerationError):
        scale_demands_to_budget([], -1.0)


def test_distribute_requests_over_vertices_sums():
    split = distribute_requests_over_vertices(20, 5, rng=0)
    assert sum(split.values()) == 20
    assert all(0 <= v < 5 for v in split)
    assert distribute_requests_over_vertices(0, 5, rng=0) == {}


@given(
    total=st.integers(min_value=0, max_value=100),
    vertices=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_request_distribution(total, vertices, seed):
    split = distribute_requests_over_vertices(total, vertices, rng=seed)
    assert sum(split.values()) == total
    assert all(0 <= vertex < vertices for vertex in split)
    assert all(count > 0 for count in split.values())


# --------------------------------------------------------------------------- #
# Task and task-set generation
# --------------------------------------------------------------------------- #
def small_config(**overrides):
    defaults = dict(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(8, 15), edge_probability=0.15),
        resources=ResourceGenerationConfig(
            num_resources_range=(2, 4),
            access_probability=0.8,
            request_count_range=(1, 6),
            cs_length_range=(15.0, 50.0),
        ),
    )
    defaults.update(overrides)
    return TaskSetGenerationConfig(**defaults)


def test_generate_task_matches_requested_utilization():
    config = small_config()
    task = generate_task(0, 1.7, 3, config, rng=7)
    assert task.utilization == pytest.approx(1.7, rel=1e-6)
    assert task.critical_path_length < config.critical_path_fraction * task.deadline
    assert task.deadline == task.period


def test_generate_task_respects_cs_budget():
    config = small_config()
    task = generate_task(0, 1.2, 4, config, rng=3)
    cs_total = sum(u.total_cs_time for u in task.resource_usages.values())
    assert cs_total <= config.cs_budget_fraction * task.wcet + 1e-6
    for vertex in task.vertices:
        floor = sum(c * task.cs_length(r) for r, c in vertex.requests.items())
        assert vertex.wcet >= floor - 1e-6


def test_generate_taskset_total_utilization_and_priorities():
    config = small_config()
    taskset = generate_taskset(6.0, config, rng=11)
    assert taskset.total_utilization == pytest.approx(6.0, rel=1e-6)
    priorities = [t.priority for t in taskset]
    assert len(set(priorities)) == len(priorities)
    # Rate monotonic: shorter period -> higher priority.
    ordered = sorted(taskset, key=lambda t: t.period)
    for earlier, later in zip(ordered, ordered[1:]):
        assert earlier.priority > later.priority
    assert validate_taskset(taskset) == []


def test_generate_taskset_is_deterministic_per_seed():
    config = small_config()
    a = generate_taskset(4.0, config, rng=5)
    b = generate_taskset(4.0, config, rng=5)
    assert len(a) == len(b)
    for task_a, task_b in zip(a, b):
        assert task_a.period == pytest.approx(task_b.period)
        assert task_a.wcet == pytest.approx(task_b.wcet)
        assert task_a.dag.edges == task_b.dag.edges


def test_generate_taskset_different_seeds_differ():
    config = small_config()
    a = generate_taskset(4.0, config, rng=5)
    b = generate_taskset(4.0, config, rng=6)
    assert any(
        abs(ta.period - tb.period) > 1e-6 for ta, tb in zip(a, b)
    ) or len(a) != len(b)


def test_taskset_generation_config_validation():
    with pytest.raises(GenerationError):
        TaskSetGenerationConfig(average_utilization=0.0)
    with pytest.raises(GenerationError):
        TaskSetGenerationConfig(critical_path_fraction=0.0)
    with pytest.raises(GenerationError):
        TaskSetGenerationConfig(cs_budget_fraction=1.5)


@given(
    total=st.floats(min_value=1.5, max_value=8.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=15, deadline=None)
def test_property_generated_tasksets_are_plausible(total, seed):
    config = small_config()
    taskset = generate_taskset(total, config, rng=seed)
    assert taskset.total_utilization == pytest.approx(total, rel=1e-5)
    assert validate_taskset(taskset) == []
    for task in taskset:
        assert task.critical_path_length < task.deadline / 2 + 1e-6
        assert task.non_critical_wcet >= -1e-6
