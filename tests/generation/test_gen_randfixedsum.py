"""Tests for the RandFixedSum utilization generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generation.randfixedsum import (
    GenerationError,
    rand_fixed_sum,
    utilizations_for_total,
)


def test_values_sum_to_total_and_respect_bounds():
    values = rand_fixed_sum(5, 7.5, 1.0, 3.0, nsets=20, rng=1)
    assert values.shape == (20, 5)
    np.testing.assert_allclose(values.sum(axis=1), 7.5, rtol=1e-9)
    assert (values >= 1.0 - 1e-9).all()
    assert (values <= 3.0 + 1e-9).all()


def test_single_value_case():
    values = rand_fixed_sum(1, 2.0, 1.0, 3.0, nsets=3, rng=0)
    np.testing.assert_allclose(values, 2.0)


def test_degenerate_equal_bounds():
    values = rand_fixed_sum(4, 8.0, 2.0, 2.0, nsets=2, rng=0)
    np.testing.assert_allclose(values, 2.0)


def test_infeasible_requests_raise():
    with pytest.raises(GenerationError):
        rand_fixed_sum(3, 10.0, 1.0, 2.0)  # max sum is 6
    with pytest.raises(GenerationError):
        rand_fixed_sum(3, 1.0, 1.0, 2.0)  # min sum is 3
    with pytest.raises(GenerationError):
        rand_fixed_sum(0, 1.0, 0.0, 2.0)
    with pytest.raises(GenerationError):
        rand_fixed_sum(3, 3.0, 2.0, 1.0)  # high < low


def test_deterministic_with_seed():
    a = rand_fixed_sum(4, 6.0, 1.0, 2.0, nsets=5, rng=42)
    b = rand_fixed_sum(4, 6.0, 1.0, 2.0, nsets=5, rng=42)
    np.testing.assert_allclose(a, b)


def test_distribution_is_not_degenerate():
    values = rand_fixed_sum(4, 6.0, 1.0, 2.0, nsets=200, rng=7)
    # Different coordinates should not all be identical across draws.
    assert values.std() > 0.05


@given(
    n=st.integers(min_value=1, max_value=10),
    frac=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_sum_and_bounds(n, frac, seed):
    low, high = 1.0, 4.0
    total = n * low + frac * n * (high - low)
    values = rand_fixed_sum(n, total, low, high, nsets=1, rng=seed)[0]
    assert values.sum() == pytest.approx(total, rel=1e-6)
    assert (values >= low - 1e-6).all()
    assert (values <= high + 1e-6).all()


# --------------------------------------------------------------------------- #
# utilizations_for_total
# --------------------------------------------------------------------------- #
def test_utilizations_sum_and_range():
    utilizations = utilizations_for_total(9.0, 1.5, rng=3)
    assert sum(utilizations) == pytest.approx(9.0)
    assert all(1.0 - 1e-9 <= u <= 3.0 + 1e-9 for u in utilizations)
    # n is driven by the average utilization.
    assert len(utilizations) == 6


def test_small_total_yields_single_task():
    assert utilizations_for_total(0.8, 1.5, rng=0) == [0.8]


def test_total_exactly_average():
    utilizations = utilizations_for_total(1.5, 1.5, rng=0)
    assert sum(utilizations) == pytest.approx(1.5)
    assert len(utilizations) == 1


def test_invalid_inputs_raise():
    with pytest.raises(GenerationError):
        utilizations_for_total(-1.0, 1.5)
    with pytest.raises(GenerationError):
        utilizations_for_total(5.0, 0.0)


@given(
    total=st.floats(min_value=0.5, max_value=40.0),
    uavg=st.sampled_from([1.5, 2.0]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=80, deadline=None)
def test_property_utilizations_for_total(total, uavg, seed):
    utilizations = utilizations_for_total(total, uavg, rng=seed)
    assert sum(utilizations) == pytest.approx(total, rel=1e-6)
    assert all(u <= 2 * uavg + 1e-9 for u in utilizations)
    assert all(u > 0 for u in utilizations)
