"""Shared fixtures of the service test suite: an in-process daemon and
tiny fixed-seed submissions that keep every test fast and deterministic."""

from __future__ import annotations

import pytest

from repro.campaign.planner import config_to_dict, plan_campaign, scenario_to_dict
from repro.experiments.runner import SweepConfig
from repro.experiments.scenarios import Scenario
from repro.service import ServiceClient, ServiceDaemon, SubmitCampaign, SubmitQuery

#: A deliberately tiny scenario: small platform, few vertices, cheap analysis.
TINY_SCENARIO = Scenario(
    platform_size=8,
    resource_count_range=(2, 3),
    average_utilization=0.5,
    access_probability=0.3,
    request_count_range=(1, 3),
    cs_length_range=(1, 15),
    num_vertices_range=(6, 10),
    edge_probability=0.1,
)

#: The cheap sweep every campaign test uses: 2 points x 2 samples.
TINY_SWEEP = SweepConfig(
    samples_per_point=2, utilization_step_fraction=0.25, seed=7
)


def _tiny_query(seed: int = 42, utilization: float = 2.0) -> SubmitQuery:
    """One fixed-seed query over the tiny scenario."""
    return SubmitQuery(
        scenario=scenario_to_dict(TINY_SCENARIO),
        utilization=utilization,
        samples=2,
        seed=seed,
        protocols=("SPIN", "FED-FP"),
    )


def _tiny_campaign(workers: int = 1, max_attempts: int = 3) -> SubmitCampaign:
    """One fixed-seed campaign job over the tiny scenario (4 units)."""
    return SubmitCampaign(
        scenarios=(scenario_to_dict(TINY_SCENARIO),),
        sweep=config_to_dict(TINY_SWEEP),
        protocols=("SPIN", "FED-FP"),
        workers=workers,
        max_attempts=max_attempts,
    )


@pytest.fixture
def tiny_query():
    """Factory fixture: fixed-seed queries over the tiny scenario."""
    return _tiny_query


@pytest.fixture
def tiny_campaign():
    """Factory fixture: fixed-seed campaign submissions (4 work units)."""
    return _tiny_campaign


@pytest.fixture
def tiny_plan():
    """The campaign plan behind the tiny submissions (unit ids and all)."""
    return plan_campaign([TINY_SCENARIO], TINY_SWEEP, ["SPIN", "FED-FP"])


@pytest.fixture
def daemon(tmp_path):
    """An in-process service daemon on an ephemeral loopback port."""
    service = ServiceDaemon(data_dir=str(tmp_path / "svc"), workers=2).start()
    yield service
    service.stop(wait_jobs=False)


@pytest.fixture
def connect(daemon):
    """Factory opening typed client connections to the test daemon."""
    clients = []

    def _connect() -> ServiceClient:
        client = ServiceClient(*daemon.address, timeout=120.0)
        clients.append(client)
        return client

    yield _connect
    for client in clients:
        client.close()
