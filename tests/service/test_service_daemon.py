"""End-to-end daemon tests over a real socket: protocol resilience, typed
errors, progress push streams, report aggregation, the documented protocol
reference, service events, shutdown — and the acceptance criterion that a
campaign run through the service produces the same store as the batch CLI."""

from __future__ import annotations

import json
import os
import socket

import pytest

from repro.campaign import cli
from repro.campaign.planner import (
    config_to_dict,
    grid_scenarios,
    scenario_to_dict,
    select_scenarios,
)
from repro.campaign.store import CampaignStore
from repro.experiments.runner import SweepConfig
from repro.obs.sink import events_path, iter_event_records
from repro.service import ServiceDaemon
from repro.service.messages import (
    ERR_INVALID,
    ERR_MALFORMED,
    ERR_UNKNOWN_JOB,
    ERR_UNKNOWN_TYPE,
    ERR_VERSION,
    PROTOCOL_VERSION,
    ErrorReply,
    GetStats,
    ProgressEvent,
    ReportReady,
    ResultReady,
    ShuttingDown,
    StatsReply,
    SubmitCampaign,
    decode_frame,
    render_protocol_reference,
)

#: Store record fields that legitimately differ between runs.
VOLATILE_FIELDS = ("completed_at", "elapsed_seconds")


def _stripped_records(directory):
    """Result payloads of a store keyed by unit id, timing stripped."""
    records = CampaignStore(directory).load_records()
    return {
        unit_id: {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}
        for unit_id, record in records.items()
    }


# --------------------------------------------------------------------------- #
# Protocol resilience on a live socket
# --------------------------------------------------------------------------- #
def test_bad_frames_get_typed_errors_and_never_kill_the_connection(daemon):
    sock = socket.create_connection(daemon.address, timeout=60.0)
    reader = sock.makefile("rb")
    try:
        probes = [
            (b"this is not json\n", ERR_MALFORMED),
            (b'"a bare string"\n', ERR_MALFORMED),
            (
                json.dumps(
                    {"type": "get_stats", "v": PROTOCOL_VERSION + 7}
                ).encode() + b"\n",
                ERR_VERSION,
            ),
            (
                json.dumps(
                    {"type": "no_such_message", "v": PROTOCOL_VERSION}
                ).encode() + b"\n",
                ERR_UNKNOWN_TYPE,
            ),
            (
                json.dumps(
                    {"type": "get_status", "v": PROTOCOL_VERSION}
                ).encode() + b"\n",
                ERR_INVALID,
            ),
        ]
        for frame, expected_code in probes:
            sock.sendall(frame)
            reply = decode_frame(reader.readline())
            assert isinstance(reply, ErrorReply), (frame, reply)
            assert reply.code == expected_code
        # After every abuse above, the very same connection still serves a
        # well-formed request.
        sock.sendall(GetStats().encode())
        reply = decode_frame(reader.readline())
        assert isinstance(reply, StatsReply)
    finally:
        reader.close()
        sock.close()


def test_unknown_job_and_query_report_are_typed_errors(
    daemon, connect, tiny_query
):
    client = connect()
    reply = client.status("q-0000000000000000")
    assert isinstance(reply, ErrorReply)
    assert reply.code == ERR_UNKNOWN_JOB
    assert reply.job_id == "q-0000000000000000"

    # Reports cover campaign jobs; asking for a query's is invalid_payload.
    accepted, _ = client.query(tiny_query(seed=11))
    reply = client.report(accepted.job_id)
    assert isinstance(reply, ErrorReply)
    assert reply.code == ERR_INVALID


def test_invalid_submissions_are_rejected_not_fatal(daemon, connect, tiny_query):
    client = connect()
    bad = tiny_query()
    bad = type(bad)(
        scenario={"platform_size": 8},  # missing required scenario fields
        utilization=bad.utilization,
        samples=bad.samples,
        seed=bad.seed,
        protocols=bad.protocols,
    )
    client.send(bad)
    reply = client.recv()
    assert isinstance(reply, ErrorReply)
    assert reply.code == ERR_INVALID

    unknown_protocol = tiny_query()
    unknown_protocol = type(unknown_protocol)(
        scenario=unknown_protocol.scenario,
        utilization=unknown_protocol.utilization,
        samples=unknown_protocol.samples,
        seed=unknown_protocol.seed,
        protocols=("NO-SUCH-PROTOCOL",),
    )
    client.send(unknown_protocol)
    reply = client.recv()
    assert isinstance(reply, ErrorReply)
    assert reply.code == ERR_INVALID

    # The daemon survives both rejections and still answers real work.
    _, ready = client.query(tiny_query(seed=12))
    assert ready.result["seed"] == 12


# --------------------------------------------------------------------------- #
# Progress pushes and reports
# --------------------------------------------------------------------------- #
def test_campaign_progress_streams_to_the_submitter(
    daemon, connect, tiny_campaign
):
    client = connect()
    accepted = client.submit(tiny_campaign(workers=1))
    events = list(client.progress(accepted.job_id))
    ready = client.wait_result(accepted.job_id)

    assert ready.exit_code == 0
    assert events, "no progress events were pushed"
    assert all(isinstance(event, ProgressEvent) for event in events)
    assert [event.done for event in events] == list(
        range(1, len(events) + 1)
    ), "progress must be monotonic"
    assert events[-1].done == events[-1].total == ready.result["total"]
    assert all(event.unit_id for event in events), (
        "freshly executed units carry their unit id"
    )


def test_report_over_the_wire_matches_the_finished_campaign(
    daemon, connect, tiny_campaign
):
    client = connect()
    accepted, ready = client.campaign(tiny_campaign(workers=1))
    assert ready.exit_code == 0

    report = client.report(accepted.job_id)
    assert isinstance(report, ReportReady)
    assert report.exit_code == 0
    assert report.report["complete"] is True
    assert report.report["completed_units"] == ready.result["total"]
    assert report.report["quarantined"] == []
    acceptance = report.report["weighted_acceptance"]
    assert set(acceptance) == {"SPIN", "FED-FP"}
    for rate in acceptance.values():
        assert 0.0 <= rate <= 1.0

    # A second request is served through the report cache.
    again = client.report(accepted.job_id)
    assert isinstance(again, ReportReady)
    assert again.report["weighted_acceptance"] == acceptance
    assert again.report["cache_hit"] is True


# --------------------------------------------------------------------------- #
# Acceptance: the service's durable store equals the batch CLI's
# --------------------------------------------------------------------------- #
def test_campaign_via_service_matches_the_batch_cli_store(
    daemon, connect, tmp_path
):
    """The same campaign through `campaign run` and through the daemon must
    yield stores with the same config hash and record-identical results
    (modulo wall-clock timestamps)."""
    scenarios = select_scenarios(
        grid_scenarios("fig2", num_vertices_range=(5, 8)), "m=16"
    )
    sweep = SweepConfig(
        samples_per_point=2, utilization_step_fraction=0.5, seed=2020
    )

    cli_store = str(tmp_path / "cli-store")
    assert cli.main([
        "run", "--store", cli_store,
        "--grid", "fig2", "--filter", "m=16",
        "--samples", "2", "--step", "0.5", "--vertices", "5,8",
        "--protocols", "SPIN,FED-FP", "--seed", "2020", "--quiet",
    ]) == 0

    client = connect()
    _, ready = client.campaign(
        SubmitCampaign(
            scenarios=tuple(scenario_to_dict(s) for s in scenarios),
            sweep=config_to_dict(sweep),
            protocols=("SPIN", "FED-FP"),
            workers=1,
        )
    )
    assert ready.exit_code == 0
    service_store = ready.result["store_directory"]

    with open(os.path.join(cli_store, "manifest.json")) as handle:
        cli_manifest = json.load(handle)
    with open(os.path.join(service_store, "manifest.json")) as handle:
        service_manifest = json.load(handle)
    assert cli_manifest["config_hash"] == service_manifest["config_hash"]
    assert ready.result["config_hash"] == cli_manifest["config_hash"]

    cli_records = _stripped_records(cli_store)
    service_records = _stripped_records(service_store)
    assert cli_records == service_records
    assert len(cli_records) == ready.result["total"] == 4


# --------------------------------------------------------------------------- #
# Observability and lifecycle
# --------------------------------------------------------------------------- #
def test_service_events_record_the_whole_lifecycle(
    daemon, connect, tiny_query, tiny_campaign
):
    client = connect()
    client.query(tiny_query(seed=31))
    client.query(tiny_query(seed=31))  # cache hit — still admitted
    client.campaign(tiny_campaign(workers=1))

    records = [
        record
        for record, _ in iter_event_records(events_path(daemon.data_dir))
    ]
    types = [record.get("type") for record in records]
    assert types[0] == "service_started"
    assert types.count("job_admitted") == 3
    assert types.count("job_finished") == 2  # the cache hit spawned no job

    admitted = [r for r in records if r.get("type") == "job_admitted"]
    assert [r["kind"] for r in admitted] == ["query", "query", "campaign"]
    assert admitted[1]["cached"] is True
    started = next(r for r in records if r.get("type") == "service_started")
    assert (started["host"], started["port"]) == daemon.address
    assert started["data_dir"] == daemon.data_dir


def test_stats_reply_reflects_the_work_done(daemon, connect, tiny_query):
    client = connect()
    client.query(tiny_query(seed=21))
    client.query(tiny_query(seed=21))
    stats = client.stats()
    counters = stats.counters["counters"]
    assert counters["service.queries"] == 1
    assert counters["service.cache.hits"] == 1
    assert stats.counters["jobs"] == {"done": 1}
    assert stats.counters["cache_entries"] == 1


def test_shutdown_message_stops_the_daemon(tmp_path):
    service = ServiceDaemon(data_dir=str(tmp_path / "svc"), workers=1).start()
    try:
        from repro.service import ServiceClient

        with ServiceClient(*service.address, timeout=60.0) as client:
            farewell = client.shutdown()
            assert isinstance(farewell, ShuttingDown)
        # The listening socket goes away: fresh connections are refused.
        for _ in range(200):
            try:
                probe = socket.create_connection(service.address, timeout=0.25)
            except OSError:
                break
            probe.close()
        else:
            pytest.fail("daemon kept accepting connections after Shutdown")
    finally:
        service.stop(wait_jobs=False)  # idempotent


# --------------------------------------------------------------------------- #
# The documented protocol is the implemented protocol
# --------------------------------------------------------------------------- #
def test_docs_pin_the_generated_protocol_reference():
    docs = os.path.join(os.path.dirname(__file__), "..", "..", "docs", "service.md")
    with open(docs, encoding="utf-8") as handle:
        text = handle.read()
    reference = render_protocol_reference()
    assert reference.strip() in text, (
        "docs/service.md is stale: regenerate the protocol reference with "
        "`python -m repro.service protocol` and paste it in"
    )


def test_service_cli_prints_the_protocol_reference(capsys):
    from repro.service.__main__ import main

    assert main(["protocol"]) == 0
    out = capsys.readouterr().out
    assert render_protocol_reference().strip() in out


def test_result_ready_fan_out_is_byte_identical_for_cache_hits(
    daemon, connect, tiny_query
):
    first = connect()
    second = connect()
    _, ready_first = first.query(tiny_query(seed=61))
    accepted, ready_second = second.query(tiny_query(seed=61))
    assert accepted.cached
    assert isinstance(ready_first, ResultReady)
    assert ready_first.encode() == ready_second.encode()
