"""Fault-path tests of the service daemon, reusing the campaign fault
injector: a killed worker quarantines its unit and fails the job with a
typed error; resubmitting the identical job heals from the durable store
bit-identically; transient faults retry invisibly."""

from __future__ import annotations

import json
import os

from repro.campaign import faultinject
from repro.campaign.executor import RetryPolicy, build_protocols, execute_units
from repro.campaign.faultinject import (
    ENV_VAR,
    FAULT_KILL,
    FAULT_RAISE,
    FaultPlan,
    FaultSpec,
    write_plan,
)
from repro.campaign.planner import campaign_manifest
from repro.campaign.store import CampaignStore
from repro.obs.sink import events_path, iter_event_records

#: Store fields that legitimately differ between runs of the same campaign.
VOLATILE_FIELDS = ("completed_at", "elapsed_seconds")


def _payload(record):
    """A store record with its volatile (timing) fields stripped."""
    return {k: v for k, v in record.items() if k not in VOLATILE_FIELDS}


def _store_payloads(directory):
    """Stripped result payloads of a store, keyed by unit id."""
    store = CampaignStore(directory)
    return {
        unit_id: _payload(record)
        for unit_id, record in store.load_records().items()
    }


def _activate(monkeypatch, tmp_path, *faults, seed=0):
    """Write a fault plan, point the environment at it, return its path."""
    state = str(tmp_path / "fault-state")
    path = write_plan(
        FaultPlan(faults=tuple(faults), seed=seed, state_dir=state),
        str(tmp_path / "fault-plan.json"),
    )
    monkeypatch.setenv(ENV_VAR, path)
    faultinject.clear_plan_cache()
    return path


def _deactivate(monkeypatch):
    """Clear the fault plan so subsequent executions run clean."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faultinject.clear_plan_cache()


def _event_types(directory):
    return [
        record.get("type")
        for record, _ in iter_event_records(events_path(directory))
    ]


def test_worker_kill_quarantines_unit_and_fails_job_with_typed_error(
    daemon, connect, tiny_campaign, tiny_plan, monkeypatch, tmp_path
):
    plan = tiny_plan
    victim = plan.units[1].unit_id
    _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_KILL, times=0, unit_ids=(victim,)),
    )

    client = connect()
    accepted, ready = client.campaign(tiny_campaign(workers=2, max_attempts=2))

    # The job reaches a typed failed state, not a hang or a crash.
    assert ready.exit_code == 3
    assert ready.result["quarantined"] == [victim]
    assert ready.result["completed"] == len(plan.units) - 1

    status = client.status(accepted.job_id)
    assert status.state == "failed"
    assert status.exit_code == 3
    assert status.error_kind == "unit_quarantined"
    assert victim in status.error_message

    # The unit is quarantined in the durable store with the crash kind.
    store = CampaignStore(ready.result["store_directory"])
    quarantine = store.unresolved_quarantine()
    assert set(quarantine) == {victim}
    assert quarantine[victim]["error_kind"] == "worker_crash"

    # The daemon's event stream saw the whole story.
    events = _event_types(daemon.data_dir)
    assert "pool_crashed" in events
    assert "unit_quarantined" in events
    assert "job_finished" in events


def test_resubmitted_identical_job_heals_from_the_durable_store(
    daemon, connect, tiny_campaign, tiny_plan, monkeypatch, tmp_path
):
    plan = tiny_plan
    victim = plan.units[2].unit_id
    _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_KILL, times=0, unit_ids=(victim,)),
    )

    client = connect()
    submission = tiny_campaign(workers=2, max_attempts=2)
    accepted_faulty, ready_faulty = client.campaign(submission)
    assert ready_faulty.exit_code == 3
    store_dir = ready_faulty.result["store_directory"]
    surviving = _store_payloads(store_dir)
    assert victim not in surviving
    with open(os.path.join(store_dir, "results.jsonl"), "rb") as handle:
        surviving_bytes = handle.read()

    # Heal: clear the fault and resubmit the *identical* job.
    _deactivate(monkeypatch)
    accepted_healed, ready_healed = client.campaign(submission)

    # Same job identity (config hash), now complete.
    assert accepted_healed.job_id == accepted_faulty.job_id
    assert ready_healed.exit_code == 0
    assert ready_healed.result["store_directory"] == store_dir
    assert ready_healed.result["quarantined"] == []
    assert ready_healed.result["completed"] == len(plan.units)

    # The healed store: previously finished units' raw bytes are untouched
    # (resume restored them, never re-executed them)...
    with open(os.path.join(store_dir, "results.jsonl"), "rb") as handle:
        healed_bytes = handle.read()
    assert healed_bytes.startswith(surviving_bytes)

    # ...and the whole store is bit-identical (modulo volatile timing
    # fields) to a fault-free from-scratch execution of the same campaign.
    protocols = build_protocols(
        plan.protocol_names, plan.config.max_path_signatures
    )
    clean_dir = str(tmp_path / "clean-store")
    clean_store = CampaignStore(clean_dir)
    clean_store.initialize(campaign_manifest(plan))
    execute_units(
        plan.units,
        protocols,
        store=clean_store,
        retry=RetryPolicy(backoff_base=0.0),
    )
    assert _store_payloads(store_dir) == _store_payloads(clean_dir)

    # Identical manifests too: the service derived the same campaign.
    with open(os.path.join(store_dir, "manifest.json")) as handle:
        service_manifest = json.load(handle)
    with open(os.path.join(clean_dir, "manifest.json")) as handle:
        clean_manifest = json.load(handle)
    assert service_manifest["config_hash"] == clean_manifest["config_hash"]


def test_transient_raise_fault_is_retried_to_success(
    daemon, connect, tiny_campaign, tiny_plan, monkeypatch, tmp_path
):
    plan = tiny_plan
    victim = plan.units[0].unit_id
    _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_RAISE, times=1, unit_ids=(victim,)),
    )

    client = connect()
    _, ready = client.campaign(tiny_campaign(workers=1, max_attempts=3))

    # One transient failure, then success: the job completes cleanly.
    assert ready.exit_code == 0
    assert ready.result["quarantined"] == []
    assert "unit_retried" in _event_types(daemon.data_dir)
    store = CampaignStore(ready.result["store_directory"])
    assert not store.unresolved_quarantine()
