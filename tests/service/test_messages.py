"""Property tests of the service wire protocol: every registered message type
round-trips through its frame, tolerates unknown fields, reports version
mismatches as typed errors, and never lets a malformed frame crash the
decoder."""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.messages import (
    DIRECTION_EVENT,
    DIRECTION_REPLY,
    DIRECTION_REQUEST,
    ENVELOPE_KEYS,
    ERR_INVALID,
    ERR_MALFORMED,
    ERR_UNKNOWN_TYPE,
    ERR_VERSION,
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    ErrorReply,
    Message,
    ProtocolError,
    SubmitQuery,
    decode_frame,
    render_protocol_reference,
)

# --------------------------------------------------------------------------- #
# Strategies: build instances of every registered type from its dataclass
# fields, so newly added message types are covered automatically.
# --------------------------------------------------------------------------- #
_JSON_SCALARS = (
    st.integers(-10**6, 10**6)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=8)
    | st.booleans()
)
_JSON_DICTS = st.dictionaries(st.text(max_size=8), _JSON_SCALARS, max_size=4)

#: Field-annotation string → value strategy.  ``from __future__ import
#: annotations`` keeps the annotations as strings, which is exactly what we
#: match on.
_FIELD_STRATEGIES = {
    "str": st.text(max_size=16),
    "int": st.integers(-10**6, 10**6),
    "float": st.floats(allow_nan=False, allow_infinity=False, width=32),
    "bool": st.booleans(),
    "Tuple[str, ...]": st.lists(st.text(max_size=8), max_size=4).map(tuple),
    "Dict[str, Any]": _JSON_DICTS,
    "Tuple[Dict[str, Any], ...]": st.lists(_JSON_DICTS, max_size=3).map(tuple),
}


def _message_strategy(cls):
    """A strategy building instances of one message dataclass."""
    kwargs = {}
    for field in dataclasses.fields(cls):
        annotation = str(field.type)
        if annotation not in _FIELD_STRATEGIES:
            raise AssertionError(
                f"{cls.__name__}.{field.name} has unsupported annotation "
                f"{annotation!r}; teach _FIELD_STRATEGIES about it"
            )
        kwargs[field.name] = _FIELD_STRATEGIES[annotation]
    return st.builds(cls, **kwargs)


_ANY_MESSAGE = st.sampled_from(sorted(MESSAGE_TYPES)).flatmap(
    lambda name: _message_strategy(MESSAGE_TYPES[name])
)


# --------------------------------------------------------------------------- #
# Registry invariants
# --------------------------------------------------------------------------- #
def test_registry_covers_every_type_once():
    assert MESSAGE_TYPES, "no message types registered"
    for name, cls in MESSAGE_TYPES.items():
        assert cls.TYPE == name
        assert cls.DIRECTION in (
            DIRECTION_REQUEST,
            DIRECTION_REPLY,
            DIRECTION_EVENT,
        )
        assert cls.__doc__, f"{cls.__name__} lacks a docstring"
        assert dataclasses.is_dataclass(cls)
        # Frozen: messages are values.
        assert cls.__dataclass_params__.frozen


def test_no_payload_field_shadows_the_envelope():
    for cls in MESSAGE_TYPES.values():
        names = {field.name for field in dataclasses.fields(cls)}
        assert not names.intersection(ENVELOPE_KEYS), cls.__name__


def test_protocol_reference_mentions_every_type_and_error_code():
    reference = render_protocol_reference()
    for name in MESSAGE_TYPES:
        assert f"`{name}`" in reference
    for code in (ERR_MALFORMED, ERR_VERSION, ERR_UNKNOWN_TYPE, ERR_INVALID):
        assert code in reference
    assert str(PROTOCOL_VERSION) in reference


# --------------------------------------------------------------------------- #
# Round-trip identity
# --------------------------------------------------------------------------- #
@settings(max_examples=200, deadline=None)
@given(message=_ANY_MESSAGE)
def test_encode_decode_identity(message):
    decoded = decode_frame(message.encode())
    assert type(decoded) is type(message)
    assert decoded == message


@settings(max_examples=100, deadline=None)
@given(message=_ANY_MESSAGE)
def test_encoding_is_canonical_one_line(message):
    data = message.encode()
    assert data.endswith(b"\n")
    assert data.count(b"\n") == 1
    # Equal messages encode to byte-identical frames (the property the
    # coalescing end-to-end guarantees ride on).
    assert data == decode_frame(data).encode()


@settings(max_examples=100, deadline=None)
@given(message=_ANY_MESSAGE, extra=_JSON_SCALARS)
def test_unknown_fields_are_tolerated(message, extra):
    frame = message.to_frame()
    frame["field_from_the_future"] = extra
    decoded = decode_frame(json.dumps(frame))
    assert decoded == message


# --------------------------------------------------------------------------- #
# Typed decode errors
# --------------------------------------------------------------------------- #
@settings(max_examples=100, deadline=None)
@given(message=_ANY_MESSAGE, version=st.integers(-5, 50) | st.none())
def test_version_mismatch_is_a_typed_error(message, version):
    if version == PROTOCOL_VERSION:
        version = PROTOCOL_VERSION + 1
    frame = message.to_frame()
    frame["v"] = version
    with pytest.raises(ProtocolError) as caught:
        decode_frame(json.dumps(frame))
    assert caught.value.code == ERR_VERSION


def test_version_check_precedes_type_lookup():
    # A newer peer's unknown type with a newer version must diagnose the
    # version, not the type.
    frame = {"type": "message_from_the_future", "v": PROTOCOL_VERSION + 1}
    with pytest.raises(ProtocolError) as caught:
        decode_frame(json.dumps(frame))
    assert caught.value.code == ERR_VERSION


def test_unknown_type_is_a_typed_error():
    frame = {"type": "no_such_message", "v": PROTOCOL_VERSION}
    with pytest.raises(ProtocolError) as caught:
        decode_frame(json.dumps(frame))
    assert caught.value.code == ERR_UNKNOWN_TYPE


def test_missing_required_fields_are_invalid_payload():
    frame = {"type": "get_status", "v": PROTOCOL_VERSION}
    with pytest.raises(ProtocolError) as caught:
        decode_frame(json.dumps(frame))
    assert caught.value.code == ERR_INVALID


@pytest.mark.parametrize(
    "data",
    [b"", b"\n", b"not json", b"[1, 2]", b'"a string"', b"42", b"\xff\xfe\x00"],
)
def test_malformed_frames_are_typed_errors(data):
    with pytest.raises(ProtocolError) as caught:
        decode_frame(data)
    assert caught.value.code == ERR_MALFORMED


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=200))
def test_decoder_never_crashes_on_arbitrary_bytes(data):
    try:
        decoded = decode_frame(data)
    except ProtocolError:
        return  # the only exception the decoder may raise
    assert isinstance(decoded, Message)


@settings(max_examples=200, deadline=None)
@given(data=st.text(max_size=200))
def test_decoder_never_crashes_on_arbitrary_text(data):
    try:
        decoded = decode_frame(data)
    except ProtocolError:
        return
    assert isinstance(decoded, Message)


def test_protocol_error_maps_onto_error_reply():
    try:
        decode_frame(b"not json")
    except ProtocolError as error:
        reply = ErrorReply(code=error.code, message=str(error))
    assert reply.code == ERR_MALFORMED
    echoed = decode_frame(reply.encode())
    assert echoed == reply


def test_tuple_fields_round_trip_as_tuples():
    message = SubmitQuery(
        scenario={"platform_size": 8},
        utilization=2.0,
        samples=4,
        seed=1,
        protocols=("SPIN", "FED-FP"),
    )
    decoded = decode_frame(message.encode())
    assert decoded.protocols == ("SPIN", "FED-FP")
    assert isinstance(decoded.protocols, tuple)
