"""Concurrency and soak tests: interleaved clients, coalescing under real
concurrency, per-job result isolation, and disconnect containment."""

from __future__ import annotations

import threading

from repro.campaign.executor import build_protocols, execute_unit
from repro.campaign.planner import scenario_from_dict
from repro.campaign.planner import WorkUnit
from repro.service import ServiceClient, jobs
from repro.service.messages import JobAccepted, ResultReady


def _expected_payload(query):
    """Ground truth for one query: a standalone executor run."""
    unit = WorkUnit(
        scenario=scenario_from_dict(dict(query.scenario)),
        point_index=0,
        utilization=query.utilization,
        seed=query.seed,
        samples_per_point=query.samples,
    )
    protocols = build_protocols(list(query.protocols), query.max_path_signatures)
    result = execute_unit(unit, protocols)
    return {
        name: result.accepted[name] for name in query.protocols
    }, result.evaluated


def test_interleaved_queries_from_threads_stay_isolated(daemon, connect, tiny_query):
    """N distinct queries from N threads: every client gets its own result."""
    queries = [tiny_query(seed=seed) for seed in range(50, 58)]
    results = {}
    errors = []

    def worker(index, query):
        try:
            client = ServiceClient(*daemon.address, timeout=120.0)
            try:
                accepted, ready = client.query(query)
                results[index] = (accepted, ready)
            finally:
                client.close()
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append((index, error))

    threads = [
        threading.Thread(target=worker, args=(index, query))
        for index, query in enumerate(queries)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180.0)
    assert not errors, errors
    assert len(results) == len(queries)

    job_ids = set()
    for index, query in enumerate(queries):
        accepted, ready = results[index]
        job_ids.add(accepted.job_id)
        # Isolation: each reply carries its own query's parameters...
        assert ready.result["seed"] == query.seed
        assert ready.result["samples"] == query.samples
        # ...and exactly the result a standalone execution produces.
        expected_accepted, expected_evaluated = _expected_payload(query)
        assert ready.result["accepted"] == expected_accepted
        assert ready.result["evaluated"] == expected_evaluated
    assert len(job_ids) == len(queries), "distinct queries must not share jobs"


def test_concurrent_identical_queries_coalesce_to_one_execution(
    daemon, connect, monkeypatch, tiny_query
):
    """Two clients, one identical in-flight query: one execution, one
    coalesce hit, byte-identical results."""
    gate = threading.Event()
    executions = []
    real_wave = jobs.evaluate_query_wave

    def gated_wave(queries, telemetry=None):
        executions.append(len(queries))
        assert gate.wait(timeout=60.0), "test gate never released"
        return real_wave(queries, telemetry)

    monkeypatch.setattr(jobs, "evaluate_query_wave", gated_wave)

    query = tiny_query(seed=99)
    first = connect()
    second = connect()
    first.send(query)
    accepted_first = first.recv_until(JobAccepted)
    assert not accepted_first.coalesced and not accepted_first.cached

    # Wait until the wave is actually executing (holding the gate), so the
    # second submission definitely coalesces instead of racing admission.
    deadline = threading.Event()
    for _ in range(600):
        if executions:
            break
        deadline.wait(0.01)
    assert executions, "first query never started executing"

    second.send(query)
    accepted_second = second.recv_until(JobAccepted)
    assert accepted_second.coalesced
    assert accepted_second.job_id == accepted_first.job_id

    gate.set()
    ready_first = first.wait_result(accepted_first.job_id)
    ready_second = second.wait_result(accepted_second.job_id)

    # ONE execution served both clients...
    assert executions == [1]
    assert daemon.manager.counter("service.coalesce.hits") == 1
    # ...with byte-identical typed results.
    assert ready_first.encode() == ready_second.encode()


def test_repeat_query_is_served_from_the_result_cache(daemon, connect, tiny_query):
    client = connect()
    accepted_first, ready_first = client.query(tiny_query(seed=7))
    accepted_repeat, ready_repeat = client.query(tiny_query(seed=7))
    assert not accepted_first.cached
    assert accepted_repeat.cached
    assert ready_first.encode() == ready_repeat.encode()
    assert daemon.manager.counter("service.cache.hits") == 1


def test_queries_and_campaign_interleave_on_one_daemon(
    daemon, connect, tiny_query, tiny_campaign
):
    """A campaign and queries share the pool without cross-talk."""
    campaign_client = connect()
    accepted = campaign_client.submit(tiny_campaign(workers=1))
    assert isinstance(accepted, JobAccepted)

    query_client = connect()
    _, ready = query_client.query(tiny_query(seed=123))
    assert ready.result["seed"] == 123

    campaign_ready = campaign_client.wait_result(accepted.job_id)
    assert campaign_ready.exit_code == 0
    assert campaign_ready.result["completed"] == campaign_ready.result["total"]


def test_mid_job_disconnect_neither_kills_the_job_nor_leaks_a_worker(
    daemon, connect, monkeypatch, tiny_query
):
    gate = threading.Event()
    started = threading.Event()
    real_wave = jobs.evaluate_query_wave

    def gated_wave(queries, telemetry=None):
        started.set()
        assert gate.wait(timeout=60.0), "test gate never released"
        return real_wave(queries, telemetry)

    monkeypatch.setattr(jobs, "evaluate_query_wave", gated_wave)

    doomed = ServiceClient(*daemon.address, timeout=120.0)
    doomed.send(tiny_query(seed=77))
    accepted = doomed.recv_until(JobAccepted)
    assert started.wait(timeout=60.0)
    # The client vanishes mid-execution.
    doomed.close()
    gate.set()

    # The job still completes...
    assert daemon.manager.wait(accepted.job_id, timeout=60.0)
    status = daemon.manager.status(accepted.job_id)
    assert status.state == "done"
    # ...no worker leaked (the pool accepts and finishes new work)...
    survivor = connect()
    _, ready = survivor.query(tiny_query(seed=78))
    assert ready.result["seed"] == 78
    # ...and the disconnected client's result is served from the cache to
    # anyone who asks again.
    accepted_again, ready_again = survivor.query(tiny_query(seed=77))
    assert accepted_again.cached
    assert isinstance(ready_again, ResultReady)
    assert ready_again.job_id == accepted.job_id


def test_soak_many_interleaved_submissions(daemon, connect, tiny_query):
    """A small soak: repeated + distinct queries from several threads; the
    daemon answers everything and coalesce/cache counters add up."""
    errors = []

    def worker(seed):
        try:
            client = ServiceClient(*daemon.address, timeout=120.0)
            try:
                for repeat in range(3):
                    _, ready = client.query(tiny_query(seed=seed))
                    assert ready.result["seed"] == seed
            finally:
                client.close()
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in (5, 5, 6, 7)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    assert not errors, errors

    manager = daemon.manager
    stats = manager.stats()
    counters = stats["counters"]
    # 3 distinct keys; every one of the 12 submissions was answered by an
    # execution, a coalesce, or a cache hit.
    assert counters["service.queries"] == 3
    total = (
        counters["service.queries"]
        + counters.get("service.coalesce.hits", 0)
        + counters.get("service.cache.hits", 0)
    )
    assert total == 12
    assert manager.running_jobs() == 0
