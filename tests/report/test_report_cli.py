"""CLI tests for ``python -m repro.campaign report``."""

from __future__ import annotations

import os

from repro.campaign import cli
from repro.report.aggregate import CACHE_NAME


def run_cli(*argv):
    return cli.main(list(argv))


def test_report_renders_bundle_with_zero_reruns(finished_store, tmp_path, capsys):
    out = str(tmp_path / "out")
    assert run_cli("report", "--store", finished_store, "--out", out, "--no-cache") == 0
    stdout = capsys.readouterr().out
    assert "2 scenario series + REPORT.md + report.html" in stdout
    assert sorted(os.listdir(out)) == ["REPORT.md", "report.html", "series"]
    assert len(os.listdir(os.path.join(out, "series"))) == 2
    with open(os.path.join(out, "REPORT.md")) as handle:
        assert "# Campaign report" in handle.read()
    # --no-cache left the store untouched.
    assert not os.path.exists(os.path.join(finished_store, CACHE_NAME))


def test_report_defaults_to_store_subdirectory(tmp_path, run_campaign, capsys):
    store = str(tmp_path / "store")
    assert run_campaign(store) == 0
    assert run_cli("report", "--store", store) == 0
    capsys.readouterr()
    assert os.path.isfile(os.path.join(store, "report", "report.html"))


def test_second_report_hits_the_aggregation_cache(tmp_path, run_campaign, capsys):
    store = str(tmp_path / "store")
    out = str(tmp_path / "out")
    assert run_campaign(store) == 0
    assert run_cli("report", "--store", store, "--out", out) == 0
    first = capsys.readouterr().out
    assert "aggregation cache: miss [cold] (4 units folded" in first
    assert run_cli("report", "--store", store, "--out", out) == 0
    second = capsys.readouterr().out
    assert "aggregation cache: hit (4 units cached, 0 folded" in second


def test_report_on_partial_store_is_watch_friendly(tmp_path, run_campaign, capsys):
    store = str(tmp_path / "store")
    out = str(tmp_path / "out")
    assert run_campaign(store, "--max-units", "3") == 3

    # Incomplete campaign: partial report, exit code 3 (poll again later).
    assert run_cli("report", "--store", store, "--out", out) == 3
    stdout = capsys.readouterr().out
    assert "campaign incomplete" in stdout
    assert "1 scenario series" in stdout

    # --strict refuses instead.
    assert run_cli("report", "--store", store, "--out", out, "--strict") == 2
    assert "campaign incomplete" in capsys.readouterr().err

    # After resuming, the same invocation converges to 0.
    assert run_cli("resume", "--store", store, "--quiet") == 0
    assert run_cli("report", "--store", store, "--out", out) == 0


def test_report_protocol_restriction_and_validation(finished_store, tmp_path, capsys):
    out = str(tmp_path / "out")
    assert (
        run_cli(
            "report", "--store", finished_store, "--out", out,
            "--no-cache", "--protocols", "FED-FP",
        )
        == 0
    )
    capsys.readouterr()
    series = os.listdir(os.path.join(out, "series"))[0]
    with open(os.path.join(out, "series", series)) as handle:
        header = handle.readline().strip()
    assert header == "utilization,normalized_utilization,FED-FP,generation_failures"

    # A protocol the campaign never ran is refused with a clear error.
    assert (
        run_cli(
            "report", "--store", finished_store, "--out", out,
            "--no-cache", "--protocols", "LPP",
        )
        == 2
    )
    assert "LPP were not part of this campaign" in capsys.readouterr().err


def test_report_rejects_foreign_protocols_even_on_an_empty_store(
    tmp_path, run_campaign, capsys
):
    # The refusal must not depend on how far the campaign got — a watch
    # loop polling on exit codes needs the signal to be stable.
    store = str(tmp_path / "store")
    assert run_campaign(store, "--max-units", "0") == 3
    assert run_cli("report", "--store", store, "--protocols", "LPP") == 2
    assert "LPP were not part of this campaign" in capsys.readouterr().err


def test_report_rejects_an_empty_protocol_list(finished_store, tmp_path):
    import pytest

    with pytest.raises(SystemExit):  # argparse refuses --protocols ""
        run_cli("report", "--store", finished_store, "--protocols", "")


def test_report_of_missing_store_fails_cleanly(tmp_path, capsys):
    assert run_cli("report", "--store", str(tmp_path / "nope")) == 2
    assert "holds no campaign" in capsys.readouterr().err
