"""Shared fixtures for the reporting tests: one tiny fixed-seed campaign."""

from __future__ import annotations

import pytest

from repro.campaign import cli

#: Flags of the deterministic reporting fixture campaign: the two m=16
#: Fig. 2 scenarios on tiny DAGs, SPIN + FED-FP only — cheap, but with at
#: least one generation failure so NaN handling is exercised end to end.
CAMPAIGN_FLAGS = [
    "--grid", "fig2",
    "--filter", "m=16",
    "--samples", "2",
    "--step", "0.5",
    "--vertices", "5,8",
    "--protocols", "SPIN,FED-FP",
    "--seed", "2020",
    "--quiet",
]

#: 2 scenarios x 2 utilization points.
CAMPAIGN_UNITS = 4

#: Flags of the deterministic *simulate-mode* fixture campaign: all four
#: Fig. 2 scenarios (x 4 utilization points) on tiny DAGs, the full
#: simulatable suite (no ``--protocols`` — the default covers DPCP-p
#: EP/EN, SPIN and LPP), and an event budget small enough that one run
#: truncates (exercising that path deterministically — wall-clock budgets
#: would not be reproducible).
SIM_CAMPAIGN_FLAGS = [
    "--mode", "simulate",
    "--grid", "fig2",
    "--samples", "2",
    "--step", "0.25",
    "--vertices", "5,8",
    "--seed", "2020",
    "--sim-max-events", "150000",
    "--quiet",
]


def _run_campaign(store: str, *extra: str) -> int:
    return cli.main(["run", "--store", store, *CAMPAIGN_FLAGS, *extra])


@pytest.fixture
def run_campaign():
    """Run the fixture campaign into a store (extra flags appended)."""
    return _run_campaign


@pytest.fixture(scope="session")
def finished_store(tmp_path_factory) -> str:
    """A completed fixture campaign store (session-scoped, read-only).

    Tests that mutate the store (cache files, resumes) must copy it or run
    their own campaign instead.
    """
    store = str(tmp_path_factory.mktemp("report-fixture") / "store")
    assert _run_campaign(store) == 0
    return store


@pytest.fixture(scope="session")
def simulate_store(tmp_path_factory) -> str:
    """A completed simulate-mode fixture campaign (session-scoped, read-only).

    Four scenarios, fixed seed, event-budget truncation only — the store
    (and everything rendered from it) is byte-deterministic.
    """
    store = str(tmp_path_factory.mktemp("simulate-fixture") / "store")
    assert cli.main(["run", "--store", store, *SIM_CAMPAIGN_FLAGS]) == 0
    return store
