"""Renderer tests: SVG/HTML/Markdown output, golden files, CSV identity."""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import load_sweep_results, series_to_csv
from repro.experiments.metrics import SweepCurve
from repro.experiments.runner import SweepResult
from repro.experiments.scenarios import figure2_scenarios
from repro.report.aggregate import aggregate_store
from repro.report.bundle import write_report_bundle
from repro.report.html import render_html_report
from repro.report.markdown import render_markdown_report
from repro.report.series import series_csv, series_rows
from repro.report.svg import curve_segments, render_svg_chart

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def synthetic_sweep(points) -> SweepResult:
    """A hand-built two-protocol sweep; ``points`` is a list of
    ``(accepted_a, accepted_b, sampled, failures)`` tuples."""
    scenario = figure2_scenarios(num_vertices_range=(5, 8))["a"]
    result = SweepResult(scenario=scenario)
    result.curves["SPIN"] = SweepCurve(protocol="SPIN")
    result.curves["LPP"] = SweepCurve(protocol="LPP")
    for index, (a, b, sampled, failures) in enumerate(points):
        utilization = float(index + 1)
        result.curves["SPIN"].add_point(utilization, a, sampled, failures)
        result.curves["LPP"].add_point(utilization, b, sampled, failures)
    return result


# --------------------------------------------------------------------------- #
# SVG
# --------------------------------------------------------------------------- #
def test_curve_segments_split_on_nan():
    nan = float("nan")
    segments = curve_segments([0.1, 0.2, 0.3, 0.4], [1.0, nan, 0.5, 0.25])
    assert segments == [[(0.1, 1.0)], [(0.3, 0.5), (0.4, 0.25)]]
    assert curve_segments([0.1], [nan]) == []


def test_svg_chart_draws_one_polyline_per_protocol():
    sweep = synthetic_sweep([(2, 1, 2, 0), (1, 1, 2, 0), (0, 0, 2, 0)])
    svg = render_svg_chart(sweep)
    assert svg.startswith("<svg")
    assert svg.count("<polyline") == 2
    assert "SPIN" in svg and "LPP" in svg
    assert "<title>" in svg


def test_svg_chart_leaves_gaps_for_unrealised_points():
    # Middle point lost every draw: each curve splits into two segments.
    sweep = synthetic_sweep([(2, 1, 2, 0), (0, 0, 0, 2), (1, 0, 2, 0)])
    svg = render_svg_chart(sweep)
    # Single-point segments degrade to dots; two protocols x 2 segments,
    # where every segment here is a single surviving point.
    assert svg.count("<polyline") == 0
    assert svg.count("<circle") == 4

    sweep = synthetic_sweep(
        [(2, 1, 2, 0), (1, 1, 2, 0), (0, 0, 0, 2), (1, 0, 2, 0), (0, 0, 2, 0)]
    )
    svg = render_svg_chart(sweep)
    assert svg.count("<polyline") == 4  # two segments per protocol


def test_svg_chart_escapes_title():
    sweep = synthetic_sweep([(1, 1, 2, 0)])
    svg = render_svg_chart(sweep, title="a<b&c")
    assert "a&lt;b&amp;c" in svg
    assert "a<b" not in svg


# --------------------------------------------------------------------------- #
# HTML / Markdown over a real store
# --------------------------------------------------------------------------- #
def test_html_report_contains_grid_and_tables(finished_store):
    aggregate = aggregate_store(finished_store, use_cache=False)
    html = render_html_report(aggregate)
    assert html.startswith("<!DOCTYPE html>")
    assert html.count("<svg") == 2  # one chart per complete scenario
    for report in aggregate.scenarios:
        assert report.scenario.scenario_id in html
    assert "Dominance" in html and "Outperformance" in html
    assert "Weighted acceptance" in html
    assert "<script" not in html  # self-contained and static


def test_html_report_lists_incomplete_scenarios(tmp_path, run_campaign):
    store = str(tmp_path / "store")
    assert run_campaign(store, "--max-units", "3") == 3
    aggregate = aggregate_store(store, use_cache=False)
    html = render_html_report(aggregate)
    assert "Campaign incomplete" in html
    assert "Incomplete scenarios (1)" in html
    assert html.count("<svg") == 1


def test_markdown_report_restricts_protocols(finished_store):
    aggregate = aggregate_store(finished_store, use_cache=False)
    text = render_markdown_report(aggregate, protocols=["FED-FP"])
    assert "| FED-FP |" in text
    # The per-scenario series tables only carry the selected protocol.
    assert "SPIN" not in text.split("## Acceptance-ratio series")[1]


# --------------------------------------------------------------------------- #
# Golden files (fixed-seed campaign -> byte-stable deliverables)
# --------------------------------------------------------------------------- #
def test_markdown_report_matches_golden(finished_store):
    aggregate = aggregate_store(finished_store, use_cache=False)
    with open(os.path.join(GOLDEN_DIR, "REPORT.md")) as handle:
        assert render_markdown_report(aggregate) == handle.read()


def test_series_csv_matches_golden(finished_store):
    aggregate = aggregate_store(finished_store, use_cache=False)
    report = aggregate.complete_reports()[0]
    golden = os.path.join(GOLDEN_DIR, f"{report.scenario.scenario_id}.csv")
    with open(golden, newline="") as handle:
        assert series_csv(report.sweep) == handle.read()


# --------------------------------------------------------------------------- #
# One aggregation path: single-sweep CSV == grid-report CSV, byte for byte
# --------------------------------------------------------------------------- #
def test_bundle_csv_is_byte_identical_to_single_sweep_csv(finished_store, tmp_path):
    aggregate = aggregate_store(finished_store, use_cache=False)
    bundle = write_report_bundle(aggregate, str(tmp_path / "out"))
    assert os.path.isfile(bundle.report_md)
    assert os.path.isfile(bundle.report_html)
    assert len(bundle.series_csvs) == 2

    sweeps = {
        sweep.scenario.scenario_id: sweep
        for sweep in load_sweep_results(finished_store)
    }
    for path in bundle.series_csvs:
        scenario_id = os.path.splitext(os.path.basename(path))[0]
        with open(path, newline="") as handle:
            from_bundle = handle.read()
        # The classic single-sweep helper must produce the same bytes.
        assert from_bundle == series_to_csv(sweeps[scenario_id])


def test_failed_render_never_clobbers_an_existing_bundle(finished_store, tmp_path):
    aggregate = aggregate_store(finished_store, use_cache=False)
    out = str(tmp_path / "out")
    bundle = write_report_bundle(aggregate, out)
    before = {path: open(path).read() for path in bundle.paths}

    # LPP was never run in this campaign: the render fails up front ...
    with pytest.raises(ValueError, match="LPP"):
        write_report_bundle(aggregate, out, protocols=["LPP"])
    # ... and the previous bundle is untouched (no truncation, no tearing).
    for path, content in before.items():
        assert open(path).read() == content


# --------------------------------------------------------------------------- #
# Series rows (shared assembly) — NaN conventions
# --------------------------------------------------------------------------- #
def test_series_rows_carry_nan_and_failures():
    import math

    sweep = synthetic_sweep([(2, 1, 2, 0), (0, 0, 0, 3)])
    rows = series_rows(sweep)
    assert [row["generation_failures"] for row in rows] == [0, 3]
    assert math.isnan(rows[1]["SPIN"]) and math.isnan(rows[1]["LPP"])
    assert rows[0]["SPIN"] == pytest.approx(1.0)
    csv_text = series_csv(sweep)
    assert csv_text.splitlines()[2].endswith(",,,3")  # NaN -> empty cells
