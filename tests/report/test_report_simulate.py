"""Simulate-mode reporting: tightness rollups, renderers, golden file.

The ``simulate_store`` fixture runs the fixed-seed four-scenario validation
campaign from ``conftest.SIM_CAMPAIGN_FLAGS`` through the real CLI; these
tests pin the acceptance criteria of the validation subsystem — zero
soundness violations, a byte-deterministic bound-tightness report, and
cache-transparent aggregation of the simulation evidence.
"""

from __future__ import annotations

import os

from repro.campaign import cli
from repro.report.aggregate import aggregate_store
from repro.report.html import render_html_report
from repro.report.markdown import render_markdown_report
from repro.report.svg import render_tightness_panel

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Unit count of the ``simulate_store`` fixture (see conftest
#: ``SIM_CAMPAIGN_FLAGS``: 4 scenarios x 4 utilization points).  Kept as a
#: literal to avoid the ambiguous cross-conftest import.
SIM_CAMPAIGN_UNITS = 16


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #
def test_simulate_store_aggregates_validation_evidence(simulate_store):
    aggregate = aggregate_store(simulate_store, use_cache=False)
    assert aggregate.mode == "simulate"
    assert aggregate.complete
    assert aggregate.completed_units == SIM_CAMPAIGN_UNITS
    totals = aggregate.validation_totals()
    assert set(totals) == {"DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP"}
    simulated = sum(rollup.simulated for rollup in totals.values())
    assert simulated > 0, "the fixture must actually simulate accepted task sets"
    # Per-scenario rollups merge exactly into the campaign totals.
    per_scenario = sum(
        rollup.simulated
        for report in aggregate.scenarios
        for rollup in (report.validation or {}).values()
    )
    assert per_scenario == simulated


def test_simulate_campaign_is_sound_zero_violations(simulate_store):
    """Acceptance criterion: no ME violations, no deadline misses, no
    observed-over-bound overflows among analysis-accepted task sets."""
    aggregate = aggregate_store(simulate_store, use_cache=False)
    totals = aggregate.validation_totals()
    assert set(totals) == {"DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP"}
    for protocol, rollup in totals.items():
        assert rollup.simulated > 0, protocol
        assert rollup.mutual_exclusion_violations == 0, protocol
        assert rollup.processor_overlaps == 0, protocol
        assert rollup.spin_exclusivity_violations == 0, protocol
        assert rollup.deadline_misses == 0, protocol
        assert rollup.rule_failures == 0, protocol
        assert rollup.ratio.overflows == 0, protocol
        if rollup.ratio.maximum is not None:
            assert rollup.ratio.maximum <= 1.0


def test_event_budget_truncation_is_recorded_not_fatal(simulate_store):
    # The fixture's event budget deliberately truncates at least one run;
    # the campaign still completes and the truncation is accounted for.
    aggregate = aggregate_store(simulate_store, use_cache=False)
    truncated = sum(
        rollup.truncated for rollup in aggregate.validation_totals().values()
    )
    assert truncated >= 1


def test_analyze_store_has_no_validation_evidence(finished_store):
    aggregate = aggregate_store(finished_store, use_cache=False)
    assert aggregate.mode == "analyze"
    assert aggregate.validation_totals() == {}
    assert all(report.validation is None for report in aggregate.scenarios)


# --------------------------------------------------------------------------- #
# Renderers
# --------------------------------------------------------------------------- #
def test_simulate_markdown_report_matches_golden(simulate_store):
    aggregate = aggregate_store(simulate_store, use_cache=False)
    with open(os.path.join(GOLDEN_DIR, "REPORT_simulate.md")) as handle:
        assert render_markdown_report(aggregate) == handle.read()


def test_simulate_markdown_report_carries_the_tightness_table(simulate_store):
    aggregate = aggregate_store(simulate_store, use_cache=False)
    text = render_markdown_report(aggregate)
    assert "## Bound tightness (observed / analytical WCRT)" in text
    assert "| **all** | DPCP-p-EP |" in text
    assert "| **all** | SPIN |" in text
    assert "| **all** | LPP |" in text
    assert "Soundness: **no violations**" in text


def test_analyze_markdown_report_has_no_tightness_table(finished_store):
    aggregate = aggregate_store(finished_store, use_cache=False)
    assert "Bound tightness" not in render_markdown_report(aggregate)


def test_simulate_html_report_embeds_the_tightness_panel(simulate_store):
    aggregate = aggregate_store(simulate_store, use_cache=False)
    html = render_html_report(aggregate)
    assert "Bound tightness (observed / analytical WCRT)" in html
    assert 'class="tightness-panel"' in html
    assert "<td>Mode</td>" not in html  # mode is a <th> label row
    assert "simulate" in html


def test_tightness_panel_handles_empty_distributions():
    from repro.experiments.metrics import TightnessStats

    empty = render_tightness_panel({"DPCP-p-EP": TightnessStats()})
    assert "no simulated task sets yet" in empty
    stats = TightnessStats()
    for ratio in (0.05, 0.5, 0.55, 0.999):
        stats.add(ratio)
    panel = render_tightness_panel({"DPCP-p-EP": stats})
    assert panel.count("<rect") >= 4  # frame + background + bars
    assert "max 0.999" in panel


# --------------------------------------------------------------------------- #
# Cache transparency and the CLI summary line
# --------------------------------------------------------------------------- #
def test_simulation_evidence_survives_the_aggregation_cache(
    simulate_store, tmp_path, capsys
):
    # First report folds cold and writes the cache into a copied store;
    # the second must hit the cache and render byte-identical Markdown.
    import shutil

    store = str(tmp_path / "store")
    shutil.copytree(simulate_store, store)
    out = str(tmp_path / "out")
    assert cli.main(["report", "--store", store, "--out", out]) == 0
    first = capsys.readouterr().out
    assert "aggregation cache: miss [cold]" in first
    assert "validation:" in first and "0 soundness violation(s)" in first
    with open(os.path.join(out, "REPORT.md")) as handle:
        cold = handle.read()

    assert cli.main(["report", "--store", store, "--out", out]) == 0
    second = capsys.readouterr().out
    assert "aggregation cache: hit" in second
    with open(os.path.join(out, "REPORT.md")) as handle:
        assert handle.read() == cold
    with open(os.path.join(GOLDEN_DIR, "REPORT_simulate.md")) as handle:
        assert cold == handle.read()
