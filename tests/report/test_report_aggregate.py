"""Aggregator tests: folding, rollups, and the on-disk aggregation cache."""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.campaign import cli
from repro.campaign.store import CampaignStore
from repro.experiments.figures import load_sweep_results
from repro.experiments.metrics import weighted_acceptance
from repro.experiments.runner import pairwise_statistics
from repro.report.aggregate import CACHE_NAME, StoreAggregator, aggregate_store

#: Unit count of the conftest fixture campaign (2 scenarios x 2 points).
CAMPAIGN_UNITS = 4


def copy_store(finished_store, tmp_path) -> str:
    """Private mutable copy of the session fixture store."""
    target = str(tmp_path / "store")
    shutil.copytree(finished_store, target)
    # A pristine copy must not inherit another test's aggregation cache.
    cache = os.path.join(target, CACHE_NAME)
    if os.path.exists(cache):
        os.remove(cache)
    return target


# --------------------------------------------------------------------------- #
# Folding and rollups
# --------------------------------------------------------------------------- #
def test_aggregate_matches_store_records(finished_store):
    aggregate = aggregate_store(finished_store, use_cache=False)
    assert aggregate.complete
    assert aggregate.total_units == CAMPAIGN_UNITS
    assert aggregate.completed_units == CAMPAIGN_UNITS
    assert aggregate.protocols == ["SPIN", "FED-FP"]

    records = CampaignStore(finished_store).load_records()
    assert aggregate.generation_failures == sum(
        r["generation_failures"] for r in records.values()
    )
    assert aggregate.evaluated_samples == sum(r["evaluated"] for r in records.values())

    # Curves equal the (independently assembled) sweep-result loader's.
    loaded = load_sweep_results(finished_store)
    assert len(loaded) == len(aggregate.complete_results()) == 2
    for expected, report in zip(loaded, aggregate.scenarios):
        assert report.complete
        for name in aggregate.protocols:
            assert report.sweep.curves[name].accepted == expected.curves[name].accepted
            assert report.sweep.curves[name].sampled == expected.curves[name].sampled
            assert (
                report.sweep.curves[name].utilizations
                == expected.curves[name].utilizations
            )


def test_rollups_match_metrics_layer(finished_store):
    aggregate = aggregate_store(finished_store, use_cache=False)
    results = aggregate.complete_results()

    curves = [r.curves[p] for r in results for p in aggregate.protocols]
    assert aggregate.weighted_acceptance() == weighted_acceptance(curves)

    stats = aggregate.pairwise()
    expected = pairwise_statistics(results, protocols=aggregate.protocols)
    assert stats.scenario_count == expected.scenario_count == 2
    assert stats.dominance == expected.dominance
    assert stats.outperformance == expected.outperformance


def test_partial_store_reports_incomplete_scenarios(tmp_path, run_campaign):
    store = str(tmp_path / "store")
    assert run_campaign(store, "--max-units", "3") == 3
    aggregate = aggregate_store(store, use_cache=False)
    assert not aggregate.complete
    assert aggregate.completed_units == 3
    complete = aggregate.complete_reports()
    incomplete = aggregate.incomplete_reports()
    assert len(complete) == 1 and len(incomplete) == 1
    assert incomplete[0].points_done == 1
    assert incomplete[0].points_total == 2
    # The pairwise rollup only covers the complete scenario.
    assert aggregate.pairwise().scenario_count == 1


def test_empty_store_aggregates_to_zero_units(tmp_path, run_campaign):
    store = str(tmp_path / "store")
    assert run_campaign(store, "--max-units", "0") == 3
    aggregate = aggregate_store(store, use_cache=False)
    assert aggregate.completed_units == 0
    assert aggregate.complete_results() == []
    assert aggregate.weighted_acceptance() == {}
    assert aggregate.pairwise() is None


# --------------------------------------------------------------------------- #
# The aggregation cache
# --------------------------------------------------------------------------- #
def test_cache_cold_then_hit_without_refolding(finished_store, tmp_path):
    store = copy_store(finished_store, tmp_path)

    first = aggregate_store(store, use_cache=True)
    assert not first.cache_stats.hit
    assert first.cache_stats.miss_reason == "cold"
    assert first.cache_stats.units_folded == CAMPAIGN_UNITS
    assert os.path.isfile(os.path.join(store, CACHE_NAME))

    second = aggregate_store(store, use_cache=True)
    assert second.cache_stats.hit
    assert second.cache_stats.units_folded == 0
    assert second.cache_stats.units_from_cache == CAMPAIGN_UNITS

    # Cached and cold aggregations are equivalent.
    for cold, warm in zip(first.scenarios, second.scenarios):
        for name in first.protocols:
            assert warm.sweep.curves[name].accepted == cold.sweep.curves[name].accepted
            assert warm.sweep.curves[name].sampled == cold.sweep.curves[name].sampled


def test_cache_folds_only_the_appended_tail_on_resume(tmp_path, run_campaign):
    store = str(tmp_path / "store")
    assert run_campaign(store, "--max-units", "3") == 3
    partial = aggregate_store(store, use_cache=True)
    assert partial.cache_stats.units_folded == 3

    assert cli.main(["resume", "--store", store, "--quiet"]) == 0
    resumed = aggregate_store(store, use_cache=True)
    assert resumed.cache_stats.hit
    assert resumed.cache_stats.units_from_cache == 3
    assert resumed.cache_stats.units_folded == 1  # O(changed work units)
    assert resumed.complete

    # And the incrementally folded aggregate equals a full rebuild.
    rebuilt = aggregate_store(store, use_cache=False)
    for incremental, cold in zip(resumed.scenarios, rebuilt.scenarios):
        for name in resumed.protocols:
            assert (
                incremental.sweep.curves[name].accepted
                == cold.sweep.curves[name].accepted
            )
            assert (
                incremental.sweep.curves[name].generation_failures
                == cold.sweep.curves[name].generation_failures
            )


def test_cache_disabled_never_touches_disk(finished_store, tmp_path):
    store = copy_store(finished_store, tmp_path)
    aggregate = aggregate_store(store, use_cache=False)
    assert aggregate.cache_stats.miss_reason == "disabled"
    assert not os.path.exists(os.path.join(store, CACHE_NAME))


@pytest.mark.parametrize(
    "mutate, reason_fragment",
    [
        (lambda c: {**c, "config_hash": "0" * 64}, "configuration changed"),
        (lambda c: {**c, "cache_format_version": -1}, "cache format version"),
        (lambda c: {**c, "store_format_version": -1}, "store format version"),
        (lambda c: {**c, "results_offset": "oops"}, "malformed cache offset"),
        (lambda c: {**c, "points": None}, "malformed cache points"),
        # Structurally valid JSON whose slots lost required fields (disk
        # corruption, hand edits) must invalidate too, not crash assembly.
        (lambda c: {**c, "points": {"s1": {"0": {}}}}, "malformed cache points"),
        (
            lambda c: {**c, "points": {"s1": {"0": {"utilization": "x"}}}},
            "malformed cache points",
        ),
    ],
)
def test_cache_invalidation_rules(finished_store, tmp_path, mutate, reason_fragment):
    store = copy_store(finished_store, tmp_path)
    aggregate_store(store, use_cache=True)  # warm the cache
    cache_path = os.path.join(store, CACHE_NAME)
    with open(cache_path) as handle:
        cache = json.load(handle)
    with open(cache_path, "w") as handle:
        json.dump(mutate(cache), handle)

    rebuilt = aggregate_store(store, use_cache=True)
    assert not rebuilt.cache_stats.hit
    assert reason_fragment in rebuilt.cache_stats.miss_reason
    assert rebuilt.cache_stats.units_folded == CAMPAIGN_UNITS
    # The rebuild repaired the cache on disk.
    assert aggregate_store(store, use_cache=True).cache_stats.hit


def test_cache_rejects_shrunken_results_file(finished_store, tmp_path):
    store = copy_store(finished_store, tmp_path)
    aggregate_store(store, use_cache=True)
    results = os.path.join(store, "results.jsonl")
    with open(results, "rb") as handle:
        lines = handle.readlines()
    with open(results, "wb") as handle:
        handle.writelines(lines[:2])

    rebuilt = aggregate_store(store, use_cache=True)
    assert not rebuilt.cache_stats.hit
    assert "shrank" in rebuilt.cache_stats.miss_reason
    assert rebuilt.cache_stats.units_folded == 2


def test_unreadable_cache_file_is_rebuilt(finished_store, tmp_path):
    store = copy_store(finished_store, tmp_path)
    aggregate_store(store, use_cache=True)
    with open(os.path.join(store, CACHE_NAME), "w") as handle:
        handle.write("{not json")
    rebuilt = aggregate_store(store, use_cache=True)
    assert not rebuilt.cache_stats.hit
    assert rebuilt.cache_stats.units_folded == CAMPAIGN_UNITS


def test_unwritable_cache_degrades_to_uncached_aggregation(
    finished_store, tmp_path, monkeypatch
):
    store = copy_store(finished_store, tmp_path)

    def refuse(self, *args, **kwargs):
        raise PermissionError("read-only store")

    monkeypatch.setattr(StoreAggregator, "_write_cache", refuse)
    aggregate = aggregate_store(store, use_cache=True)  # must not raise
    assert aggregate.complete
    assert aggregate.cache_stats.units_folded == CAMPAIGN_UNITS
    assert not os.path.exists(os.path.join(store, CACHE_NAME))


def test_cache_path_lives_inside_the_store(finished_store):
    aggregator = StoreAggregator(finished_store)
    assert aggregator.cache_path == os.path.join(finished_store, CACHE_NAME)


# --------------------------------------------------------------------------- #
# Store streaming
# --------------------------------------------------------------------------- #
def test_iter_records_offsets_resume_exactly(finished_store):
    store = CampaignStore(finished_store)
    full = list(store.iter_records())
    assert len(full) == CAMPAIGN_UNITS
    assert full[-1][1] == store.results_size()
    # Restarting from any yielded offset returns exactly the remainder.
    for index, (_, offset) in enumerate(full):
        tail = list(store.iter_records(start_offset=offset))
        assert [r["unit_id"] for r, _ in tail] == [
            r["unit_id"] for r, _ in full[index + 1 :]
        ]


def test_iter_records_does_not_advance_past_a_torn_line(finished_store, tmp_path):
    store_dir = copy_store(finished_store, tmp_path)
    store = CampaignStore(store_dir)
    complete_size = store.results_size()
    with open(store.results_path, "a") as handle:
        handle.write('{"unit_id": "torn')  # no newline: a killed writer

    records = list(store.iter_records())
    assert len(records) == CAMPAIGN_UNITS
    assert records[-1][1] == complete_size  # offset stops before the torn line
    assert len(store.load_records()) == CAMPAIGN_UNITS
