"""Tests for the fixed-point helpers and the path enumerator."""

from __future__ import annotations

import gc
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.paths import (
    ALGORITHM_DP,
    ALGORITHM_WALK,
    PathEnumerator,
    critical_path_only,
)
from repro.analysis.rta import (
    CONVERGED,
    DIVERGED,
    NO_CONVERGENCE,
    FixedPointNoConvergence,
    ceil_div_jobs,
    least_fixed_point,
    least_fixed_point_status,
)
from repro.model.dag import DAG
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, Vertex


# --------------------------------------------------------------------------- #
# least_fixed_point
# --------------------------------------------------------------------------- #
def test_fixed_point_constant_recurrence():
    assert least_fixed_point(lambda x: 5.0, 5.0, 100.0) == pytest.approx(5.0)


def test_fixed_point_affine_recurrence():
    # x = 2 + 0.5 x  ->  x = 4
    solution = least_fixed_point(lambda x: 2.0 + 0.5 * x, 2.0, 100.0)
    assert solution == pytest.approx(4.0, abs=1e-4)


def test_fixed_point_step_recurrence():
    # Classic RTA shape: x = 1 + ceil(x / 4) * 2 -> least fixed point is 3.
    solution = least_fixed_point(lambda x: 1.0 + math.ceil(x / 4.0) * 2.0, 1.0, 100.0)
    assert solution == pytest.approx(3.0)


def test_fixed_point_divergence_returns_none():
    assert least_fixed_point(lambda x: x + 1.0, 0.0, 50.0) is None


def test_fixed_point_start_beyond_bound_returns_none():
    assert least_fixed_point(lambda x: x, 10.0, 5.0) is None


def test_fixed_point_rejects_nan_and_inf():
    assert least_fixed_point(lambda x: float("nan"), 1.0, 10.0) is None
    assert least_fixed_point(lambda x: x, float("inf"), 10.0) is None


def test_fixed_point_status_distinguishes_outcomes():
    value, status = least_fixed_point_status(lambda x: 5.0, 5.0, 100.0)
    assert status == CONVERGED and value == pytest.approx(5.0)
    # Diverged: the iterate crosses the bound.
    value, status = least_fixed_point_status(lambda x: x + 1.0, 0.0, 50.0)
    assert (value, status) == (None, DIVERGED)
    # Diverged: the start already exceeds the bound, or the recurrence is NaN.
    assert least_fixed_point_status(lambda x: x, 10.0, 5.0)[1] == DIVERGED
    assert least_fixed_point_status(lambda x: float("nan"), 1.0, 10.0)[1] == DIVERGED
    # No convergence: creeps upward by more than the tolerance per step but
    # cannot reach the bound within the iteration cap.
    value, status = least_fixed_point_status(lambda x: x + 3e-6, 0.0, 1.0)
    assert (value, status) == (None, NO_CONVERGENCE)


def test_fixed_point_warns_on_no_convergence():
    with pytest.warns(FixedPointNoConvergence):
        assert least_fixed_point(lambda x: x + 3e-6, 0.0, 1.0) is None


@given(
    constant=st.floats(min_value=0.1, max_value=10.0),
    slope=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=50, deadline=None)
def test_property_affine_fixed_point(constant, slope):
    expected = constant / (1.0 - slope)
    bound = expected * 2 + 10
    solution = least_fixed_point(lambda x: constant + slope * x, constant, bound)
    assert solution is not None
    assert solution == pytest.approx(expected, rel=1e-3, abs=1e-3)


# --------------------------------------------------------------------------- #
# ceil_div_jobs (eta)
# --------------------------------------------------------------------------- #
def test_ceil_div_jobs_basic():
    # eta(L) = ceil((L + R) / T)
    assert ceil_div_jobs(10.0, 10.0, 10.0) == 2
    assert ceil_div_jobs(0.0, 10.0, 10.0) == 1
    assert ceil_div_jobs(25.0, 10.0, 5.0) == 3
    assert ceil_div_jobs(-5.0, 10.0, 5.0) == 1


def test_ceil_div_jobs_requires_positive_period():
    with pytest.raises(ValueError):
        ceil_div_jobs(1.0, 0.0, 1.0)


@given(
    interval=st.floats(min_value=0, max_value=1e6),
    period=st.floats(min_value=1.0, max_value=1e6),
    response=st.floats(min_value=0, max_value=1e6),
)
@settings(max_examples=50, deadline=None)
def test_property_eta_monotone(interval, period, response):
    eta = ceil_div_jobs(interval, period, response)
    assert eta >= 0
    assert ceil_div_jobs(interval + period, period, response) >= eta
    assert ceil_div_jobs(interval, period, response + period) >= eta


# --------------------------------------------------------------------------- #
# Path enumeration
# --------------------------------------------------------------------------- #
def build_task_with_paths():
    """A diamond task where the two branches differ in resource usage."""
    dag = DAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    vertices = [
        Vertex(0, 2.0),
        Vertex(1, 5.0, requests={9: 1}),
        Vertex(2, 5.0),
        Vertex(3, 1.0),
    ]
    usages = [ResourceUsage(9, 1, 1.0)]
    return DAGTask(0, vertices, dag, period=100.0, resource_usages=usages)


def test_enumerator_distinguishes_paths_by_requests():
    task = build_task_with_paths()
    result = PathEnumerator().enumerate(task)
    assert result.exhaustive
    # Both paths have length 8 but different request vectors -> 2 signatures.
    assert len(result.profiles) == 2
    requests = sorted(p.request_count(9) for p in result.profiles)
    assert requests == [0, 1]


def test_enumerator_deduplicates_equivalent_paths():
    dag = DAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    vertices = [Vertex(0, 1.0), Vertex(1, 2.0), Vertex(2, 2.0), Vertex(3, 1.0)]
    task = DAGTask(0, vertices, dag, period=50.0)
    result = PathEnumerator().enumerate(task)
    assert result.exhaustive
    assert result.total_paths_seen == 2
    assert len(result.profiles) == 1  # identical signatures collapse


def test_enumerator_caches_results():
    task = build_task_with_paths()
    enumerator = PathEnumerator()
    first = enumerator.enumerate(task)
    second = enumerator.enumerate(task)
    assert first is second
    enumerator.clear()
    assert enumerator.enumerate(task) is not first


def test_enumerator_cap_falls_back_to_critical_path():
    # A wide parallel DAG with an exponential number of paths.
    layers = 10
    edges = []
    n = 2 * layers
    for layer in range(layers - 1):
        for a in (2 * layer, 2 * layer + 1):
            for b in (2 * layer + 2, 2 * layer + 3):
                edges.append((a, b))
    dag = DAG(n, edges)
    vertices = [Vertex(i, 1.0) for i in range(n)]
    task = DAGTask(0, vertices, dag, period=1000.0)
    enumerator = PathEnumerator(max_signatures=4, max_paths=16)
    result = enumerator.enumerate(task)
    assert not result.exhaustive
    assert len(result.profiles) >= 1
    assert result.profiles[0].length == pytest.approx(task.critical_path_length)


def test_enumerator_rejects_bad_caps():
    with pytest.raises(ValueError):
        PathEnumerator(max_signatures=0)
    with pytest.raises(ValueError):
        PathEnumerator(max_paths=0)


def test_critical_path_only_helper():
    task = build_task_with_paths()
    result = critical_path_only(task)
    assert not result.exhaustive
    assert len(result.profiles) == 1
    assert result.profiles[0].length == pytest.approx(task.critical_path_length)


def test_enumerated_profiles_match_task_quantities(small_taskset):
    enumerator = PathEnumerator()
    for task in small_taskset:
        result = enumerator.enumerate(task)
        lstar = task.critical_path_length
        assert result.profiles, "every task has at least one complete path"
        longest = max(p.length for p in result.profiles)
        if result.exhaustive:
            assert longest == pytest.approx(lstar)
        for profile in result.profiles:
            assert profile.length <= lstar + 1e-6
            for rid, count in profile.requests.items():
                assert count <= task.request_count(rid)


# --------------------------------------------------------------------------- #
# Signature-DP vs reference walk
# --------------------------------------------------------------------------- #
def build_layered_task(layers=6, width=2, distinct_weights=True):
    """A layered DAG with width**layers paths (distinct lengths if requested)."""
    n = width * layers
    edges = []
    for layer in range(layers - 1):
        for a in range(width):
            for b in range(width):
                edges.append((layer * width + a, (layer + 1) * width + b))
    dag = DAG(n, edges)
    vertices = [
        Vertex(i, 1.0 + (0.01 * i if distinct_weights else 0.0)) for i in range(n)
    ]
    return DAGTask(0, vertices, dag, period=10_000.0)


def test_dp_matches_walk_signatures(small_taskset):
    """The DP produces exactly the walk's signature set on generated tasks."""
    dp = PathEnumerator(algorithm=ALGORITHM_DP)
    walk = PathEnumerator(algorithm=ALGORITHM_WALK)
    for task in small_taskset:
        a, b = dp.enumerate(task), walk.enumerate(task)
        assert a.exhaustive == b.exhaustive
        assert a.total_paths_seen == b.total_paths_seen
        sig_a = sorted(p.signature() for p in a.profiles)
        sig_b = sorted(p.signature() for p in b.profiles)
        assert sig_a == sig_b


def test_dp_matches_walk_on_exponential_dag():
    task = build_layered_task(layers=8, width=2)  # 256 paths, 256 signatures
    dp = PathEnumerator(algorithm=ALGORITHM_DP).enumerate(task)
    walk = PathEnumerator(algorithm=ALGORITHM_WALK).enumerate(task)
    assert dp.exhaustive and walk.exhaustive
    assert dp.total_paths_seen == walk.total_paths_seen == 256
    assert sorted(p.signature() for p in dp.profiles) == sorted(
        p.signature() for p in walk.profiles
    )


def test_dp_scales_past_walk_path_cap():
    """The DP stays exhaustive where the walk would drown in raw paths.

    2**20 raw paths exceed any reasonable walk budget, but all paths share
    one signature per layer choice pattern — the DP visits each vertex once.
    """
    task = build_layered_task(layers=20, width=2, distinct_weights=False)
    dp = PathEnumerator(algorithm=ALGORITHM_DP, max_paths=2_000_000).enumerate(task)
    assert dp.exhaustive
    assert dp.total_paths_seen == 2**20
    assert len(dp.profiles) == 1  # all paths are analysis-equivalent


def test_walk_signature_cap_respected():
    """The walk keeps at most max_signatures profiles (off-by-one fixed)."""
    task = build_layered_task(layers=4, width=2)  # 16 paths, distinct lengths
    result = PathEnumerator(algorithm=ALGORITHM_WALK, max_signatures=4).enumerate(task)
    assert not result.exhaustive
    assert len(result.profiles) == 4


def test_dp_dedups_at_signature_rounding_granularity():
    """Lengths differing below 1e-9 are one signature for DP and walk alike.

    Regression: keying the DP's per-vertex sets on exact float lengths let
    sub-tolerance length differences inflate them past the cap, flagging a
    task non-exhaustive (→ pessimistic EN fallback) where the walk stayed
    exhaustive with a single rounded signature.
    """
    diamonds = 8
    n = 3 * diamonds + 1
    edges = []
    for d in range(diamonds):
        base = 3 * d
        edges += [(base, base + 1), (base, base + 2), (base + 1, base + 3), (base + 2, base + 3)]
    dag = DAG(n, edges)
    vertices = []
    for i in range(n):
        branch = i % 3 == 2 and i < n - 1  # second branch of each diamond
        vertices.append(Vertex(i, 0.3 + (1e-11 if branch else 0.0)))
    task = DAGTask(0, vertices, dag, period=10_000.0)  # 2**8 = 256 raw paths
    dp = PathEnumerator(algorithm=ALGORITHM_DP, max_signatures=8).enumerate(task)
    walk = PathEnumerator(algorithm=ALGORITHM_WALK, max_signatures=8).enumerate(task)
    assert walk.exhaustive and len(walk.profiles) == 1
    assert dp.exhaustive and len(dp.profiles) == 1
    assert dp.profiles[0].signature() == walk.profiles[0].signature()


def test_dp_signature_cap_falls_back_non_exhaustive():
    # 128 paths with distinct lengths: above the walk shortcut, so the
    # signature DP runs and trips its per-vertex cap.
    task = build_layered_task(layers=7, width=2)
    result = PathEnumerator(max_signatures=4, max_paths=40_000).enumerate(task)
    assert not result.exhaustive
    assert result.profiles[0].length == pytest.approx(task.critical_path_length)


def test_enumerator_rejects_bad_algorithm():
    with pytest.raises(ValueError):
        PathEnumerator(algorithm="bogus")


# --------------------------------------------------------------------------- #
# Cache lifetime (weak keys instead of recyclable id() keys)
# --------------------------------------------------------------------------- #
def test_cache_entries_die_with_their_task():
    enumerator = PathEnumerator()
    task = build_task_with_paths()
    first = enumerator.enumerate(task)
    assert enumerator.enumerate(task) is first
    del task
    gc.collect()
    assert len(enumerator._cache) == 0
    # A new task object (potentially reusing the old id()) gets a fresh walk.
    other = build_task_with_paths()
    assert enumerator.enumerate(other) is not first


def test_cache_invalidated_by_dag_mutation():
    """add_edge (the supported DAG mutation) must not serve stale profiles."""
    enumerator = PathEnumerator()
    task = build_task_with_paths()  # diamond: 0→{1,2}→3
    first = enumerator.enumerate(task)
    assert len(first.profiles) == 2
    task.dag.add_edge(1, 2)  # new path 0→1→2→3 joins the two originals
    second = enumerator.enumerate(task)
    assert second is not first
    assert second.total_paths_seen == 3
    assert max(p.length for p in second.profiles) == pytest.approx(
        task.critical_path_length
    )


def test_enumerator_pickles_without_cache():
    """Campaign workers receive protocols (and enumerators) via pickle."""
    import pickle

    enumerator = PathEnumerator(max_signatures=7, max_paths=99, algorithm=ALGORITHM_WALK)
    task = build_task_with_paths()
    enumerator.enumerate(task)
    clone = pickle.loads(pickle.dumps(enumerator))
    assert (clone.max_signatures, clone.max_paths, clone.algorithm) == (7, 99, ALGORITHM_WALK)
    assert len(clone._cache) == 0
    assert clone.enumerate(task).exhaustive
