"""Tests for the fixed-point helpers and the path enumerator."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.paths import PathEnumerator, critical_path_only
from repro.analysis.rta import ceil_div_jobs, least_fixed_point
from repro.model.dag import DAG
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, Vertex


# --------------------------------------------------------------------------- #
# least_fixed_point
# --------------------------------------------------------------------------- #
def test_fixed_point_constant_recurrence():
    assert least_fixed_point(lambda x: 5.0, 5.0, 100.0) == pytest.approx(5.0)


def test_fixed_point_affine_recurrence():
    # x = 2 + 0.5 x  ->  x = 4
    solution = least_fixed_point(lambda x: 2.0 + 0.5 * x, 2.0, 100.0)
    assert solution == pytest.approx(4.0, abs=1e-4)


def test_fixed_point_step_recurrence():
    # Classic RTA shape: x = 1 + ceil(x / 4) * 2 -> least fixed point is 3.
    solution = least_fixed_point(lambda x: 1.0 + math.ceil(x / 4.0) * 2.0, 1.0, 100.0)
    assert solution == pytest.approx(3.0)


def test_fixed_point_divergence_returns_none():
    assert least_fixed_point(lambda x: x + 1.0, 0.0, 50.0) is None


def test_fixed_point_start_beyond_bound_returns_none():
    assert least_fixed_point(lambda x: x, 10.0, 5.0) is None


def test_fixed_point_rejects_nan_and_inf():
    assert least_fixed_point(lambda x: float("nan"), 1.0, 10.0) is None
    assert least_fixed_point(lambda x: x, float("inf"), 10.0) is None


@given(
    constant=st.floats(min_value=0.1, max_value=10.0),
    slope=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=50, deadline=None)
def test_property_affine_fixed_point(constant, slope):
    expected = constant / (1.0 - slope)
    bound = expected * 2 + 10
    solution = least_fixed_point(lambda x: constant + slope * x, constant, bound)
    assert solution is not None
    assert solution == pytest.approx(expected, rel=1e-3, abs=1e-3)


# --------------------------------------------------------------------------- #
# ceil_div_jobs (eta)
# --------------------------------------------------------------------------- #
def test_ceil_div_jobs_basic():
    # eta(L) = ceil((L + R) / T)
    assert ceil_div_jobs(10.0, 10.0, 10.0) == 2
    assert ceil_div_jobs(0.0, 10.0, 10.0) == 1
    assert ceil_div_jobs(25.0, 10.0, 5.0) == 3
    assert ceil_div_jobs(-5.0, 10.0, 5.0) == 1


def test_ceil_div_jobs_requires_positive_period():
    with pytest.raises(ValueError):
        ceil_div_jobs(1.0, 0.0, 1.0)


@given(
    interval=st.floats(min_value=0, max_value=1e6),
    period=st.floats(min_value=1.0, max_value=1e6),
    response=st.floats(min_value=0, max_value=1e6),
)
@settings(max_examples=50, deadline=None)
def test_property_eta_monotone(interval, period, response):
    eta = ceil_div_jobs(interval, period, response)
    assert eta >= 0
    assert ceil_div_jobs(interval + period, period, response) >= eta
    assert ceil_div_jobs(interval, period, response + period) >= eta


# --------------------------------------------------------------------------- #
# Path enumeration
# --------------------------------------------------------------------------- #
def build_task_with_paths():
    """A diamond task where the two branches differ in resource usage."""
    dag = DAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    vertices = [
        Vertex(0, 2.0),
        Vertex(1, 5.0, requests={9: 1}),
        Vertex(2, 5.0),
        Vertex(3, 1.0),
    ]
    usages = [ResourceUsage(9, 1, 1.0)]
    return DAGTask(0, vertices, dag, period=100.0, resource_usages=usages)


def test_enumerator_distinguishes_paths_by_requests():
    task = build_task_with_paths()
    result = PathEnumerator().enumerate(task)
    assert result.exhaustive
    # Both paths have length 8 but different request vectors -> 2 signatures.
    assert len(result.profiles) == 2
    requests = sorted(p.request_count(9) for p in result.profiles)
    assert requests == [0, 1]


def test_enumerator_deduplicates_equivalent_paths():
    dag = DAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    vertices = [Vertex(0, 1.0), Vertex(1, 2.0), Vertex(2, 2.0), Vertex(3, 1.0)]
    task = DAGTask(0, vertices, dag, period=50.0)
    result = PathEnumerator().enumerate(task)
    assert result.exhaustive
    assert result.total_paths_seen == 2
    assert len(result.profiles) == 1  # identical signatures collapse


def test_enumerator_caches_results():
    task = build_task_with_paths()
    enumerator = PathEnumerator()
    first = enumerator.enumerate(task)
    second = enumerator.enumerate(task)
    assert first is second
    enumerator.clear()
    assert enumerator.enumerate(task) is not first


def test_enumerator_cap_falls_back_to_critical_path():
    # A wide parallel DAG with an exponential number of paths.
    layers = 10
    edges = []
    n = 2 * layers
    for layer in range(layers - 1):
        for a in (2 * layer, 2 * layer + 1):
            for b in (2 * layer + 2, 2 * layer + 3):
                edges.append((a, b))
    dag = DAG(n, edges)
    vertices = [Vertex(i, 1.0) for i in range(n)]
    task = DAGTask(0, vertices, dag, period=1000.0)
    enumerator = PathEnumerator(max_signatures=4, max_paths=16)
    result = enumerator.enumerate(task)
    assert not result.exhaustive
    assert len(result.profiles) >= 1
    assert result.profiles[0].length == pytest.approx(task.critical_path_length)


def test_enumerator_rejects_bad_caps():
    with pytest.raises(ValueError):
        PathEnumerator(max_signatures=0)
    with pytest.raises(ValueError):
        PathEnumerator(max_paths=0)


def test_critical_path_only_helper():
    task = build_task_with_paths()
    result = critical_path_only(task)
    assert not result.exhaustive
    assert len(result.profiles) == 1
    assert result.profiles[0].length == pytest.approx(task.critical_path_length)


def test_enumerated_profiles_match_task_quantities(small_taskset):
    enumerator = PathEnumerator()
    for task in small_taskset:
        result = enumerator.enumerate(task)
        lstar = task.critical_path_length
        assert result.profiles, "every task has at least one complete path"
        longest = max(p.length for p in result.profiles)
        if result.exhaustive:
            assert longest == pytest.approx(lstar)
        for profile in result.profiles:
            assert profile.length <= lstar + 1e-6
            for rid, count in profile.requests.items():
                assert count <= task.request_count(rid)
