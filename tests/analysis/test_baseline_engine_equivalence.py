"""Kernel-vs-reference equivalence for the SPIN and LPP baseline analyses.

The compiled engine kernels (`engine="kernel"`, the default since PR 3) must
reproduce the straight-line reference oracles (`engine="reference"`)
bound-for-bound: the property tests below generate random task sets across
seeds and require agreement within 1e-9 (and identical schedulable
verdicts), mirroring ``test_kernel_equivalence.py`` for DPCP-p.

The warm-restart behaviour of the shared federated top-up loop is checked
against a cold re-analysis oracle as well, since both engines run through
the same (warm) loop and an error there would cancel out in the
engine-vs-engine comparison.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import ENGINE_KERNEL, ENGINE_REFERENCE, compile_taskset
from repro.analysis.federated import federated_topup_analysis
from repro.analysis.lpp import LppKernel, LppTest, lpp_wcrt
from repro.analysis.spin import SpinKernel, SpinTest, spin_wcrt
from repro.generation import (
    DagGenerationConfig,
    GenerationError,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform
from repro.model.platform import PartitionedSystem, minimal_federated_clusters

TOLERANCE = 1e-9

#: Same contended mid-size systems the DPCP-p equivalence tests use.
SMALL_CONFIG = TaskSetGenerationConfig(
    average_utilization=1.5,
    dag=DagGenerationConfig(num_vertices_range=(6, 18), edge_probability=0.15),
    resources=ResourceGenerationConfig(
        num_resources_range=(3, 6),
        access_probability=0.6,
        request_count_range=(1, 10),
        cs_length_range=(15.0, 50.0),
    ),
)

#: Heavier contention so the top-up loop actually grants processors (warm
#: restarts are exercised, not just the first pass).
CONTENDED_CONFIG = TaskSetGenerationConfig(
    average_utilization=1.5,
    dag=DagGenerationConfig(num_vertices_range=(6, 16), edge_probability=0.2),
    resources=ResourceGenerationConfig(
        num_resources_range=(2, 4),
        access_probability=0.8,
        request_count_range=(2, 12),
        cs_length_range=(25.0, 60.0),
    ),
)

FACTORIES = {"SPIN": SpinTest, "LPP": LppTest}


def try_generate(utilization, config, seed):
    """A task set for ``seed``, or None when the draw is infeasible."""
    try:
        return generate_taskset(utilization, config, rng=seed)
    except GenerationError:
        return None


def assert_results_agree(kernel_result, reference_result):
    assert kernel_result.schedulable == reference_result.schedulable
    assert kernel_result.task_analyses.keys() == reference_result.task_analyses.keys()
    for tid, a in kernel_result.task_analyses.items():
        b = reference_result.task_analyses[tid]
        assert a.processors == b.processors
        assert a.schedulable == b.schedulable
        if math.isinf(a.wcrt) or math.isinf(b.wcrt):
            assert math.isinf(a.wcrt) == math.isinf(b.wcrt), f"task {tid}: {a} vs {b}"
        else:
            assert math.isclose(a.wcrt, b.wcrt, rel_tol=TOLERANCE, abs_tol=TOLERANCE), (
                f"task {tid}: kernel={a.wcrt!r} reference={b.wcrt!r}"
            )


# --------------------------------------------------------------------------- #
# Property tests: random task sets across seeds
# --------------------------------------------------------------------------- #
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_spin_kernel_matches_reference(seed):
    taskset = try_generate(5.0, SMALL_CONFIG, seed)
    if taskset is None:
        return
    platform = Platform(16)
    assert_results_agree(
        SpinTest(engine=ENGINE_KERNEL).test(taskset, platform),
        SpinTest(engine=ENGINE_REFERENCE).test(taskset, platform),
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_lpp_kernel_matches_reference(seed):
    taskset = try_generate(5.0, SMALL_CONFIG, seed)
    if taskset is None:
        return
    platform = Platform(16)
    assert_results_agree(
        LppTest(engine=ENGINE_KERNEL).test(taskset, platform),
        LppTest(engine=ENGINE_REFERENCE).test(taskset, platform),
    )


# --------------------------------------------------------------------------- #
# Fixed-seed grid (deterministic acceptance surface)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [1, 7, 42, 123, 2020, 31337])
@pytest.mark.parametrize("protocol", ["SPIN", "LPP"])
@pytest.mark.parametrize("config", [SMALL_CONFIG, CONTENDED_CONFIG])
def test_fixed_seed_grid_agreement(seed, protocol, config):
    taskset = try_generate(5.0, config, seed)
    if taskset is None:
        pytest.skip("seed does not produce a feasible task set")
    factory = FACTORIES[protocol]
    platform = Platform(16)
    assert_results_agree(
        factory(engine=ENGINE_KERNEL).test(taskset, platform),
        factory(engine=ENGINE_REFERENCE).test(taskset, platform),
    )


# --------------------------------------------------------------------------- #
# Per-function equivalence (wcrt bounds outside the top-up loop)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [3, 42, 99])
def test_per_task_wcrt_agreement(seed):
    taskset = try_generate(5.0, SMALL_CONFIG, seed)
    if taskset is None:
        pytest.skip("seed does not produce a feasible task set")
    spin_kernel = SpinKernel.of(taskset)
    lpp_kernel = LppKernel.of(taskset)
    # A half-analysed state: some tasks carry concrete response times.
    tasks = taskset.by_priority(descending=True)
    response_times = {t.task_id: 0.7 * t.deadline for t in tasks[: len(tasks) // 2]}
    for task in tasks:
        for size in (1, 2, 5):
            for kernel_fn, reference_fn in (
                (spin_kernel.wcrt, spin_wcrt),
                (lpp_kernel.wcrt, lpp_wcrt),
            ):
                a = kernel_fn(taskset, task, size, response_times)
                b = reference_fn(taskset, task, size, response_times)
                assert math.isinf(a) == math.isinf(b)
                if not math.isinf(a):
                    assert math.isclose(a, b, rel_tol=TOLERANCE, abs_tol=TOLERANCE)


def test_kernels_shared_via_compiled_tables():
    """SpinKernel.of / LppKernel.of memoize on the shared CompiledTaskset."""
    taskset = generate_taskset(5.0, SMALL_CONFIG, rng=42)
    tables = compile_taskset(taskset)
    assert compile_taskset(taskset) is tables
    assert SpinKernel.of(taskset) is SpinKernel.of(taskset)
    assert LppKernel.of(taskset) is LppKernel.of(taskset)
    assert SpinKernel.of(taskset).tables is tables
    assert LppKernel.of(taskset).tables is tables


def test_compiled_tables_die_with_the_taskset():
    """The weak-keyed memo must not keep task sets alive (campaign workers
    compile one per generated sample)."""
    import gc
    import weakref

    taskset = generate_taskset(5.0, SMALL_CONFIG, rng=7)
    SpinKernel.of(taskset)  # populate tables + a protocol lane
    ref = weakref.ref(taskset)
    del taskset
    gc.collect()
    assert ref() is None


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        SpinTest(engine="bogus")
    with pytest.raises(ValueError):
        LppTest(engine="bogus")


# --------------------------------------------------------------------------- #
# Warm restart of the federated top-up loop vs a cold re-analysis oracle
# --------------------------------------------------------------------------- #
def _cold_topup_analysis(taskset, platform, wcrt_function, protocol_name):
    """The pre-PR 3 top-up loop: re-analyse every task from scratch per grant."""
    from repro.analysis.interfaces import SchedulabilityResult, TaskAnalysis

    clusters = minimal_federated_clusters(taskset, platform)
    if clusters is None:
        return SchedulabilityResult(
            schedulable=False, protocol=protocol_name, reason="no minimal assignment"
        )
    while True:
        partition = PartitionedSystem(taskset, platform, clusters, {})
        analyses, response_times, failing = {}, {}, None
        for task in taskset.by_priority(descending=True):
            cluster_size = clusters[task.task_id].size
            wcrt = wcrt_function(taskset, task, cluster_size, response_times)
            analyses[task.task_id] = TaskAnalysis(
                task_id=task.task_id,
                wcrt=wcrt,
                deadline=task.deadline,
                processors=cluster_size,
            )
            response_times[task.task_id] = min(wcrt, task.deadline)
            if math.isinf(wcrt) or wcrt > task.deadline + 1e-9:
                failing = task.task_id
                break
        if failing is None:
            return SchedulabilityResult(
                schedulable=True,
                protocol=protocol_name,
                task_analyses=analyses,
                partition=partition,
            )
        unassigned = partition.unassigned_processors()
        if not unassigned:
            return SchedulabilityResult(
                schedulable=False,
                protocol=protocol_name,
                task_analyses=analyses,
                partition=partition,
                reason="out of processors",
            )
        clusters[failing].processors.append(unassigned[0])


@pytest.mark.parametrize("seed", [0, 5, 11, 17, 23, 31])
@pytest.mark.parametrize(
    "wcrt_function", [spin_wcrt, lpp_wcrt], ids=["spin", "lpp"]
)
def test_warm_restart_matches_cold_reanalysis(seed, wcrt_function):
    taskset = try_generate(6.0, CONTENDED_CONFIG, seed)
    if taskset is None:
        pytest.skip("seed does not produce a feasible task set")
    platform = Platform(16)
    warm = federated_topup_analysis(taskset, platform, wcrt_function, "X")
    cold = _cold_topup_analysis(taskset, platform, wcrt_function, "X")
    assert warm.schedulable == cold.schedulable
    assert warm.task_analyses.keys() == cold.task_analyses.keys()
    for tid, a in warm.task_analyses.items():
        b = cold.task_analyses[tid]
        assert a.processors == b.processors
        assert (a.wcrt == b.wcrt) or (math.isinf(a.wcrt) and math.isinf(b.wcrt))


@pytest.mark.parametrize("protocol", ["SPIN", "LPP"])
def test_topup_actually_grants_processors(protocol):
    """The warm-restart tests above are vacuous unless some seed tops up."""
    platform = Platform(16)
    factory = FACTORIES[protocol]
    for seed in range(40):
        taskset = try_generate(6.0, CONTENDED_CONFIG, seed)
        if taskset is None:
            continue
        result = factory().test(taskset, platform)
        minimal = {
            t.task_id: t.minimum_processors() for t in taskset
        }
        if any(
            analysis.processors > minimal[tid]
            for tid, analysis in result.task_analyses.items()
        ):
            return
    pytest.fail("no seed exercised the top-up path; tighten CONTENDED_CONFIG")
