"""Kernel-vs-reference equivalence for the sequential (classic DPCP) analysis.

The compiled :class:`SequentialDpcpKernel` (``engine="kernel"``, the default)
must reproduce the straight-line reference oracle (``engine="reference"``)
bound-for-bound: random sequential systems across 200 fixed seeds must agree
within 1e-9 and produce identical per-task schedulability verdicts —
mirroring ``test_baseline_engine_equivalence.py`` for the DAG baselines.
``test_sequential_dpcp.py`` keeps exercising the reference oracle directly.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.sequential import (
    SequentialDpcpKernel,
    SequentialTask,
    analyze_sequential_system,
    partition_sequential_system,
    sequential_dpcp_wcrt,
)

TOLERANCE = 1e-9
SEEDS = range(200)


def random_sequential_system(seed, num_processors=4):
    """A random partitioned sequential system, or None when the draw fails.

    Critical sections are generated first and the WCET built on top of
    them, so every draw satisfies the model validation; roughly half the
    task/resource pairs interact, which keeps ceiling blocking, agent
    interference, and remote requests all exercised.
    """
    rng = random.Random(seed)
    num_tasks = rng.randint(3, 8)
    num_resources = rng.randint(2, 4)
    tasks = []
    for task_id in range(num_tasks):
        requests = {}
        for rid in range(num_resources):
            if rng.random() < 0.5:
                requests[rid] = (rng.randint(1, 3), rng.uniform(5.0, 40.0))
        cs_total = sum(count * length for count, length in requests.values())
        wcet = cs_total + rng.uniform(50.0, 400.0)
        period = wcet * rng.uniform(4.0, 40.0)
        tasks.append(
            SequentialTask(
                task_id=task_id,
                wcet=wcet,
                period=period,
                priority=num_tasks - task_id,
                requests=requests,
            )
        )
    return partition_sequential_system(tasks, num_processors)


def assert_bounds_agree(kernel_bounds, reference_bounds, tasks):
    """Same keys, bounds within 1e-9 (or both inf), same verdicts."""
    assert kernel_bounds.keys() == reference_bounds.keys()
    deadlines = {task.task_id: task.deadline for task in tasks}
    for task_id, kernel_wcrt in kernel_bounds.items():
        reference_wcrt = reference_bounds[task_id]
        if math.isinf(kernel_wcrt) or math.isinf(reference_wcrt):
            assert math.isinf(kernel_wcrt) == math.isinf(reference_wcrt), (
                f"task {task_id}: kernel={kernel_wcrt!r} "
                f"reference={reference_wcrt!r}"
            )
        else:
            assert math.isclose(
                kernel_wcrt, reference_wcrt, rel_tol=TOLERANCE, abs_tol=TOLERANCE
            ), f"task {task_id}: kernel={kernel_wcrt!r} reference={reference_wcrt!r}"
        deadline = deadlines[task_id]
        assert (kernel_wcrt <= deadline + 1e-9) == (
            reference_wcrt <= deadline + 1e-9
        ), f"task {task_id}: verdicts disagree"


def test_kernel_matches_reference_over_200_seeds():
    """Full-system agreement (bounds and verdicts) across the seed grid."""
    analysed = 0
    for seed in SEEDS:
        system = random_sequential_system(seed)
        if system is None:
            continue
        analysed += 1
        assert_bounds_agree(
            analyze_sequential_system(system, engine="kernel"),
            analyze_sequential_system(system, engine="reference"),
            system.tasks,
        )
    # The grid must actually exercise the comparison, not skip everything.
    assert analysed >= 150


def test_per_task_wcrt_agreement_with_carried_bounds():
    """Single-task bounds agree from a half-analysed response-time state."""
    checked = 0
    for seed in (3, 42, 99, 1234):
        system = random_sequential_system(seed)
        if system is None:
            continue
        tasks = sorted(system.tasks, key=lambda t: t.priority, reverse=True)
        response_times = {
            t.task_id: 0.7 * t.deadline for t in tasks[: len(tasks) // 2]
        }
        kernel = SequentialDpcpKernel(system)
        for task in tasks:
            a = kernel.wcrt(task, response_times)
            b = sequential_dpcp_wcrt(
                system, task, response_times, engine="reference"
            )
            checked += 1
            assert math.isinf(a) == math.isinf(b)
            if not math.isinf(a):
                assert math.isclose(a, b, rel_tol=TOLERANCE, abs_tol=TOLERANCE)
    assert checked > 0


def test_wcrt_engine_dispatch_agrees():
    """The public function's kernel lane matches its reference lane."""
    system = random_sequential_system(7)
    assert system is not None
    for task in system.tasks:
        a = sequential_dpcp_wcrt(system, task, engine="kernel")
        b = sequential_dpcp_wcrt(system, task, engine="reference")
        assert math.isinf(a) == math.isinf(b)
        if not math.isinf(a):
            assert math.isclose(a, b, rel_tol=TOLERANCE, abs_tol=TOLERANCE)


def test_kernel_lanes_are_compiled_once_per_task():
    """The analyze sweep reuses each task's lane instead of recompiling."""
    system = random_sequential_system(11)
    assert system is not None
    kernel = SequentialDpcpKernel(system)
    kernel.analyze()
    lanes = {tid: lane for tid, lane in kernel._lanes.items()}
    kernel.analyze()
    for tid, lane in kernel._lanes.items():
        assert lanes[tid] is lane


def test_unknown_engine_rejected():
    system = random_sequential_system(7)
    assert system is not None
    with pytest.raises(ValueError):
        analyze_sequential_system(system, engine="bogus")
    with pytest.raises(ValueError):
        sequential_dpcp_wcrt(system, system.tasks[0], engine="bogus")
