"""Kernel-vs-reference equivalence for the DPCP-p analyses.

The vectorized kernel (`engine="kernel"`, the default) must reproduce the
straight-line reference oracle (`engine="reference"`) bound-for-bound: the
property tests below generate random task sets and partitions across seeds
and require agreement within 1e-9 (and identical schedulable verdicts).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dpcp_p import (
    DpcpPEnTest,
    DpcpPEpTest,
    DpcpPTest,
    ENGINE_KERNEL,
    ENGINE_REFERENCE,
    analyze_taskset,
    path_wcrt,
    task_wcrt_en,
    task_wcrt_ep,
)
from repro.analysis.dpcp_p.context import DpcpPContext
from repro.analysis.dpcp_p.kernel import BATCH_CUTOFF, DpcpPKernel, KernelStaticCache
from repro.analysis.dpcp_p.partition import wfd_assign_resources
from repro.analysis.paths import PathEnumerator
from repro.generation import (
    DagGenerationConfig,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform
from repro.model.platform import PartitionedSystem, minimal_federated_clusters

TOLERANCE = 1e-9

SMALL_CONFIG = TaskSetGenerationConfig(
    average_utilization=1.5,
    dag=DagGenerationConfig(num_vertices_range=(6, 18), edge_probability=0.15),
    resources=ResourceGenerationConfig(
        num_resources_range=(3, 6),
        access_probability=0.6,
        request_count_range=(1, 10),
        cs_length_range=(15.0, 50.0),
    ),
)

#: Wide, sparse DAGs whose signature counts exceed the kernel's batch cutoff,
#: so the batched NumPy fixed-point path is exercised (not just the scalar one).
WIDE_CONFIG = TaskSetGenerationConfig(
    average_utilization=1.5,
    dag=DagGenerationConfig(num_vertices_range=(35, 55), edge_probability=0.08),
    resources=ResourceGenerationConfig(
        num_resources_range=(4, 7),
        access_probability=0.5,
        request_count_range=(1, 12),
        cs_length_range=(15.0, 50.0),
    ),
)


def build_partition(config, seed, utilization=5.5, processors=16):
    """Generate a task set and a feasible partition, or None."""
    taskset = generate_taskset(utilization, config, rng=seed)
    platform = Platform(processors)
    clusters = minimal_federated_clusters(taskset, platform)
    if clusters is None:
        return None
    outcome = wfd_assign_resources(taskset, clusters)
    if not outcome.feasible:
        return None
    return taskset, PartitionedSystem(taskset, platform, clusters, outcome.assignment)


def assert_bounds_agree(taskset, partition, mode):
    kernel = analyze_taskset(
        taskset, partition, mode=mode, divergence_factor=2.0, engine=ENGINE_KERNEL
    )
    reference = analyze_taskset(
        taskset, partition, mode=mode, divergence_factor=2.0, engine=ENGINE_REFERENCE
    )
    assert kernel.keys() == reference.keys()
    for tid in kernel:
        a, b = kernel[tid].wcrt, reference[tid].wcrt
        assert kernel[tid].schedulable == reference[tid].schedulable
        if math.isinf(a) or math.isinf(b):
            assert math.isinf(a) == math.isinf(b), f"task {tid}: {a} vs {b}"
        else:
            assert math.isclose(a, b, rel_tol=TOLERANCE, abs_tol=TOLERANCE), (
                f"task {tid} ({mode}): kernel={a!r} reference={b!r}"
            )


# --------------------------------------------------------------------------- #
# Property tests: random task sets across seeds (satellite: hypothesis)
# --------------------------------------------------------------------------- #
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_kernel_matches_reference_ep(seed):
    built = build_partition(SMALL_CONFIG, seed)
    if built is None:
        return
    taskset, partition = built
    assert_bounds_agree(taskset, partition, "EP")


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_property_kernel_matches_reference_en(seed):
    built = build_partition(SMALL_CONFIG, seed)
    if built is None:
        return
    taskset, partition = built
    assert_bounds_agree(taskset, partition, "EN")


# --------------------------------------------------------------------------- #
# Fixed-seed grid (deterministic acceptance surface)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [1, 7, 42, 123, 2020, 31337])
@pytest.mark.parametrize("mode", ["EP", "EN"])
def test_fixed_seed_grid_agreement(seed, mode):
    built = build_partition(SMALL_CONFIG, seed)
    if built is None:
        pytest.skip("seed does not produce a feasible partition")
    taskset, partition = built
    assert_bounds_agree(taskset, partition, mode)


@pytest.mark.parametrize("seed", [3, 11])
def test_wide_dag_batched_path_agreement(seed):
    """Signature counts above BATCH_CUTOFF route through the NumPy solver."""
    built = build_partition(WIDE_CONFIG, seed, utilization=6.0)
    if built is None:
        pytest.skip("seed does not produce a feasible partition")
    taskset, partition = built
    enumerator = PathEnumerator()
    assert any(
        len(enumerator.enumerate(task).profiles) >= BATCH_CUTOFF for task in taskset
    ), "workload too narrow to exercise the batched path"
    assert_bounds_agree(taskset, partition, "EP")


# --------------------------------------------------------------------------- #
# Per-function and protocol-level equivalence
# --------------------------------------------------------------------------- #
def test_per_path_and_en_bounds_agree_per_function():
    built = build_partition(SMALL_CONFIG, 42)
    assert built is not None
    taskset, partition = built
    ctx_k = DpcpPContext(taskset, partition)
    ctx_r = DpcpPContext(taskset, partition)
    enumerator = PathEnumerator()
    for task in taskset:
        bound = task.deadline * 2
        for profile in enumerator.enumerate(task).profiles[:5]:
            a = path_wcrt(ctx_k, task, profile, bound, engine=ENGINE_KERNEL)
            b = path_wcrt(ctx_r, task, profile, bound, engine=ENGINE_REFERENCE)
            assert math.isinf(a) == math.isinf(b)
            if not math.isinf(a):
                assert math.isclose(a, b, rel_tol=TOLERANCE, abs_tol=TOLERANCE)
        for fn in (
            lambda c, e: task_wcrt_ep(c, task, enumerator, bound, engine=e),
            lambda c, e: task_wcrt_en(c, task, bound, engine=e),
        ):
            a = fn(ctx_k, ENGINE_KERNEL)
            b = fn(ctx_r, ENGINE_REFERENCE)
            assert math.isinf(a) == math.isinf(b)
            if not math.isinf(a):
                assert math.isclose(a, b, rel_tol=TOLERANCE, abs_tol=TOLERANCE)


@pytest.mark.parametrize("factory", [DpcpPEpTest, DpcpPEnTest])
def test_protocol_verdicts_agree(factory):
    platform = Platform(16)
    for seed in (1, 5, 9):
        taskset = generate_taskset(5.0, SMALL_CONFIG, rng=seed)
        kernel_result = factory(engine=ENGINE_KERNEL).test(taskset, platform)
        reference_result = factory(engine=ENGINE_REFERENCE).test(taskset, platform)
        assert kernel_result.schedulable == reference_result.schedulable


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        DpcpPTest(engine="bogus")
    built = build_partition(SMALL_CONFIG, 1)
    assert built is not None
    taskset, partition = built
    with pytest.raises(ValueError):
        analyze_taskset(taskset, partition, engine="bogus")


# --------------------------------------------------------------------------- #
# Static cache reuse across partition retries
# --------------------------------------------------------------------------- #
def test_static_cache_shared_across_kernels():
    built = build_partition(SMALL_CONFIG, 42)
    assert built is not None
    taskset, partition = built
    cache = KernelStaticCache()
    k1 = DpcpPKernel(taskset, partition, cache)
    for task in taskset:
        k1.task_wcrt_en(task)
    lanes_after_first = dict(cache.lanes)
    k2 = DpcpPKernel(taskset, partition, cache)
    results_fresh = {
        t.task_id: DpcpPKernel(taskset, partition).task_wcrt_en(t) for t in taskset
    }
    for task in taskset:
        assert k2.task_wcrt_en(task) == results_fresh[task.task_id]
        # The second kernel reused (not rebuilt) the task-static slices.
        assert cache.lanes[task.task_id] is lanes_after_first[task.task_id]


def test_kernel_respects_carried_response_times():
    """η_j must pick up response-time bounds set between per-task analyses."""
    built = build_partition(SMALL_CONFIG, 42)
    assert built is not None
    taskset, partition = built
    tasks = taskset.by_priority(descending=True)
    ctx_k = DpcpPContext(taskset, partition)
    ctx_r = DpcpPContext(taskset, partition)
    # Pretend the highest-priority task has a tiny response time: the kernel
    # and reference must both see the change through the shared context dict.
    first = tasks[0]
    ctx_k.response_times[first.task_id] = 1.0
    ctx_r.response_times[first.task_id] = 1.0
    low = tasks[-1]
    bound = low.deadline * 2
    a = task_wcrt_en(ctx_k, low, bound, engine=ENGINE_KERNEL)
    b = task_wcrt_en(ctx_r, low, bound, engine=ENGINE_REFERENCE)
    assert math.isinf(a) == math.isinf(b)
    if not math.isinf(a):
        assert math.isclose(a, b, rel_tol=TOLERANCE, abs_tol=TOLERANCE)
