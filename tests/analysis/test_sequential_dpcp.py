"""Tests for the classic (sequential-task) DPCP analysis used for light tasks."""

from __future__ import annotations

import math

import pytest

from repro.analysis.sequential import (
    SequentialModelError,
    SequentialSystem,
    SequentialTask,
    analyze_sequential_system,
    partition_sequential_system,
    sequential_dpcp_wcrt,
)


def make_tasks():
    """Three light tasks, two of them sharing resource 0."""
    high = SequentialTask(
        task_id=0, wcet=2.0, period=10.0, priority=3, requests={0: (1, 0.5)}
    )
    mid = SequentialTask(
        task_id=1, wcet=3.0, period=20.0, priority=2, requests={0: (2, 0.5)}
    )
    low = SequentialTask(task_id=2, wcet=4.0, period=40.0, priority=1)
    return [high, mid, low]


# --------------------------------------------------------------------------- #
# Model validation
# --------------------------------------------------------------------------- #
def test_sequential_task_validation():
    with pytest.raises(SequentialModelError):
        SequentialTask(0, wcet=0.0, period=10.0)
    with pytest.raises(SequentialModelError):
        SequentialTask(0, wcet=1.0, period=10.0, deadline=20.0)
    with pytest.raises(SequentialModelError):
        SequentialTask(0, wcet=1.0, period=10.0, requests={0: (5, 1.0)})


def test_sequential_task_derived_quantities():
    task = SequentialTask(0, wcet=4.0, period=10.0, requests={0: (2, 0.5)})
    assert task.utilization == pytest.approx(0.4)
    assert task.non_critical_wcet == pytest.approx(3.0)
    assert task.request_count(0) == 2
    assert task.cs_length(0) == pytest.approx(0.5)
    assert task.request_count(7) == 0


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #
def test_partition_sequential_system_assigns_everything():
    tasks = make_tasks()
    system = partition_sequential_system(tasks, num_processors=3)
    assert system is not None
    assert set(system.task_assignment) == {0, 1, 2}
    # Resource 0 is shared by tasks 0 and 1 -> global -> gets a home processor.
    assert 0 in system.resource_assignment
    assert system.resource_ceiling(0) == 3


def test_partition_respects_reserved_processors():
    tasks = make_tasks()
    system = partition_sequential_system(tasks, num_processors=4, reserved_processors=2)
    assert system is not None
    assert all(processor >= 2 for processor in system.task_assignment.values())
    assert partition_sequential_system(tasks, num_processors=2, reserved_processors=2) is None


def test_partition_fails_when_overloaded():
    tasks = [
        SequentialTask(i, wcet=9.0, period=10.0, priority=i + 1) for i in range(4)
    ]
    assert partition_sequential_system(tasks, num_processors=2) is None


# --------------------------------------------------------------------------- #
# Response-time analysis
# --------------------------------------------------------------------------- #
def test_isolated_highest_priority_task_response_time():
    tasks = make_tasks()
    # Put every task on its own processor so only agent effects remain.
    system = SequentialSystem(
        tasks,
        task_assignment={0: 0, 1: 1, 2: 2},
        resource_assignment={0: 2},
    )
    wcrt = sequential_dpcp_wcrt(system, tasks[0])
    # Non-critical 1.5 + one request whose window W covers its own critical
    # section (0.5) plus one lower-priority critical section (0.5) -> 2.5.
    assert wcrt == pytest.approx(2.5)


def test_lower_priority_task_suffers_agent_interference():
    tasks = make_tasks()
    system = SequentialSystem(
        tasks,
        task_assignment={0: 0, 1: 1, 2: 2},
        resource_assignment={0: 2},
    )
    results = analyze_sequential_system(system)
    # The low-priority task hosts the agent of resource 0 on its processor and
    # therefore has a response time above its own WCET.
    assert results[2] > tasks[2].wcet
    assert results[0] <= results[2]
    assert all(not math.isinf(value) for value in results.values())


def test_analysis_orders_by_priority_and_is_consistent():
    tasks = make_tasks()
    system = partition_sequential_system(tasks, num_processors=3)
    results = analyze_sequential_system(system)
    assert set(results) == {0, 1, 2}
    for task in tasks:
        assert results[task.task_id] >= task.non_critical_wcet - 1e-9


def test_unknown_task_lookup_raises():
    tasks = make_tasks()
    system = partition_sequential_system(tasks, num_processors=3)
    with pytest.raises(SequentialModelError):
        system.task(99)


def test_default_engine_matches_the_reference_oracle():
    """The compiled default engine reproduces this file's oracle exactly.

    The tests above pin the *reference* semantics; this one ties the
    default (kernel) engine to them on the same handcrafted system, so a
    kernel regression cannot hide behind the random-seed equivalence suite.
    """
    tasks = make_tasks()
    system = partition_sequential_system(tasks, num_processors=3)
    default = analyze_sequential_system(system)
    oracle = analyze_sequential_system(system, engine="reference")
    assert default.keys() == oracle.keys()
    for task_id, wcrt in oracle.items():
        assert default[task_id] == pytest.approx(wcrt, abs=1e-9)
