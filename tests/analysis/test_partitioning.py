"""Tests for the task/resource partitioning stage (Sec. V, Algorithms 1-2)."""

from __future__ import annotations

import pytest

from repro.analysis.dpcp_p.partition import (
    partition_and_analyze,
    wfd_assign_resources,
)
from repro.model.dag import DAG
from repro.model.platform import Cluster, Platform, minimal_federated_clusters
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, TaskSet, Vertex


def parallel_task(task_id, priority, wcet_per_vertex, vertices, period, requests=None):
    """A fork-join style task: `vertices` parallel vertices, no edges."""
    requests = requests or {}
    vertex_list = []
    for index in range(vertices):
        vertex_list.append(
            Vertex(index, wcet_per_vertex, requests=dict(requests.get(index, {})))
        )
    usages = {}
    for vertex_requests in requests.values():
        for rid, count in vertex_requests.items():
            usages[rid] = usages.get(rid, 0) + count
    usage_list = [ResourceUsage(rid, count, 1.0) for rid, count in usages.items()]
    return DAGTask(
        task_id=task_id,
        vertices=vertex_list,
        dag=DAG(vertices),
        period=period,
        resource_usages=usage_list,
        priority=priority,
        name=f"T{task_id}",
    )


def build_sharing_taskset():
    """Two heavy tasks sharing two global resources with different utilizations."""
    task0 = parallel_task(
        0, priority=2, wcet_per_vertex=10.0, vertices=4, period=20.0,
        requests={0: {0: 4}, 1: {1: 1}},
    )
    task1 = parallel_task(
        1, priority=1, wcet_per_vertex=10.0, vertices=4, period=40.0,
        requests={0: {0: 2}, 1: {1: 1}},
    )
    return TaskSet([task0, task1])


# --------------------------------------------------------------------------- #
# Algorithm 2: WFD resource assignment
# --------------------------------------------------------------------------- #
def test_wfd_assigns_every_global_resource():
    taskset = build_sharing_taskset()
    clusters = minimal_federated_clusters(taskset, Platform(10))
    assert clusters is not None
    outcome = wfd_assign_resources(taskset, clusters)
    assert outcome.feasible
    assert set(outcome.assignment) == set(taskset.global_resources())
    all_processors = {p for c in clusters.values() for p in c.processors}
    assert set(outcome.assignment.values()) <= all_processors


def test_wfd_prefers_cluster_with_largest_slack():
    taskset = build_sharing_taskset()
    # Task 0 (U = 2.0) and task 1 (U = 1.0): give task 0 a tight cluster and
    # task 1 a generous one; both resources should land on task 1's cluster.
    clusters = {0: Cluster(0, [0, 1]), 1: Cluster(1, [2, 3, 4])}
    outcome = wfd_assign_resources(taskset, clusters)
    assert outcome.feasible
    assert set(outcome.assignment.values()) <= {2, 3, 4}


def test_wfd_spreads_resources_across_processors():
    taskset = build_sharing_taskset()
    clusters = {0: Cluster(0, [0, 1]), 1: Cluster(1, [2, 3, 4])}
    outcome = wfd_assign_resources(taskset, clusters)
    # The two resources go to different processors of the chosen cluster
    # (worst-fit among processors).
    assert len(set(outcome.assignment.values())) == 2


def test_wfd_highest_utilization_resource_first():
    taskset = build_sharing_taskset()
    # Resource 0 has the higher utilization (more requests).
    assert taskset.resource_utilization(0) > taskset.resource_utilization(1)
    clusters = {0: Cluster(0, [0, 1]), 1: Cluster(1, [2, 3, 4])}
    outcome = wfd_assign_resources(taskset, clusters)
    # It is assigned first, to the least-loaded processor (the smallest id of
    # the emptiest processors in the slackest cluster).
    assert outcome.assignment[0] == 2


def test_wfd_reports_infeasible_when_slack_exhausted():
    # Single-vertex heavy-ish tasks with almost no slack and an expensive
    # global resource.
    task0 = DAGTask(
        0,
        [Vertex(0, 9.0, requests={0: 5})],
        DAG(1),
        period=10.0,
        resource_usages=[ResourceUsage(0, 5, 1.0)],
        priority=2,
    )
    task1 = DAGTask(
        1,
        [Vertex(0, 9.0, requests={0: 5})],
        DAG(1),
        period=10.0,
        resource_usages=[ResourceUsage(0, 5, 1.0)],
        priority=1,
    )
    taskset = TaskSet([task0, task1])
    clusters = {0: Cluster(0, [0]), 1: Cluster(1, [1])}
    # Each cluster has slack 1 - 0.9 = 0.1 < resource utilization 1.0.
    outcome = wfd_assign_resources(taskset, clusters)
    assert not outcome.feasible
    assert outcome.assignment == {}
    assert "does not fit" in outcome.reason


# --------------------------------------------------------------------------- #
# Algorithm 1: iterative partitioning and analysis
# --------------------------------------------------------------------------- #
def test_partition_and_analyze_schedulable_system():
    taskset = build_sharing_taskset()
    result = partition_and_analyze(taskset, Platform(12), mode="EP")
    assert result.schedulable
    assert result.partition is not None
    # Every task got at least its minimal federated cluster.
    for task in taskset:
        assert result.partition.num_processors_of(task.task_id) >= task.minimum_processors()
        assert result.task_analyses[task.task_id].schedulable
    # Every global resource is placed.
    assert set(result.partition.resource_assignment) == set(taskset.global_resources())


def test_partition_and_analyze_unschedulable_when_too_few_processors():
    taskset = build_sharing_taskset()
    result = partition_and_analyze(taskset, Platform(2), mode="EP")
    assert not result.schedulable
    assert "minimal federated assignment" in result.reason


def test_partition_and_analyze_en_mode(small_taskset, platform16):
    result = partition_and_analyze(small_taskset, platform16, mode="EN")
    assert result.protocol == "DPCP-p-EN"
    for analysis in result.task_analyses.values():
        assert analysis.processors >= 1


def test_partition_and_analyze_rejects_unknown_mode(small_taskset, platform16):
    with pytest.raises(ValueError):
        partition_and_analyze(small_taskset, platform16, mode="XX")


def test_partition_uses_spare_processors_when_needed():
    """A task set that fails with minimal clusters but passes with top-up."""
    # One heavy task with a lot of parallel work: minimal assignment gives
    # ceil((40-10)/(20-10)) = 3 processors and a federated bound of 20 = D;
    # contention from the second task pushes it over, so a 4th processor is
    # required — Algorithm 1 should find that allocation on a large platform.
    task0 = parallel_task(
        0, priority=2, wcet_per_vertex=10.0, vertices=4, period=20.0,
        requests={0: {0: 2}},
    )
    task1 = parallel_task(
        1, priority=1, wcet_per_vertex=10.0, vertices=2, period=50.0,
        requests={0: {0: 2}},
    )
    taskset = TaskSet([task0, task1])
    small = partition_and_analyze(taskset, Platform(4), mode="EP")
    large = partition_and_analyze(taskset, Platform(12), mode="EP")
    assert not small.schedulable
    assert large.schedulable
    assert large.partition.num_processors_of(0) > taskset.task(0).minimum_processors()
